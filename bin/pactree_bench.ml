(* Command-line driver for ad-hoc experiments on the simulated NVM
   machine.

     pactree_bench ycsb --index pactree --mix a --threads 28 ...
     pactree_bench figure fig10 --full
     pactree_bench crash --rounds 50 *)

open Cmdliner

let index_arg =
  let index_conv =
    Arg.conv
      ( (fun s ->
          match Experiments.Factory.of_string s with
          | Some sys -> Ok sys
          | None -> Error (`Msg ("unknown index: " ^ s))),
        fun ppf sys -> Format.pp_print_string ppf (Experiments.Factory.name sys) )
  in
  Arg.(
    value
    & opt index_conv Experiments.Factory.Pactree_sys
    & info [ "index" ] ~docv:"INDEX"
        ~doc:"Index to benchmark: pactree, pdlart, fastfair, bztree, fptree.")

let mix_arg =
  let mix_conv =
    Arg.conv
      ( (fun s ->
          match Workload.Ycsb.mix_of_string s with
          | Some m -> Ok m
          | None -> Error (`Msg ("unknown mix: " ^ s))),
        Workload.Ycsb.pp_mix )
  in
  Arg.(
    value
    & opt mix_conv Workload.Ycsb.Workload_a
    & info [ "mix" ] ~docv:"MIX" ~doc:"YCSB mix: la, a, b, c, e, skew-insert.")

let keys_arg =
  Arg.(value & opt int 100_000 & info [ "keys" ] ~doc:"Pre-loaded key count.")

let ops_arg = Arg.(value & opt int 100_000 & info [ "ops" ] ~doc:"Operations to run.")

let threads_arg =
  Arg.(value & opt int 28 & info [ "threads" ] ~doc:"Simulated worker threads.")

let theta_arg =
  Arg.(
    value & opt float 0.99
    & info [ "theta" ] ~doc:"Zipfian skew (0 = uniform, YCSB default 0.99).")

let string_keys_arg =
  Arg.(value & flag & info [ "string-keys" ] ~doc:"Use 23-byte string keys.")

let protocol_arg =
  Arg.(
    value & flag
    & info [ "directory" ]
        ~doc:"Use the directory cache-coherence protocol (default: snoop).")

let low_bw_arg =
  Arg.(
    value & flag
    & info [ "low-bandwidth" ] ~doc:"Use the low-bandwidth NVM machine profile (6.2).")

let elide_arg =
  Arg.(
    value & flag
    & info [ "elide" ]
        ~doc:
          "Actually skip redundant flushes (FliT-style elision) instead of only \
           counting them.  Changes fence batching, so results are not comparable \
           with non-elided runs line-by-line.")

let obs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "obs" ] ~docv:"FILE"
        ~doc:
          "Instrument the measured phase and dump metrics, per-phase attribution and \
           the bandwidth timeline as JSON to $(docv) (collapsed flamegraph stacks go \
           to $(docv).folded).")

let write_json path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Json.to_string json);
      output_char oc '\n')

let run_ycsb sys mix keys ops threads theta string_keys directory low_bw elide obs_out =
  let protocol = if directory then Nvm.Config.Directory else Nvm.Config.Snoop in
  let profile = if low_bw then Nvm.Config.dcpmm_low_bw else Nvm.Config.dcpmm in
  let machine = Nvm.Machine.create ~profile ~protocol ~numa_count:2 () in
  Nvm.Machine.set_flush_elision machine elide;
  let scale = Experiments.Scale.make ~keys ~ops ~thread_counts:[] in
  let index, service = Experiments.Factory.make machine ~string_keys ~scale sys in
  let kind =
    if string_keys then Workload.Keyset.String_keys else Workload.Keyset.Int_keys
  in
  let obs =
    Option.map (fun _ -> Obs.Recorder.create machine ~sample_interval:20e-6 ()) obs_out
  in
  let r =
    Workload.Runner.run ~machine ~index ?service ?obs ~mix ~kind ~loaded:keys ~ops
      ~threads ~theta ()
  in
  Format.printf "index      : %s@." (Experiments.Factory.name sys);
  Format.printf "workload   : %a, %d keys, %d ops, %d threads, theta %.2f@."
    Workload.Ycsb.pp_mix mix keys ops threads theta;
  Format.printf "throughput : %.3f Mops/s (simulated)@." (Workload.Runner.mops r);
  Format.printf "elapsed    : %.3f ms (simulated)@." (r.Workload.Runner.elapsed *. 1e3);
  let p q = Workload.Latency.percentile r.Workload.Runner.latency q *. 1e6 in
  Format.printf "latency    : p50 %.1f us, p99 %.1f us, p99.9 %.1f us, p99.99 %.1f us@."
    (p 50.) (p 99.) (p 99.9) (p 99.99);
  Format.printf
    "NVM traffic: %.1f MB read, %.1f MB written, %d flushes (+%d elided), %d fences@."
    (float_of_int (Nvm.Stats.total_read_bytes r.Workload.Runner.nvm) /. 1e6)
    (float_of_int (Nvm.Stats.total_write_bytes r.Workload.Runner.nvm) /. 1e6)
    r.Workload.Runner.nvm.Nvm.Stats.flushes
    r.Workload.Runner.nvm.Nvm.Stats.flushes_elided r.Workload.Runner.nvm.Nvm.Stats.fences;
  match (obs_out, obs) with
  | Some path, Some o ->
      Format.printf "%a@." Obs.Span.pp_table o.Obs.Recorder.span;
      write_json path (Obs.Recorder.to_json o);
      Obs.Span.write_collapsed o.Obs.Recorder.span (path ^ ".folded");
      Format.printf "observability dump: %s (stacks: %s.folded)@." path path
  | _ -> ()

let ycsb_cmd =
  let doc = "Run one YCSB workload against one index." in
  Cmd.v
    (Cmd.info "ycsb" ~doc)
    Term.(
      const run_ycsb $ index_arg $ mix_arg $ keys_arg $ ops_arg $ threads_arg
      $ theta_arg $ string_keys_arg $ protocol_arg $ low_bw_arg $ elide_arg $ obs_arg)

let figure_names =
  [
    "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13";
    "fig14"; "fig15"; "eadr"; "fh5"; "sec6_7"; "sec6_8";
  ]

let run_figure name full =
  let scale = if full then Experiments.Scale.full else Experiments.Scale.quick in
  let f =
    match name with
    | "fig2" -> Experiments.Figures.fig2
    | "fig3" -> Experiments.Figures.fig3
    | "fig4" -> Experiments.Figures.fig4
    | "fig5" -> Experiments.Figures.fig5
    | "fig6" -> Experiments.Figures.fig6
    | "fig9" -> Experiments.Figures.fig9
    | "fig10" -> Experiments.Figures.fig10
    | "fig11" -> Experiments.Figures.fig11
    | "fig12" -> Experiments.Figures.fig12
    | "fig13" -> Experiments.Figures.fig13
    | "fig14" -> Experiments.Figures.fig14
    | "fig15" -> Experiments.Figures.fig15
    | "eadr" -> Experiments.Figures.eadr
    | "fh5" -> Experiments.Figures.fh5
    | "sec6_7" -> Experiments.Figures.sec6_7
    | "sec6_8" -> Experiments.Figures.sec6_8
    | other -> Printf.ksprintf failwith "unknown figure %S" other
  in
  f scale

let figure_cmd =
  let doc = "Regenerate one of the paper's figures (see DESIGN.md)." in
  let name_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) figure_names))) None
      & info [] ~docv:"FIGURE")
  in
  let full_arg = Arg.(value & flag & info [ "full" ] ~doc:"Paper-like scale (slow).") in
  Cmd.v (Cmd.info "figure" ~doc) Term.(const run_figure $ name_arg $ full_arg)

let run_crash rounds obs_out =
  let scale =
    { Experiments.Scale.quick with Experiments.Scale.keys = 20_000; ops = 20_000 }
  in
  ignore rounds;
  (* Time-only recorder (no single machine spans the rounds): shows
     how much simulated time the rounds spend in the recovery phase. *)
  let span = Option.map (fun _ -> Obs.Span.create ()) obs_out in
  Option.iter Obs.Span.install span;
  Fun.protect
    ~finally:(fun () -> Option.iter Obs.Span.uninstall span)
    (fun () -> Experiments.Figures.sec6_8 scale);
  match (obs_out, span) with
  | Some path, Some s ->
      Format.printf "%a@." Obs.Span.pp_table s;
      write_json path (Obs.Span.to_json s);
      Format.printf "observability dump: %s@." path
  | _ -> ()

let crash_cmd =
  let doc = "Crash-injection recovery test (6.8)." in
  let rounds_arg = Arg.(value & opt int 100 & info [ "rounds" ] ~doc:"Crash rounds.") in
  Cmd.v (Cmd.info "crash" ~doc) Term.(const run_crash $ rounds_arg $ obs_arg)

(* ---------- stats: the canonical machine-readable bench ---------- *)

let stats_systems =
  [
    Experiments.Factory.Pactree_sys;
    Experiments.Factory.Pdlart_sys;
    Experiments.Factory.Fastfair_sys;
  ]

let run_stats quick sanitize out check threads =
  match check with
  | Some path -> (
      match Obs.Report.validate_file path with
      | Ok () -> Format.printf "%s: OK (schema %s)@." path Obs.Report.schema_version
      | Error msg ->
          Format.eprintf "%s: INVALID: %s@." path msg;
          exit 1)
  | None ->
      let scale =
        if quick then Experiments.Scale.make ~keys:20_000 ~ops:15_000 ~thread_counts:[]
        else Experiments.Scale.quick
      in
      let mix = Workload.Ycsb.Workload_a in
      let hazards = ref [] in
      let entries =
        List.map
          (fun sys ->
            let entry, obs =
              Experiments.Obs_run.bench_entry ~scale ~mix ~threads ~sanitize sys
            in
            Format.printf "%a@." Obs.Report.pp_entry entry;
            Format.printf "%a@." Obs.Span.pp_table obs.Obs.Recorder.span;
            if sanitize then begin
              let name = Experiments.Factory.name sys in
              match Pobj.Sanitizer.reports () with
              | [] -> Format.printf "sanitizer  : clean (%s)@." name
              | reports ->
                  hazards := (name, Pobj.Sanitizer.total ()) :: !hazards;
                  Format.printf "sanitizer  : %d unflushed store-lines (%s)@."
                    (Pobj.Sanitizer.total ()) name;
                  List.iter
                    (fun r -> Format.printf "  %a@." Pobj.Sanitizer.pp_report r)
                    reports
            end;
            entry)
          stats_systems
      in
      let json =
        Obs.Report.to_json ~keys:scale.Experiments.Scale.keys
          ~ops:scale.Experiments.Scale.ops ~threads
          ~mix:(Format.asprintf "%a" Workload.Ycsb.pp_mix mix)
          ~entries
      in
      Obs.Report.write_file out json;
      Format.printf "wrote %s (schema %s, %d systems)@." out Obs.Report.schema_version
        (List.length entries);
      if !hazards <> [] then begin
        List.iter
          (fun (name, n) ->
            Format.eprintf "persist-order sanitizer: %d hazard(s) in %s@." n name)
          (List.rev !hazards);
        exit 1
      end

let stats_cmd =
  let doc =
    "Run the canonical instrumented benchmark (YCSB-A, PACTree + baselines) and emit \
     schema-validated BENCH_pactree.json; or validate an existing file with --check."
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced scale for CI (seconds).")
  in
  let sanitize_arg =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Run the persist-order sanitizer during the benchmark and fail (exit 1) on \
             any store left unflushed at its thread's ordering point.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_pactree.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let check_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:"Validate $(docv) against the schema and exit (no benchmark run).")
  in
  Cmd.v
    (Cmd.info "stats" ~doc)
    Term.(const run_stats $ quick_arg $ sanitize_arg $ out_arg $ check_arg $ threads_arg)

(* ---------- crashmc: systematic crash-state model checking ---------- *)

let crashmc_suts name =
  match name with
  | "all" -> Ok Crashmc.Sut.all
  | s -> (
      match Crashmc.Sut.of_string s with
      | Some k -> Ok [ k ]
      | None -> Error ("unknown index: " ^ s))

let run_crashmc index_name ops budget max_states seed workload mutate =
  let seed =
    match Des.Rng.env_seed ~default:(Int64.of_int seed) with
    | s -> Int64.to_int s
    | exception Invalid_argument msg ->
        prerr_endline msg;
        exit 2
  in
  if not (List.mem workload [ "insert"; "mixed" ]) then begin
    prerr_endline ("unknown workload: " ^ workload ^ " (expected insert or mixed)");
    exit 2
  end;
  match crashmc_suts index_name with
  | Error msg ->
      prerr_endline msg;
      exit 2
  | Ok kinds ->
      let make_ops () =
        match workload with
        | "insert" -> Crashmc.Harness.insert_workload ops
        | "mixed" -> Crashmc.Harness.mixed_workload ~seed ops
        | other -> Printf.ksprintf failwith "unknown workload %S" other
      in
      let failed = ref false in
      List.iter
        (fun kind ->
          let sut = Crashmc.Sut.make kind in
          let r =
            Crashmc.Harness.run ~budget_per_point:budget ~max_states ~seed ~sut
              ~ops:(make_ops ()) ()
          in
          Format.printf "%a@." Crashmc.Harness.pp_report r;
          if not (Crashmc.Harness.ok r) then begin
            failed := true;
            Format.printf "  seed %d (override with PACTREE_SEED)@." seed
          end)
        kinds;
      (* Mutation mode: drop one clwb late in the run and demand the
         checker notices — proof the oracle has teeth.  The persist-
         order sanitizer rides along as a cross-check.  A mutant whose
         dropped clwb is made redundant by a later flush of the same
         line is harmless — neither oracle can (or should) flag it —
         so the invariant is per-mutant containment: every mutant the
         exhaustive checker convicts must also be flagged dynamically
         (the lint is at least as sensitive as the oracle on
         missing-flush bugs), and at least one injected mutant must be
         flagged overall. *)
      if mutate then
        List.iter
          (fun kind ->
            let killed = ref 0 and tried = ref 0 in
            let injected = ref 0 and san_caught = ref 0 in
            let k = ref 1 in
            while !tried < 6 do
              incr tried;
              let sut = Crashmc.Sut.make kind in
              let m = Crashmc.Sut.machine sut in
              Nvm.Machine.set_flush_fault m (Some !k);
              Pobj.Sanitizer.enable m;
              let r =
                Crashmc.Harness.run ~budget_per_point:budget ~max_states ~seed
                  ~max_violations:1 ~sut ~ops:(make_ops ()) ()
              in
              let fired = Nvm.Machine.flush_fault_fired m in
              let flagged = fired && Pobj.Sanitizer.total () > 0 in
              if fired then begin
                incr injected;
                if flagged then incr san_caught
              end;
              Pobj.Sanitizer.disable m;
              if not (Crashmc.Harness.ok r) then begin
                incr killed;
                if not flagged then begin
                  Format.printf
                    "  sanitizer missed a checker-convicted mutant (clwb %d) — seed %d@."
                    !k seed;
                  failed := true
                end
              end;
              k := !k * 3
            done;
            Format.printf "%s mutation check: %d/%d dropped-clwb mutants caught@."
              (Crashmc.Sut.name kind) !killed !tried;
            Format.printf "%s sanitizer cross-check: %d/%d injected mutants flagged@."
              (Crashmc.Sut.name kind) !san_caught !injected;
            if !killed = 0 then begin
              Format.printf "  no mutant caught — checker has no teeth? seed %d@." seed;
              failed := true
            end;
            if !san_caught = 0 then begin
              Format.printf "  sanitizer flagged no mutant at all — seed %d@." seed;
              failed := true
            end)
          kinds;
      if !failed then exit 1

let crashmc_cmd =
  let doc =
    "Systematic crash-state model checking: enumerate every crash image an op \
     trace allows under ADR semantics, recover each, check durable \
     linearizability."
  in
  let index_arg =
    Arg.(
      value & opt string "all"
      & info [ "index" ] ~docv:"INDEX"
          ~doc:"Index to check: pactree, pdlart, fastfair, bztree, fptree, all.")
  in
  let ops_arg =
    Arg.(value & opt int 48 & info [ "ops" ] ~doc:"Operations in the recorded trace.")
  in
  let budget_arg =
    Arg.(
      value & opt int 48
      & info [ "budget" ] ~doc:"Max crash images enumerated per crash point.")
  in
  let max_states_arg =
    Arg.(
      value & opt int 20_000
      & info [ "max-states" ] ~doc:"Total crash-state cap per index.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~doc:"Workload/enumeration seed (PACTREE_SEED overrides).")
  in
  let workload_arg =
    Arg.(
      value & opt string "mixed"
      & info [ "workload" ] ~doc:"Trace shape: insert (split-heavy) or mixed.")
  in
  let mutate_arg =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:"Also run dropped-clwb mutants and require the checker to catch one.")
  in
  Cmd.v
    (Cmd.info "crashmc" ~doc)
    Term.(
      const run_crashmc $ index_arg $ ops_arg $ budget_arg $ max_states_arg
      $ seed_arg $ workload_arg $ mutate_arg)

(* ---------- service: sharded KV service saturation sweep ---------- *)

let sweep_header =
  Printf.sprintf "%8s %9s %7s %9s %9s %9s %9s %6s %7s" "offered" "achieved" "rej"
    "q-p50us" "q-p99us" "s-p99us" "t-p99us" "imbal" "w/batch"

let run_service sys shards quick keys ops workers queue batch batch_delay_us admission
    arrival mix theta out check obs_out =
  match check with
  | Some path -> (
      match Obs.Svc_report.validate_file path with
      | Ok () -> Format.printf "%s: OK (schema %s)@." path Obs.Svc_report.schema_version
      | Error msg ->
          Format.eprintf "%s: INVALID: %s@." path msg;
          exit 1)
  | None ->
      let admission =
        match Svc.Engine.admission_of_string admission with
        | Ok a -> a
        | Error msg ->
            prerr_endline msg;
            exit 2
      in
      let process =
        match Workload.Arrival.process_of_string arrival with
        | Ok p -> p
        | Error msg ->
            prerr_endline msg;
            exit 2
      in
      let d = Experiments.Svc_run.default ~quick sys in
      let cfg =
        {
          d with
          Experiments.Svc_run.shards;
          keys = Option.value keys ~default:d.Experiments.Svc_run.keys;
          ops = Option.value ops ~default:d.Experiments.Svc_run.ops;
          workers_per_shard = workers;
          queue_capacity = queue;
          admission;
          process;
          max_batch = batch;
          max_batch_delay = batch_delay_us *. 1e-6;
          mix;
          theta;
        }
      in
      Format.printf "service    : %s, %d shards x %d workers, queue %d, %s admission@."
        (Experiments.Factory.name sys) cfg.Experiments.Svc_run.shards
        cfg.Experiments.Svc_run.workers_per_shard cfg.Experiments.Svc_run.queue_capacity
        (Svc.Engine.admission_name admission);
      Format.printf
        "load       : %s arrivals, %a mix, %d keys, %d ops/point, theta %.2f, batch %d \
         (%.1f us delay)@."
        (Workload.Arrival.process_name process)
        Workload.Ycsb.pp_mix cfg.Experiments.Svc_run.mix cfg.Experiments.Svc_run.keys
        cfg.Experiments.Svc_run.ops cfg.Experiments.Svc_run.theta
        cfg.Experiments.Svc_run.max_batch
        (cfg.Experiments.Svc_run.max_batch_delay *. 1e6);
      (* Time-only recorder (each sweep point runs on a fresh machine):
         attributes simulated time to the svc_queue / svc_batch phases
         across the whole sweep. *)
      let span = Option.map (fun _ -> Obs.Span.create ()) obs_out in
      Option.iter Obs.Span.install span;
      let points =
        Fun.protect
          ~finally:(fun () -> Option.iter Obs.Span.uninstall span)
          (fun () -> Experiments.Svc_run.sweep cfg)
      in
      print_endline sweep_header;
      List.iter
        (fun (_, r) ->
          Format.printf "%a@." Obs.Svc_report.pp_point
            (Experiments.Svc_run.point_of_result r))
        points;
      (match List.find_opt Experiments.Svc_run.saturated points with
      | Some (rate, r) ->
          Format.printf "knee       : saturates at %.3f Mops/s offered (achieves %.3f)@."
            (rate /. 1e6)
            (r.Svc.Engine.r_throughput /. 1e6)
      | None -> ());
      (match Experiments.Svc_run.check_sweep points with
      | Ok () -> ()
      | Error msg ->
          Format.eprintf "service sweep failed shape checks: %s@." msg;
          exit 1);
      Obs.Svc_report.write_file out (Experiments.Svc_run.report cfg points);
      Format.printf "wrote %s (schema %s, %d points)@." out Obs.Svc_report.schema_version
        (List.length points);
      match (obs_out, span) with
      | Some path, Some s ->
          Format.printf "%a@." Obs.Span.pp_table s;
          write_json path (Obs.Span.to_json s);
          Format.printf "observability dump: %s@." path
      | _ -> ()

let service_cmd =
  let doc =
    "Saturation sweep of the sharded KV service (lib/svc): open-loop load against a \
     range-partitioned store with group-commit batching, reporting \
     throughput-vs-offered, queue/service latency split and rejection rates as \
     schema-validated JSON; or validate an existing file with --check."
  in
  let shards_arg =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Range partitions (one log each).")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced scale for CI (seconds).")
  in
  let keys_opt_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "keys" ] ~doc:"Pre-loaded key count (default: scale preset).")
  in
  let ops_opt_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "ops" ] ~doc:"Requests per sweep point (default: scale preset).")
  in
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ] ~doc:"Worker threads per shard.")
  in
  let queue_arg =
    Arg.(value & opt int 64 & info [ "queue" ] ~doc:"Per-shard queue capacity.")
  in
  let batch_arg =
    Arg.(value & opt int 8 & info [ "batch" ] ~doc:"Max writes per group commit.")
  in
  let batch_delay_arg =
    Arg.(
      value & opt float 2.0
      & info [ "batch-delay-us" ]
          ~doc:"Max time a worker waits to fill a batch (microseconds).")
  in
  let admission_arg =
    Arg.(
      value & opt string "reject"
      & info [ "admission" ] ~docv:"POLICY"
          ~doc:"Full-queue policy: reject (open-loop preserving) or block.")
  in
  let arrival_arg =
    Arg.(
      value & opt string "poisson"
      & info [ "arrival" ] ~docv:"PROCESS" ~doc:"Arrival process: poisson or uniform.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "SVC_pactree.json"
      & info [ "out" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let check_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:"Validate $(docv) against the schema and exit (no sweep run).")
  in
  Cmd.v
    (Cmd.info "service" ~doc)
    Term.(
      const run_service $ index_arg $ shards_arg $ quick_arg $ keys_opt_arg $ ops_opt_arg
      $ workers_arg $ queue_arg $ batch_arg $ batch_delay_arg $ admission_arg
      $ arrival_arg $ mix_arg $ theta_arg $ out_arg $ check_arg $ obs_arg)

let () =
  let doc = "PACTree (SOSP'21) reproduction benchmarks on a simulated NVM machine." in
  let info = Cmd.info "pactree_bench" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ ycsb_cmd; figure_cmd; crash_cmd; crashmc_cmd; stats_cmd; service_cmd ]))
