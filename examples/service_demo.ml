(* A sharded KV service (lib/svc): range-partitioned PACTree shards
   behind per-shard group-commit redo logs, driven by an open-loop
   Poisson request source, then hit with a flaky power failure and
   recovered shard by shard.

     dune exec examples/service_demo.exe *)

module Key = Pactree.Key
module Store = Svc.Store
module Engine = Svc.Engine
module Machine = Nvm.Machine

let keys = 8_000

let shards = 4

let () =
  let machine = Machine.create ~numa_count:2 () in
  let scale =
    Experiments.Scale.make ~keys:(keys / shards * 2) ~ops:4_000 ~thread_counts:[ 1 ]
  in
  let boundaries =
    Store.boundaries_for ~kind:Workload.Keyset.Int_keys ~keys ~shards
  in
  let store =
    Store.create ~machine ~boundaries
      ~make_backend:(fun ~shard:_ ~numa:_ ->
        Experiments.Factory.make_backend machine ~scale
          Experiments.Factory.Pactree_sys)
      ()
  in
  Printf.printf "sharded store: %d PACTree shards on %d NUMA domains\n"
    (Store.shard_count store)
    (Machine.numa_count machine);

  (* Phase 1: bulk load, then an open-loop run near the saturation
     knee — requests arrive on a Poisson schedule whether or not the
     service keeps up, so queueing delay is visible. *)
  let start = Engine.load ~store ~kind:Workload.Keyset.Int_keys ~keys () in
  let config =
    {
      (Engine.default_config ~loaded:keys ~ops:4_000) with
      Engine.mode =
        Engine.Open_loop { rate = 1.2e6; process = Workload.Arrival.Poisson };
    }
  in
  let r = Engine.run ~store ~config ~start () in
  Format.printf "%a@." Engine.pp_result r;
  let p l q = Workload.Latency.percentile l q *. 1e6 in
  Printf.printf "queue p99 %.1f us vs service p99 %.1f us\n"
    (p r.Engine.r_queue_lat 99.0)
    (p r.Engine.r_service_lat 99.0);
  Printf.printf "group commit: %d batches covered %d writes\n" r.Engine.r_batches
    r.Engine.r_batched_writes;

  (* Phase 2: a few acknowledged batches straight through the redo
     log, then a flaky power failure (each unflushed line survives
     with probability 0.5) and recovery of every shard. *)
  let acked = ref [] in
  for i = 0 to 63 do
    let k = Key.of_int (1_000_000 + i) in
    let shard = Store.shard_of_key store k in
    Store.commit_batch store ~shard
      ~on_durable:(fun () -> acked := (k, i) :: !acked)
      [ Store.Put (k, i) ]
  done;
  let rng = Des.Rng.create ~seed:7L in
  Machine.crash machine (Machine.Flaky (0.5, rng));
  Store.recover store;
  Store.invariants store;
  Printf.printf "crashed (flaky) and recovered all %d shards\n"
    (Store.shard_count store);
  List.iter
    (fun (k, v) ->
      if Store.lookup store k <> Some v then
        failwith
          (Printf.sprintf "acknowledged write %d lost across the crash" v))
    !acked;
  Printf.printf "all %d acknowledged group-committed writes survived\n"
    (List.length !acked);

  (* Phase 3: the store stays usable, including cross-shard scans. *)
  Store.insert store (Key.of_int 424_242) 42;
  assert (Store.lookup store (Key.of_int 424_242) = Some 42);
  let run = Store.scan store (Key.of_int 0) 10 in
  assert (List.length run = 10);
  print_endline "post-recovery writes and cross-shard scans OK"
