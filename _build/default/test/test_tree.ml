(* Tests for the full PACTree index: correctness, concurrency,
   asynchronous SMO behaviour, crash recovery, all config variants. *)

module Machine = Nvm.Machine
module Key = Pactree.Key
module Tree = Pactree.Tree

let small_cfg =
  {
    Tree.default_config with
    Tree.data_capacity = 1 lsl 22;
    search_capacity = 1 lsl 21;
  }

let make_tree ?(cfg = small_cfg) () =
  let machine = Machine.create ~numa_count:2 () in
  (machine, Tree.create machine ~cfg ())

let ik = Key.of_int

let test_empty_lookup () =
  let _, t = make_tree () in
  Alcotest.(check (option int)) "miss" None (Tree.lookup t (ik 1));
  Alcotest.(check int) "one head node" 1 (Tree.check_invariants t)

let test_insert_lookup_basic () =
  let _, t = make_tree () in
  Tree.insert t (ik 1) 100;
  Tree.insert t (ik 2) 200;
  Tree.insert t (ik 3) 300;
  Alcotest.(check (option int)) "k1" (Some 100) (Tree.lookup t (ik 1));
  Alcotest.(check (option int)) "k2" (Some 200) (Tree.lookup t (ik 2));
  Alcotest.(check (option int)) "k3" (Some 300) (Tree.lookup t (ik 3));
  Alcotest.(check (option int)) "miss" None (Tree.lookup t (ik 4))

let test_upsert_semantics () =
  let _, t = make_tree () in
  Tree.insert t (ik 7) 1;
  Tree.insert t (ik 7) 2;
  Alcotest.(check (option int)) "updated" (Some 2) (Tree.lookup t (ik 7));
  Alcotest.(check int) "no duplicate" 1 (Tree.cardinal t)

let test_update_only_existing () =
  let _, t = make_tree () in
  Tree.insert t (ik 1) 10;
  Alcotest.(check bool) "existing" true (Tree.update t (ik 1) 11);
  Alcotest.(check bool) "missing" false (Tree.update t (ik 2) 22);
  Alcotest.(check (option int)) "new value" (Some 11) (Tree.lookup t (ik 1));
  Alcotest.(check (option int)) "not created" None (Tree.lookup t (ik 2))

let test_delete () =
  let _, t = make_tree () in
  Tree.insert t (ik 1) 10;
  Tree.insert t (ik 2) 20;
  Alcotest.(check bool) "delete hit" true (Tree.delete t (ik 1));
  Alcotest.(check bool) "delete miss" false (Tree.delete t (ik 1));
  Alcotest.(check (option int)) "gone" None (Tree.lookup t (ik 1));
  Alcotest.(check (option int)) "kept" (Some 20) (Tree.lookup t (ik 2))

let test_splits_many_keys () =
  let _, t = make_tree () in
  let n = 5000 in
  for i = 0 to n - 1 do
    Tree.insert t (ik i) (i * 2)
  done;
  Tree.drain_smo t;
  for i = 0 to n - 1 do
    match Tree.lookup t (ik i) with
    | Some v when v = i * 2 -> ()
    | Some v -> Alcotest.failf "key %d has value %d" i v
    | None -> Alcotest.failf "key %d missing" i
  done;
  Alcotest.(check bool) "many splits happened" true ((Tree.stats t).Tree.splits > 50);
  let nodes = Tree.check_invariants t in
  Alcotest.(check bool) "many nodes" true (nodes > 50);
  Alcotest.(check int) "cardinal" n (Tree.cardinal t)

let test_random_order_inserts () =
  let _, t = make_tree () in
  let rng = Des.Rng.create ~seed:9L in
  let model = Hashtbl.create 1024 in
  for _ = 0 to 4999 do
    let k = Des.Rng.int rng 1_000_000 in
    let v = Des.Rng.int rng 1_000_000 in
    Tree.insert t (ik k) v;
    Hashtbl.replace model k v
  done;
  Tree.drain_smo t;
  ignore (Tree.check_invariants t);
  Hashtbl.iter
    (fun k v ->
      match Tree.lookup t (ik k) with
      | Some v' when v' = v -> ()
      | _ -> Alcotest.failf "key %d wrong" k)
    model;
  Alcotest.(check int) "cardinal" (Hashtbl.length model) (Tree.cardinal t)

let test_deletes_trigger_merges () =
  let _, t = make_tree () in
  let n = 3000 in
  for i = 0 to n - 1 do
    Tree.insert t (ik i) i
  done;
  for i = 0 to n - 1 do
    if i mod 10 <> 0 then ignore (Tree.delete t (ik i))
  done;
  Tree.drain_smo t;
  Alcotest.(check bool) "merges happened" true ((Tree.stats t).Tree.merges > 5);
  ignore (Tree.check_invariants t);
  for i = 0 to n - 1 do
    let expect = if i mod 10 = 0 then Some i else None in
    if Tree.lookup t (ik i) <> expect then Alcotest.failf "key %d wrong" i
  done

let test_scan_basic () =
  let _, t = make_tree () in
  for i = 0 to 999 do
    Tree.insert t (ik (i * 2)) i
  done;
  Tree.drain_smo t;
  let r = Tree.scan t (ik 100) 10 in
  Alcotest.(check (list int)) "keys"
    [ 100; 102; 104; 106; 108; 110; 112; 114; 116; 118 ]
    (List.map (fun (k, _) -> Key.to_int k) r);
  Alcotest.(check (list int)) "values" [ 50; 51; 52; 53; 54; 55; 56; 57; 58; 59 ]
    (List.map snd r);
  (* scan from between keys *)
  let r = Tree.scan t (ik 101) 3 in
  Alcotest.(check (list int)) "from gap" [ 102; 104; 106 ]
    (List.map (fun (k, _) -> Key.to_int k) r);
  (* scan past the end *)
  let r = Tree.scan t (ik 1990) 100 in
  Alcotest.(check int) "tail scan" 5 (List.length r);
  (* scan across many nodes *)
  let r = Tree.scan t (ik 0) 500 in
  Alcotest.(check int) "long scan" 500 (List.length r)

let test_scan_empty_and_before_first () =
  let _, t = make_tree () in
  Alcotest.(check int) "empty tree" 0 (List.length (Tree.scan t (ik 0) 10));
  Tree.insert t (ik 100) 1;
  let r = Tree.scan t (ik 0) 10 in
  Alcotest.(check int) "before first key" 1 (List.length r)

let test_string_keys () =
  let cfg = { small_cfg with Tree.key_inline = 32 } in
  let _, t = make_tree ~cfg () in
  let words =
    [ "apple"; "apricot"; "banana"; "blueberry"; "cherry"; "date"; "elderberry" ]
  in
  List.iteri (fun i w -> Tree.insert t (Key.of_string w) i) words;
  List.iteri
    (fun i w ->
      Alcotest.(check (option int)) w (Some i) (Tree.lookup t (Key.of_string w)))
    words;
  let r = Tree.scan t (Key.of_string "b") 3 in
  Alcotest.(check (list string)) "scan strings" [ "banana"; "blueberry"; "cherry" ]
    (List.map fst r)

let test_string_keys_many () =
  let cfg = { small_cfg with Tree.key_inline = 32 } in
  let _, t = make_tree ~cfg () in
  let n = 3000 in
  for i = 0 to n - 1 do
    Tree.insert t (Key.of_string (Printf.sprintf "user%08d" (i * 37 mod n))) i
  done;
  Tree.drain_smo t;
  ignore (Tree.check_invariants t);
  Alcotest.(check int) "cardinal" n (Tree.cardinal t)

let test_qcheck_model =
  QCheck.Test.make ~name:"tree: agrees with a map model" ~count:20
    QCheck.(list (triple (int_bound 300) (int_bound 1000) (int_bound 3)))
    (fun ops ->
      let _, t = make_tree () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, v, op) ->
          match op with
          | 0 | 1 ->
              Tree.insert t (ik k) v;
              Hashtbl.replace model k v
          | 2 ->
              let was = Tree.delete t (ik k) in
              if was <> Hashtbl.mem model k then raise Exit;
              Hashtbl.remove model k
          | _ ->
              let got = Tree.lookup t (ik k) in
              if got <> Hashtbl.find_opt model k then raise Exit)
        ops;
      Tree.drain_smo t;
      ignore (Tree.check_invariants t);
      Hashtbl.fold (fun k v ok -> ok && Tree.lookup t (ik k) = Some v) model true
      && Tree.cardinal t = Hashtbl.length model)

let test_qcheck_scan_model =
  QCheck.Test.make ~name:"tree: scans agree with a sorted model" ~count:15
    QCheck.(pair (list (int_bound 2000)) (list (pair (int_bound 2100) (int_bound 60))))
    (fun (keys, scans) ->
      let _, t = make_tree () in
      let model = List.sort_uniq compare keys in
      List.iter (fun k -> Tree.insert t (ik k) (k * 7)) keys;
      Tree.drain_smo t;
      List.for_all
        (fun (from, n) ->
          let expected =
            List.filteri (fun i _ -> i < n)
              (List.filter (fun k -> k >= from) model)
          in
          let got = List.map (fun (k, v) -> (Key.to_int k, v)) (Tree.scan t (ik from) n) in
          got = List.map (fun k -> (k, k * 7)) expected)
        scans)

(* ---------- concurrency ---------- *)

let run_concurrent ?(with_updater = true) t threads body =
  let sched = Des.Sched.create () in
  if with_updater then
    Des.Sched.spawn sched ~name:"updater" (fun () -> Tree.updater_loop t);
  let live = ref threads in
  for i = 0 to threads - 1 do
    Des.Sched.spawn sched ~numa:(i mod 2) ~name:(Printf.sprintf "w%d" i) (fun () ->
        body i;
        decr live;
        if !live = 0 && with_updater then Tree.request_shutdown t)
  done;
  Des.Sched.run sched

let test_concurrent_disjoint_inserts () =
  let _, t = make_tree () in
  let threads = 8 and per = 400 in
  run_concurrent t threads (fun i ->
      for j = 0 to per - 1 do
        Tree.insert t (ik ((j * threads) + i)) ((j * threads) + i)
      done);
  ignore (Tree.check_invariants t);
  Alcotest.(check int) "all present" (threads * per) (Tree.cardinal t);
  for k = 0 to (threads * per) - 1 do
    if Tree.lookup t (ik k) <> Some k then Alcotest.failf "key %d wrong" k
  done

let test_concurrent_readers_never_miss () =
  let _, t = make_tree () in
  for i = 0 to 999 do
    Tree.insert t (ik (i * 2)) i
  done;
  let misses = ref 0 in
  let _, _ = (0, 0) in
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"updater" (fun () -> Tree.updater_loop t);
  let writers = 4 and readers = 4 in
  let live = ref (writers + readers) in
  let finish () =
    decr live;
    if !live = 0 then Tree.request_shutdown t
  in
  for i = 0 to writers - 1 do
    Des.Sched.spawn sched ~numa:(i mod 2) ~name:(Printf.sprintf "ins%d" i) (fun () ->
        for j = 0 to 249 do
          Tree.insert t (ik ((((i * 250) + j) * 2) + 1)) j
        done;
        finish ())
  done;
  for i = 0 to readers - 1 do
    Des.Sched.spawn sched ~numa:(i mod 2) ~name:(Printf.sprintf "rd%d" i) (fun () ->
        let rng = Des.Rng.create ~seed:(Int64.of_int (i + 1)) in
        for _ = 0 to 999 do
          let k = Des.Rng.int rng 1000 * 2 in
          if Tree.lookup t (ik k) = None then incr misses
        done;
        finish ())
  done;
  Des.Sched.run sched;
  Alcotest.(check int) "preloaded keys always visible" 0 !misses;
  ignore (Tree.check_invariants t);
  Alcotest.(check int) "cardinal" 2000 (Tree.cardinal t)

let test_concurrent_mixed_with_deletes () =
  let _, t = make_tree () in
  for i = 0 to 1999 do
    Tree.insert t (ik i) i
  done;
  run_concurrent t 6 (fun i ->
      let rng = Des.Rng.create ~seed:(Int64.of_int (100 + i)) in
      for _ = 0 to 499 do
        let k = Des.Rng.int rng 2000 in
        match Des.Rng.int rng 3 with
        | 0 -> Tree.insert t (ik k) k
        | 1 -> ignore (Tree.delete t (ik k))
        | _ -> ignore (Tree.lookup t (ik k))
      done);
  ignore (Tree.check_invariants t)

let test_concurrent_scans () =
  let _, t = make_tree () in
  for i = 0 to 1999 do
    Tree.insert t (ik i) i
  done;
  let bad_scans = ref 0 in
  run_concurrent t 6 (fun i ->
      if i < 3 then (* writers *)
        for j = 0 to 299 do
          Tree.insert t (ik (2000 + (i * 300) + j)) j
        done
      else
        (* scanners: results must always be sorted and within range *)
        let rng = Des.Rng.create ~seed:(Int64.of_int (i * 7)) in
        for _ = 0 to 99 do
          let from = Des.Rng.int rng 1900 in
          let r = Tree.scan t (ik from) 50 in
          let keys = List.map (fun (k, _) -> Key.to_int k) r in
          let sorted = List.sort compare keys in
          if keys <> sorted || List.exists (fun k -> k < from) keys then incr bad_scans
        done);
  Alcotest.(check int) "scans always sorted, in-range" 0 !bad_scans;
  ignore (Tree.check_invariants t)

let test_async_updater_catches_up () =
  let _, t = make_tree () in
  run_concurrent t 4 (fun i ->
      for j = 0 to 999 do
        Tree.insert t (ik ((j * 4) + i)) j
      done);
  (* after shutdown handshake the backlog must be empty *)
  Alcotest.(check int) "smo backlog drained" 0 (Tree.smo_backlog t);
  ignore (Tree.check_invariants t)

let test_jump_histogram_populated () =
  let _, t = make_tree () in
  (* without an updater running and async mode on... entries replay
     synchronously; use a sim with a *slow* updater to observe hops *)
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"updater" (fun () -> Tree.updater_loop t);
  Des.Sched.spawn sched ~name:"writer" (fun () ->
      for i = 0 to 4999 do
        Tree.insert t (ik i) i
      done;
      Tree.request_shutdown t);
  Des.Sched.run sched;
  let hist = Tree.jump_histogram t in
  let total = Array.fold_left ( + ) 0 hist in
  Alcotest.(check bool) "histogram populated" true (total > 0);
  Alcotest.(check bool) "mostly direct hits" true (float_of_int hist.(0) > 0.5 *. float_of_int total)

(* ---------- configuration variants (Fig 12 ablations) ---------- *)

let exercise_variant cfg =
  let _, t = make_tree ~cfg () in
  let n = 2000 in
  for i = 0 to n - 1 do
    Tree.insert t (ik i) i
  done;
  for i = 0 to (n / 2) - 1 do
    ignore (Tree.delete t (ik (i * 2)))
  done;
  Tree.drain_smo t;
  ignore (Tree.check_invariants t);
  for i = 0 to n - 1 do
    let expect = if i mod 2 = 0 && i < n then if i < n then None else None else Some i in
    let expect = if i mod 2 = 1 then Some i else expect in
    if Tree.lookup t (ik i) <> expect then Alcotest.failf "variant: key %d wrong" i
  done;
  let r = Tree.scan t (ik 0) 100 in
  Alcotest.(check int) "scan works" 100 (List.length r)

let test_variant_sync_smo () =
  exercise_variant { small_cfg with Tree.async_smo = false }

let test_variant_single_pool () =
  exercise_variant { small_cfg with Tree.numa_pools = 1 }

let test_variant_no_selective_persistence () =
  exercise_variant { small_cfg with Tree.selective_persistence = false }

let test_variant_dram_search_layer () =
  exercise_variant { small_cfg with Tree.search_layer_dram = true }

let test_variant_volatile_allocator () =
  exercise_variant { small_cfg with Tree.alloc_kind = Pmalloc.Heap.Volatile_meta }

(* ---------- crash recovery (§6.8) ---------- *)

let test_recovery_simple () =
  let machine, t = make_tree () in
  let n = 3000 in
  for i = 0 to n - 1 do
    Tree.insert t (ik i) i
  done;
  Machine.crash machine Machine.Strict;
  ignore (Tree.recover t);
  ignore (Tree.check_invariants t);
  for i = 0 to n - 1 do
    if Tree.lookup t (ik i) <> Some i then Alcotest.failf "key %d lost" i
  done;
  (* still writable after recovery *)
  Tree.insert t (ik 999999) 42;
  Alcotest.(check (option int)) "post-recovery insert" (Some 42)
    (Tree.lookup t (ik 999999))

let test_recovery_with_pending_smo () =
  (* Crash while SMO log entries are still unreplayed (no updater
     thread runs in this sim): recovery must finish them. *)
  let machine, t = make_tree () in
  let n = 1500 in
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"writer" (fun () ->
      for i = 0 to n - 1 do
        Tree.insert t (ik i) i
      done);
  Des.Sched.run sched;
  Alcotest.(check bool) "entries pending" true (Tree.smo_backlog t > 0);
  Machine.crash machine Machine.Strict;
  let replayed = Tree.recover t in
  Alcotest.(check bool) "recovery replayed entries" true (replayed > 0);
  Alcotest.(check int) "backlog clear" 0 (Tree.smo_backlog t);
  ignore (Tree.check_invariants t);
  for i = 0 to n - 1 do
    if Tree.lookup t (ik i) <> Some i then Alcotest.failf "key %d lost" i
  done

let test_recovery_dram_search_layer () =
  let cfg = { small_cfg with Tree.search_layer_dram = true } in
  let machine, t = make_tree ~cfg () in
  for i = 0 to 1999 do
    Tree.insert t (ik i) i
  done;
  Machine.crash machine Machine.Strict;
  ignore (Tree.recover t);
  Tree.drain_smo t;
  ignore (Tree.check_invariants t);
  for i = 0 to 1999 do
    if Tree.lookup t (ik i) <> Some i then Alcotest.failf "key %d lost" i
  done

let test_recovery_repeated_crashes () =
  (* The paper's §6.8 experiment: crash and recover many times, with
     work in between; nothing acknowledged may ever be lost. *)
  let machine, t = make_tree () in
  let rng = Des.Rng.create ~seed:31L in
  let model = Hashtbl.create 1024 in
  for round = 0 to 19 do
    for _ = 0 to 199 do
      let k = Des.Rng.int rng 10_000 in
      if Des.Rng.int rng 4 = 0 then begin
        ignore (Tree.delete t (ik k));
        Hashtbl.remove model k
      end
      else begin
        Tree.insert t (ik k) (k + round);
        Hashtbl.replace model k (k + round)
      end
    done;
    Machine.crash machine Machine.Strict;
    ignore (Tree.recover t);
    ignore (Tree.check_invariants t);
    Hashtbl.iter
      (fun k v ->
        match Tree.lookup t (ik k) with
        | Some v' when v' = v -> ()
        | Some v' -> Alcotest.failf "round %d: key %d = %d, want %d" round k v' v
        | None -> Alcotest.failf "round %d: key %d lost" round k)
      model
  done

let test_recovery_mid_concurrent_run () =
  (* Crash (SIGKILL semantics: all threads die instantly) at an
     arbitrary instant of a concurrent run.  Durable linearizability:
     every insert acknowledged before the crash must survive. *)
  let machine, t = make_tree () in
  let acked = Hashtbl.create 1024 in
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"updater" (fun () -> Tree.updater_loop t);
  for i = 0 to 3 do
    Des.Sched.spawn sched ~numa:(i mod 2) ~name:(Printf.sprintf "w%d" i) (fun () ->
        for j = 0 to 1999 do
          let k = (j * 4) + i in
          Tree.insert t (ik k) k;
          Hashtbl.replace acked k ()
        done;
        Tree.request_shutdown t)
  done;
  Des.Sched.spawn sched ~name:"crasher" (fun () ->
      Des.Sched.delay 2e-4;
      Des.Sched.abort_all sched;
      Machine.crash machine Machine.Strict);
  Des.Sched.run sched;
  Alcotest.(check bool) "crash hit mid-run" true (Hashtbl.length acked < 8000);
  ignore (Tree.recover t);
  ignore (Tree.check_invariants t);
  let lost = ref [] in
  Hashtbl.iter
    (fun k () -> if Tree.lookup t (ik k) = None then lost := k :: !lost)
    acked;
  Alcotest.(check (list int)) "acknowledged keys survive" [] !lost

let suite =
  [
    Alcotest.test_case "empty lookup" `Quick test_empty_lookup;
    Alcotest.test_case "insert/lookup basic" `Quick test_insert_lookup_basic;
    Alcotest.test_case "upsert semantics" `Quick test_upsert_semantics;
    Alcotest.test_case "update only existing" `Quick test_update_only_existing;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "5000 keys, splits" `Quick test_splits_many_keys;
    Alcotest.test_case "random order inserts" `Quick test_random_order_inserts;
    Alcotest.test_case "deletes trigger merges" `Quick test_deletes_trigger_merges;
    Alcotest.test_case "scan basics" `Quick test_scan_basic;
    Alcotest.test_case "scan edge cases" `Quick test_scan_empty_and_before_first;
    Alcotest.test_case "string keys" `Quick test_string_keys;
    Alcotest.test_case "string keys x3000" `Quick test_string_keys_many;
    QCheck_alcotest.to_alcotest test_qcheck_model;
    QCheck_alcotest.to_alcotest test_qcheck_scan_model;
    Alcotest.test_case "concurrent disjoint inserts" `Quick test_concurrent_disjoint_inserts;
    Alcotest.test_case "readers never miss (GC1)" `Quick test_concurrent_readers_never_miss;
    Alcotest.test_case "concurrent mixed + deletes" `Quick test_concurrent_mixed_with_deletes;
    Alcotest.test_case "concurrent scans stay sorted" `Quick test_concurrent_scans;
    Alcotest.test_case "updater catches up" `Quick test_async_updater_catches_up;
    Alcotest.test_case "jump histogram (§6.7)" `Quick test_jump_histogram_populated;
    Alcotest.test_case "variant: sync SMO" `Quick test_variant_sync_smo;
    Alcotest.test_case "variant: single pool" `Quick test_variant_single_pool;
    Alcotest.test_case "variant: persist permutation" `Quick
      test_variant_no_selective_persistence;
    Alcotest.test_case "variant: DRAM search layer" `Quick test_variant_dram_search_layer;
    Alcotest.test_case "variant: volatile allocator" `Quick test_variant_volatile_allocator;
    Alcotest.test_case "recovery: simple (§6.8)" `Quick test_recovery_simple;
    Alcotest.test_case "recovery: pending SMO log" `Quick test_recovery_with_pending_smo;
    Alcotest.test_case "recovery: DRAM search layer" `Quick test_recovery_dram_search_layer;
    Alcotest.test_case "recovery: 20 crash rounds" `Quick test_recovery_repeated_crashes;
    Alcotest.test_case "recovery: crash mid concurrent run" `Quick
      test_recovery_mid_concurrent_run;
  ]
