test/test_data_node.ml: Alcotest Array Des Hashtbl List Nvm Pactree Pmalloc Printf QCheck QCheck_alcotest
