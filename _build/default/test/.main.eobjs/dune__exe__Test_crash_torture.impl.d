test/test_crash_torture.ml: Alcotest Des Int64 List Nvm Pactree Pmalloc
