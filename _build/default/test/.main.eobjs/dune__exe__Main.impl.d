test/main.ml: Alcotest Test_art Test_baselines Test_crash_torture Test_data_node Test_des Test_eadr Test_nvm Test_pmalloc Test_tree Test_workload
