test/test_baselines.ml: Alcotest Baselines Des Hashtbl List Nvm Pactree Pmalloc Printf
