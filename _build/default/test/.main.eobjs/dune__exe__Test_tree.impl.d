test/test_tree.ml: Alcotest Array Des Hashtbl Int64 List Nvm Pactree Pmalloc Printf QCheck QCheck_alcotest
