test/test_workload.ml: Alcotest Array Baselines Des Hashtbl List Nvm Pactree Printf String Workload
