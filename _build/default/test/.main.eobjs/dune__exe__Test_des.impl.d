test/test_des.ml: Alcotest Buffer Des List Printf
