test/test_eadr.ml: Alcotest Baselines Experiments Nvm Pactree Printf Workload
