test/test_art.ml: Alcotest Array Des Hashtbl Int64 List Nvm Option Pactree Pmalloc Printf QCheck QCheck_alcotest String
