test/main.mli:
