test/test_nvm.ml: Alcotest Des Int64 Nvm Option Printf
