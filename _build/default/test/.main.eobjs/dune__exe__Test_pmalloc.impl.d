test/test_pmalloc.ml: Alcotest Array Des List Nvm Pmalloc Printf QCheck QCheck_alcotest
