(* Tests for the comparison indexes: FastFair, BzTree (+PMwCAS),
   FPTree (+HTM), standalone PDL-ART. *)

module Machine = Nvm.Machine
module Key = Pactree.Key

let ik = Key.of_int

let make_machine () = Machine.create ~numa_count:2 ()

(* Generic functional checks run against every index through the
   common interface. *)
let generic_checks (idx : Baselines.Index_intf.index) =
  let open Baselines.Index_intf in
  (* basic *)
  insert idx (ik 5) 50;
  insert idx (ik 1) 10;
  insert idx (ik 3) 30;
  Alcotest.(check (option int)) "hit" (Some 30) (lookup idx (ik 3));
  Alcotest.(check (option int)) "miss" None (lookup idx (ik 2));
  (* upsert *)
  insert idx (ik 3) 31;
  Alcotest.(check (option int)) "upsert" (Some 31) (lookup idx (ik 3));
  (* update *)
  Alcotest.(check bool) "update hit" true (update idx (ik 1) 11);
  Alcotest.(check bool) "update miss" false (update idx (ik 2) 22);
  Alcotest.(check (option int)) "updated" (Some 11) (lookup idx (ik 1));
  (* delete *)
  Alcotest.(check bool) "delete hit" true (delete idx (ik 5));
  Alcotest.(check bool) "delete miss" false (delete idx (ik 5));
  Alcotest.(check (option int)) "deleted" None (lookup idx (ik 5));
  (* bulk + scan *)
  for i = 10 to 500 do
    insert idx (ik (i * 2)) i
  done;
  let r = scan idx (ik 100) 5 in
  Alcotest.(check (list int)) "scan keys" [ 100; 102; 104; 106; 108 ]
    (List.map (fun (k, _) -> Key.to_int k) r);
  for i = 10 to 500 do
    if lookup idx (ik (i * 2)) <> Some i then Alcotest.failf "bulk key %d wrong" (i * 2)
  done

let model_agreement (idx : Baselines.Index_intf.index) seed =
  let open Baselines.Index_intf in
  let rng = Des.Rng.create ~seed in
  let model = Hashtbl.create 256 in
  for _ = 0 to 2999 do
    let k = Des.Rng.int rng 800 in
    match Des.Rng.int rng 4 with
    | 0 | 1 ->
        let v = Des.Rng.int rng 10_000 in
        insert idx (ik k) v;
        Hashtbl.replace model k v
    | 2 ->
        let was = delete idx (ik k) in
        if was <> Hashtbl.mem model k then Alcotest.failf "delete mismatch on %d" k;
        Hashtbl.remove model k
    | _ ->
        if lookup idx (ik k) <> Hashtbl.find_opt model k then
          Alcotest.failf "lookup mismatch on %d" k
  done;
  Hashtbl.iter
    (fun k v ->
      if lookup idx (ik k) <> Some v then Alcotest.failf "final state wrong at %d" k)
    model;
  (* full-range scan equals the sorted model *)
  let expected = List.sort compare (Hashtbl.fold (fun k v l -> (k, v) :: l) model []) in
  let got =
    List.map (fun (k, v) -> (Key.to_int k, v)) (scan idx (ik min_int) 100_000)
  in
  Alcotest.(check int) "scan size" (List.length expected) (List.length got);
  Alcotest.(check bool) "scan = model" true (expected = got)

(* ---------- FastFair ---------- *)

let ff_index ?(string_keys = false) () =
  let m = make_machine () in
  let t = Baselines.Fastfair.create m ~string_keys ~capacity:(1 lsl 22) () in
  (m, t, Baselines.Index_intf.Index ((module Baselines.Fastfair.Index), t))

let test_fastfair_generic () =
  let _, _, idx = ff_index () in
  generic_checks idx

let test_fastfair_model () =
  let _, _, idx = ff_index () in
  model_agreement idx 11L

let test_fastfair_invariants () =
  let _, t, idx = ff_index () in
  for i = 0 to 2999 do
    Baselines.Index_intf.insert idx (ik ((i * 7919) mod 100000)) i
  done;
  Alcotest.(check bool) "sorted chain" true (Baselines.Fastfair.check_invariants t > 1000)

let test_fastfair_string_keys () =
  let _, t, idx = ff_index ~string_keys:true () in
  let words = [ "alpha"; "beta"; "gamma"; "delta"; "epsilon" ] in
  List.iteri (fun i w -> Baselines.Index_intf.insert idx (Key.of_string w) i) words;
  List.iteri
    (fun i w ->
      Alcotest.(check (option int)) w (Some i)
        (Baselines.Index_intf.lookup idx (Key.of_string w)))
    words;
  let r = Baselines.Index_intf.scan idx (Key.of_string "b") 3 in
  Alcotest.(check (list string)) "string scan" [ "beta"; "delta"; "epsilon" ]
    (List.map fst r);
  ignore (Baselines.Fastfair.check_invariants t)

let test_fastfair_string_reads_more_nvm () =
  (* Fig 4's FastFair effect: string keys mean pointer chasing. *)
  let reads string_keys =
    let m = make_machine () in
    let t = Baselines.Fastfair.create m ~string_keys ~capacity:(1 lsl 22) () in
    for i = 0 to 1999 do
      Baselines.Fastfair.insert t (ik (i * 3571 mod 65536)) i
    done;
    let before = Nvm.Stats.snapshot (Machine.total_stats m) in
    let sched = Des.Sched.create () in
    Des.Sched.spawn sched ~name:"reader" (fun () ->
        let rng = Des.Rng.create ~seed:5L in
        for _ = 0 to 1999 do
          ignore (Baselines.Fastfair.lookup t (ik (Des.Rng.int rng 65536)))
        done);
    Des.Sched.run sched;
    Nvm.Stats.total_read_bytes (Nvm.Stats.diff (Machine.total_stats m) before)
  in
  let int_reads = reads false and str_reads = reads true in
  Alcotest.(check bool)
    (Printf.sprintf "string lookups read more NVM (%d vs %d)" str_reads int_reads)
    true
    (str_reads > int_reads)

let test_fastfair_concurrent () =
  let m = make_machine () in
  let t = Baselines.Fastfair.create m ~capacity:(1 lsl 22) () in
  let sched = Des.Sched.create () in
  let threads = 6 and per = 300 in
  for i = 0 to threads - 1 do
    Des.Sched.spawn sched ~numa:(i mod 2) ~name:(Printf.sprintf "w%d" i) (fun () ->
        for j = 0 to per - 1 do
          Baselines.Fastfair.insert t (ik ((j * threads) + i)) j
        done)
  done;
  Des.Sched.run sched;
  Alcotest.(check int) "all keys" (threads * per) (Baselines.Fastfair.check_invariants t);
  for k = 0 to (threads * per) - 1 do
    if Baselines.Fastfair.lookup t (ik k) = None then Alcotest.failf "key %d lost" k
  done

(* ---------- BzTree ---------- *)

let bz_index () =
  let m = make_machine () in
  let t = Baselines.Bztree.create m ~capacity:(1 lsl 22) () in
  (m, t, Baselines.Index_intf.Index ((module Baselines.Bztree.Index), t))

let test_bztree_generic () =
  let _, _, idx = bz_index () in
  generic_checks idx

let test_bztree_model () =
  let _, _, idx = bz_index () in
  model_agreement idx 13L

let test_bztree_consolidates () =
  let _, t, idx = bz_index () in
  for i = 0 to 999 do
    Baselines.Index_intf.insert idx (ik i) i
  done;
  Alcotest.(check bool) "consolidations happened" true
    (Baselines.Bztree.consolidations t > 10);
  Alcotest.(check int) "chain intact" 1000 (Baselines.Bztree.check_invariants t)

let test_bztree_flush_heavy () =
  (* §6.1: BzTree needs ~15 flushes per insert. *)
  let m = make_machine () in
  let t = Baselines.Bztree.create m ~capacity:(1 lsl 22) () in
  for i = 0 to 99 do
    Baselines.Bztree.insert t (ik i) i (* warm up, fill first nodes *)
  done;
  let before = Nvm.Stats.snapshot (Machine.total_stats m) in
  for i = 100 to 199 do
    Baselines.Bztree.insert t (ik i) i
  done;
  let d = Nvm.Stats.diff (Machine.total_stats m) before in
  let per_insert = float_of_int d.Nvm.Stats.flushes /. 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "heavy flushing (%.1f per insert)" per_insert)
    true (per_insert > 8.0)

let test_bztree_concurrent () =
  let m = make_machine () in
  let t = Baselines.Bztree.create m ~capacity:(1 lsl 22) () in
  let sched = Des.Sched.create () in
  let threads = 6 and per = 200 in
  for i = 0 to threads - 1 do
    Des.Sched.spawn sched ~numa:(i mod 2) ~name:(Printf.sprintf "w%d" i) (fun () ->
        for j = 0 to per - 1 do
          Baselines.Bztree.insert t (ik ((j * threads) + i)) j
        done)
  done;
  Des.Sched.run sched;
  Alcotest.(check int) "all keys" (threads * per) (Baselines.Bztree.check_invariants t);
  for k = 0 to (threads * per) - 1 do
    if Baselines.Bztree.lookup t (ik k) = None then Alcotest.failf "key %d lost" k
  done

(* ---------- HTM model ---------- *)

let test_htm_small_footprint_commits () =
  let htm = Baselines.Htm.create ~seed:1L () in
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"t" (fun () ->
      for _ = 0 to 999 do
        Baselines.Htm.execute htm ~footprint_lines:8 (fun () -> ())
      done);
  Des.Sched.run sched;
  let s = Baselines.Htm.stats htm in
  Alcotest.(check bool)
    (Printf.sprintf "few aborts (%d/%d)" s.Baselines.Htm.aborts s.Baselines.Htm.attempts)
    true
    (s.Baselines.Htm.aborts * 10 < s.Baselines.Htm.attempts)

let test_htm_capacity_aborts () =
  (* GC3: abort rate grows with transaction footprint. *)
  let abort_rate footprint =
    let htm = Baselines.Htm.create ~seed:2L () in
    let sched = Des.Sched.create () in
    Des.Sched.spawn sched ~name:"t" (fun () ->
        for _ = 0 to 999 do
          Baselines.Htm.execute htm ~footprint_lines:footprint (fun () -> ())
        done);
    Des.Sched.run sched;
    let s = Baselines.Htm.stats htm in
    float_of_int s.Baselines.Htm.aborts /. float_of_int (max 1 s.Baselines.Htm.commits)
  in
  let small = abort_rate 16 and big = abort_rate 700 in
  Alcotest.(check bool)
    (Printf.sprintf "big footprint aborts more (%.2f vs %.2f)" big small)
    true (big > (small +. 0.3))

let test_htm_conflict_aborts_with_threads () =
  let aborts_with threads =
    let htm = Baselines.Htm.create ~seed:3L () in
    let sched = Des.Sched.create () in
    for i = 0 to threads - 1 do
      Des.Sched.spawn sched ~name:(Printf.sprintf "t%d" i) (fun () ->
          for _ = 0 to 199 do
            Baselines.Htm.execute htm ~footprint_lines:64 ~duration:100e-9 (fun () -> ())
          done)
    done;
    Des.Sched.run sched;
    (Baselines.Htm.stats htm).Baselines.Htm.aborts
  in
  Alcotest.(check bool) "more threads, more aborts" true
    (aborts_with 32 > aborts_with 1)

let test_htm_fallback_progress () =
  (* Even at a huge footprint the fallback lock guarantees progress. *)
  let htm = Baselines.Htm.create ~seed:4L () in
  let sched = Des.Sched.create () in
  let done_count = ref 0 in
  for i = 0 to 3 do
    Des.Sched.spawn sched ~name:(Printf.sprintf "t%d" i) (fun () ->
        for _ = 0 to 99 do
          Baselines.Htm.execute htm ~footprint_lines:100_000 (fun () -> incr done_count)
        done)
  done;
  Des.Sched.run sched;
  Alcotest.(check int) "all bodies ran" 400 !done_count;
  Alcotest.(check bool) "fallbacks used" true
    ((Baselines.Htm.stats htm).Baselines.Htm.fallbacks > 0)

(* ---------- FPTree ---------- *)

let fp_index () =
  let m = make_machine () in
  let t = Baselines.Fptree.create m ~capacity:(1 lsl 22) () in
  (m, t, Baselines.Index_intf.Index ((module Baselines.Fptree.Index), t))

let test_fptree_generic () =
  let _, _, idx = fp_index () in
  generic_checks idx

let test_fptree_model () =
  let _, _, idx = fp_index () in
  model_agreement idx 17L

let test_fptree_recovery_rebuilds () =
  let m, t, idx = fp_index () in
  for i = 0 to 1999 do
    Baselines.Index_intf.insert idx (ik i) i
  done;
  Machine.crash m Machine.Strict;
  Baselines.Fptree.recover t;
  ignore (Baselines.Fptree.check_invariants t);
  for i = 0 to 1999 do
    if Baselines.Fptree.lookup t (ik i) = None then Alcotest.failf "key %d lost" i
  done

let test_fptree_concurrent () =
  let m = make_machine () in
  let t = Baselines.Fptree.create m ~capacity:(1 lsl 22) () in
  let sched = Des.Sched.create () in
  let threads = 6 and per = 200 in
  for i = 0 to threads - 1 do
    Des.Sched.spawn sched ~numa:(i mod 2) ~name:(Printf.sprintf "w%d" i) (fun () ->
        for j = 0 to per - 1 do
          Baselines.Fptree.insert t (ik ((j * threads) + i)) j
        done)
  done;
  Des.Sched.run sched;
  Alcotest.(check int) "all keys" (threads * per) (Baselines.Fptree.check_invariants t);
  Alcotest.(check bool) "htm was exercised" true
    ((Baselines.Fptree.htm_stats t).Baselines.Htm.attempts > 0)

(* ---------- standalone PDL-ART ---------- *)

let pdl_index () =
  let m = make_machine () in
  let t = Baselines.Pdlart.create m ~capacity:(1 lsl 22) () in
  (m, t, Baselines.Index_intf.Index ((module Baselines.Pdlart.Index), t))

let test_pdlart_generic () =
  let _, _, idx = pdl_index () in
  generic_checks idx

let test_pdlart_model () =
  let _, _, idx = pdl_index () in
  model_agreement idx 19L

let test_pdlart_alloc_heavy () =
  (* GA3: every PDL-ART insert allocates at least one NVM object,
     while PACTree's slotted leaves amortise allocation. *)
  let m = make_machine () in
  let t = Baselines.Pdlart.create m ~capacity:(1 lsl 22) () in
  let heap_allocs_pdl () = (Pmalloc.Heap.stats (Baselines.Pdlart.heap t)).Pmalloc.Heap.allocs in
  let before = heap_allocs_pdl () in
  for i = 0 to 499 do
    Baselines.Pdlart.insert t (ik i) i
  done;
  let pdl_allocs = heap_allocs_pdl () - before in
  Alcotest.(check bool)
    (Printf.sprintf "one alloc per insert at least (%d/500)" pdl_allocs)
    true (pdl_allocs >= 500);
  let m2 = make_machine () in
  let cfg =
    {
      Pactree.Tree.default_config with
      data_capacity = 1 lsl 22;
      search_capacity = 1 lsl 21;
    }
  in
  let tree = Pactree.Tree.create m2 ~cfg () in
  let before = (Pmalloc.Heap.stats (Pactree.Tree.data_heap tree)).Pmalloc.Heap.allocs in
  for i = 0 to 499 do
    Pactree.Tree.insert tree (ik i) i
  done;
  let pac_allocs =
    (Pmalloc.Heap.stats (Pactree.Tree.data_heap tree)).Pmalloc.Heap.allocs - before
  in
  Alcotest.(check bool)
    (Printf.sprintf "PACTree amortises allocation (%d vs %d)" pac_allocs pdl_allocs)
    true
    (pac_allocs * 10 < pdl_allocs)

let test_pdlart_crash_recovery () =
  let m, t, idx = pdl_index () in
  for i = 0 to 999 do
    Baselines.Index_intf.insert idx (ik i) i
  done;
  Machine.crash m Machine.Strict;
  Baselines.Pdlart.recover t;
  for i = 0 to 999 do
    if Baselines.Pdlart.lookup t (ik i) = None then Alcotest.failf "key %d lost" i
  done

let suite =
  [
    Alcotest.test_case "fastfair: generic" `Quick test_fastfair_generic;
    Alcotest.test_case "fastfair: model agreement" `Quick test_fastfair_model;
    Alcotest.test_case "fastfair: invariants" `Quick test_fastfair_invariants;
    Alcotest.test_case "fastfair: string keys" `Quick test_fastfair_string_keys;
    Alcotest.test_case "fastfair: string keys read more (Fig 4)" `Quick
      test_fastfair_string_reads_more_nvm;
    Alcotest.test_case "fastfair: concurrent" `Quick test_fastfair_concurrent;
    Alcotest.test_case "bztree: generic" `Quick test_bztree_generic;
    Alcotest.test_case "bztree: model agreement" `Quick test_bztree_model;
    Alcotest.test_case "bztree: consolidation" `Quick test_bztree_consolidates;
    Alcotest.test_case "bztree: flush heavy (§6.1)" `Quick test_bztree_flush_heavy;
    Alcotest.test_case "bztree: concurrent" `Quick test_bztree_concurrent;
    Alcotest.test_case "htm: small footprint commits" `Quick test_htm_small_footprint_commits;
    Alcotest.test_case "htm: capacity aborts (GC3)" `Quick test_htm_capacity_aborts;
    Alcotest.test_case "htm: conflict aborts" `Quick test_htm_conflict_aborts_with_threads;
    Alcotest.test_case "htm: fallback progress" `Quick test_htm_fallback_progress;
    Alcotest.test_case "fptree: generic" `Quick test_fptree_generic;
    Alcotest.test_case "fptree: model agreement" `Quick test_fptree_model;
    Alcotest.test_case "fptree: recovery rebuilds internals" `Quick
      test_fptree_recovery_rebuilds;
    Alcotest.test_case "fptree: concurrent + HTM" `Quick test_fptree_concurrent;
    Alcotest.test_case "pdlart: generic" `Quick test_pdlart_generic;
    Alcotest.test_case "pdlart: model agreement" `Quick test_pdlart_model;
    Alcotest.test_case "pdlart: allocation heavy (GA3)" `Quick test_pdlart_alloc_heavy;
    Alcotest.test_case "pdlart: crash recovery" `Quick test_pdlart_crash_recovery;
  ]
