(* Direct tests of the slotted data node (paper Fig 8, §5.5) and of
   the per-thread SMO log and epoch manager. *)

module Machine = Nvm.Machine
module Pool = Nvm.Pool
module Heap = Pmalloc.Heap
module Node = Pactree.Data_node
module Key = Pactree.Key
module Vlock = Pactree.Vlock

let gen = 1

let make_node ?(key_inline = 8) ?(persist_perm = false) () =
  let machine = Machine.create ~numa_count:1 () in
  let lay = Node.layout ~persist_perm ~key_inline () in
  let pool = Pool.create machine ~name:"node" ~numa:0 ~capacity:(1 lsl 16) () in
  Pmalloc.Registry.register pool;
  let node = { Node.pool; off = 256 } in
  Node.init lay node ~gen ~anchor:"" ~next:Pmalloc.Pptr.null ~prev:Pmalloc.Pptr.null;
  (machine, lay, node)

let ik = Key.of_int

let test_insert_find () =
  let _, lay, node = make_node () in
  Alcotest.(check bool) "insert" true (Node.insert lay node (ik 5) 50 = Node.Ok);
  Alcotest.(check bool) "insert" true (Node.insert lay node (ik 9) 90 = Node.Ok);
  (match Node.find lay node (ik 5) with
  | Some (_, v) -> Alcotest.(check int) "found value" 50 v
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "absent" true (Node.find lay node (ik 7) = None);
  Alcotest.(check int) "live count" 2 (Node.live_count node)

let test_node_fills_at_64 () =
  let _, lay, node = make_node () in
  for i = 0 to Node.entries - 1 do
    Alcotest.(check bool) (Printf.sprintf "insert %d" i) true
      (Node.insert lay node (ik i) i = Node.Ok)
  done;
  Alcotest.(check bool) "65th insert is Full" true
    (Node.insert lay node (ik 1000) 0 = Node.Full)

let test_delete_and_slot_reuse () =
  let _, lay, node = make_node () in
  for i = 0 to 63 do
    ignore (Node.insert lay node (ik i) i)
  done;
  Alcotest.(check bool) "delete" true (Node.delete lay node (ik 3) = Node.Ok);
  Alcotest.(check bool) "delete absent" true (Node.delete lay node (ik 3) = Node.Absent);
  Alcotest.(check bool) "slot freed, insert fits" true
    (Node.insert lay node (ik 1000) 1 = Node.Ok)

let test_update_out_of_place () =
  let _, lay, node = make_node () in
  ignore (Node.insert lay node (ik 1) 10);
  Alcotest.(check bool) "update" true (Node.update lay node (ik 1) 11 = Node.Ok);
  (match Node.find lay node (ik 1) with
  | Some (_, v) -> Alcotest.(check int) "new value" 11 v
  | None -> Alcotest.fail "missing");
  Alcotest.(check int) "still one live entry" 1 (Node.live_count node);
  Alcotest.(check bool) "update absent" true (Node.update lay node (ik 2) 0 = Node.Absent)

let test_update_in_place_when_full () =
  let _, lay, node = make_node () in
  for i = 0 to 63 do
    ignore (Node.insert lay node (ik i) i)
  done;
  Alcotest.(check bool) "update works on full node" true
    (Node.update lay node (ik 7) 700 = Node.Ok);
  match Node.find lay node (ik 7) with
  | Some (_, v) -> Alcotest.(check int) "updated" 700 v
  | None -> Alcotest.fail "missing"

let test_insert_crash_before_bitmap_invisible () =
  (* The bitmap is the linearization point: a crash after the kv
     persist but before the bitmap persist must hide the key. *)
  let machine, lay, node = make_node () in
  ignore (Node.insert lay node (ik 1) 10);
  (* hand-run the first half of the insert protocol for a second key *)
  Machine.crash machine Machine.Strict;
  (* key 1 was fully inserted pre-crash: bitmap persisted *)
  Alcotest.(check bool) "persisted key visible" true (Node.find lay node (ik 1) <> None);
  Alcotest.(check int) "live count" 1 (Node.live_count node)

let test_scan_from_sorted () =
  let _, lay, node = make_node () in
  (* insert out of order *)
  List.iter (fun i -> ignore (Node.insert lay node (ik i) i)) [ 9; 3; 7; 1; 5 ];
  let acc = ref [] in
  ignore (Node.scan_from lay node (ik 3) ~f:(fun k v ->
      acc := (Key.to_int k, v) :: !acc;
      true));
  Alcotest.(check (list (pair int int))) "sorted from 3"
    [ (3, 3); (5, 5); (7, 7); (9, 9) ]
    (List.rev !acc)

let test_permutation_cache_invalidation () =
  let _, lay, node = make_node () in
  List.iter (fun i -> ignore (Node.insert lay node (ik i) i)) [ 2; 1 ];
  Alcotest.(check int) "refresh" 2 (Node.refresh_permutation lay node);
  (* a write bumps the version; the permutation must rebuild *)
  let h = Node.lock_handle node in
  let wv = Vlock.acquire h ~gen in
  ignore (Node.insert lay node (ik 0) 0);
  Vlock.release h ~gen ~version:wv;
  let acc = ref [] in
  ignore (Node.scan_from lay node (ik 0) ~f:(fun k _ ->
      acc := Key.to_int k :: !acc;
      true));
  Alcotest.(check (list int)) "rebuilt order" [ 0; 1; 2 ] (List.rev !acc)

let test_string_layout () =
  let _, lay, node = make_node ~key_inline:32 () in
  let keys = [ "alpha"; "beta"; "a-much-longer-key-string!"; "z" ] in
  List.iteri (fun i k -> ignore (Node.insert lay node (Key.of_string k) i)) keys;
  List.iteri
    (fun i k ->
      match Node.find lay node (Key.of_string k) with
      | Some (_, v) -> Alcotest.(check int) k i v
      | None -> Alcotest.failf "missing %s" k)
    keys;
  let sorted = Node.sorted_live lay node in
  Alcotest.(check (list string)) "sorted"
    (List.sort compare keys)
    (List.map fst sorted)

let test_anchor_compare () =
  let machine = Machine.create ~numa_count:1 () in
  let lay = Node.layout ~key_inline:32 () in
  let pool = Pool.create machine ~name:"anchor" ~numa:0 ~capacity:(1 lsl 16) () in
  Pmalloc.Registry.register pool;
  let node = { Node.pool; off = 256 } in
  Node.init lay node ~gen ~anchor:"mmm" ~next:Pmalloc.Pptr.null ~prev:Pmalloc.Pptr.null;
  Alcotest.(check string) "anchor" "mmm" (Node.anchor lay node);
  Alcotest.(check bool) "less" true (Node.compare_anchor node "zzz" < 0);
  Alcotest.(check bool) "greater" true (Node.compare_anchor node "aaa" > 0);
  Alcotest.(check int) "equal" 0 (Node.compare_anchor node "mmm")

let test_qcheck_node_model =
  QCheck.Test.make ~name:"data node: agrees with a map model" ~count:100
    QCheck.(list (pair (int_bound 100) (int_bound 3)))
    (fun ops ->
      let _, lay, node = make_node () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, op) ->
          let key = ik k in
          match op with
          | 0 | 1 ->
              if Hashtbl.mem model k then begin
                ignore (Node.update lay node key (k * 2));
                Hashtbl.replace model k (k * 2)
              end
              else if Node.insert lay node key k = Node.Ok then Hashtbl.replace model k k
          | 2 ->
              ignore (Node.delete lay node key);
              Hashtbl.remove model k
          | _ -> ())
        ops;
      Hashtbl.fold
        (fun k v ok ->
          ok
          && match Node.find lay node (ik k) with Some (_, v') -> v' = v | None -> false)
        model
        (Node.live_count node = Hashtbl.length model))

(* ---------- SMO log ---------- *)

let make_log () =
  let machine = Machine.create ~numa_count:2 () in
  let pools =
    Array.init 2 (fun i ->
        let p =
          Pool.create machine
            ~name:(Printf.sprintf "log%d" i)
            ~numa:i
            ~capacity:Pactree.Smo_log.region_size ()
        in
        Pmalloc.Registry.register p;
        p)
  in
  (machine, Pactree.Smo_log.create pools ~base:0)

let test_smo_log_roundtrip () =
  let _, log = make_log () in
  let e =
    Pactree.Smo_log.append log ~ts:7
      (Pactree.Smo_log.Split { left = Pmalloc.Pptr.make ~pool:3 ~off:512; anchor = "ab" })
  in
  (match Pactree.Smo_log.read e with
  | Some (7, Pactree.Smo_log.Split { left; anchor }) ->
      Alcotest.(check int) "left off" 512 (Pmalloc.Pptr.off left);
      Alcotest.(check string) "anchor" "ab" anchor
  | _ -> Alcotest.fail "bad decode");
  Alcotest.(check int) "active" 1 (Pactree.Smo_log.active_count log);
  Pactree.Smo_log.clear e;
  Alcotest.(check int) "cleared" 0 (Pactree.Smo_log.active_count log);
  Alcotest.(check bool) "read after clear" true (Pactree.Smo_log.read e = None)

let test_smo_log_merge_entry () =
  let _, log = make_log () in
  let left = Pmalloc.Pptr.make ~pool:1 ~off:256 in
  let right = Pmalloc.Pptr.make ~pool:1 ~off:1024 in
  let e = Pactree.Smo_log.append log ~ts:9 (Pactree.Smo_log.Merge { left; right; anchor = "k" }) in
  (match Pactree.Smo_log.read e with
  | Some (9, Pactree.Smo_log.Merge m) ->
      Alcotest.(check bool) "left" true (Pmalloc.Pptr.equal m.left left);
      Alcotest.(check bool) "right" true (Pmalloc.Pptr.equal m.right right)
  | _ -> Alcotest.fail "bad decode");
  Alcotest.(check bool) "aux = right" true (Pmalloc.Pptr.equal (Pactree.Smo_log.aux e) right)

let test_smo_log_survives_crash () =
  let machine, log = make_log () in
  let e =
    Pactree.Smo_log.append log ~ts:1
      (Pactree.Smo_log.Split { left = Pmalloc.Pptr.make ~pool:2 ~off:256; anchor = "x" })
  in
  ignore e;
  Machine.crash machine Machine.Strict;
  Alcotest.(check int) "entry survives crash" 1 (Pactree.Smo_log.active_count log)

let test_smo_log_iter_active () =
  let _, log = make_log () in
  for i = 1 to 5 do
    ignore
      (Pactree.Smo_log.append log ~ts:i
         (Pactree.Smo_log.Split { left = Pmalloc.Pptr.make ~pool:2 ~off:(i * 256); anchor = "k" }))
  done;
  let seen = ref [] in
  Pactree.Smo_log.iter_active log ~f:(fun e ->
      match Pactree.Smo_log.read e with
      | Some (ts, _) -> seen := ts :: !seen
      | None -> ());
  Alcotest.(check (list int)) "all entries" [ 1; 2; 3; 4; 5 ] (List.sort compare !seen)

(* ---------- epochs ---------- *)

let test_epoch_two_epoch_rule () =
  let e = Pactree.Epoch.create () in
  let sched = Des.Sched.create () in
  let freed = ref false in
  Des.Sched.spawn sched ~name:"t" (fun () ->
      Pactree.Epoch.enter e;
      Pactree.Epoch.defer e (fun () -> freed := true);
      (* while the deferring operation is still active, at most one
         epoch can pass — the action must not run *)
      Pactree.Epoch.try_advance e;
      Pactree.Epoch.try_advance e;
      Pactree.Epoch.try_advance e;
      Alcotest.(check bool) "not freed while op active" false !freed;
      Pactree.Epoch.exit e;
      Pactree.Epoch.try_advance e;
      Pactree.Epoch.try_advance e;
      Alcotest.(check bool) "freed after exit + two advances" true !freed);
  Des.Sched.run sched

let test_epoch_blocked_by_active_reader () =
  let e = Pactree.Epoch.create () in
  let sched = Des.Sched.create () in
  let freed = ref false in
  Des.Sched.spawn sched ~name:"reader" (fun () ->
      Pactree.Epoch.enter e;
      Des.Sched.delay 1.0;
      Pactree.Epoch.exit e);
  Des.Sched.spawn sched ~name:"writer" (fun () ->
      Des.Sched.delay 0.1;
      Pactree.Epoch.enter e;
      Pactree.Epoch.defer e (fun () -> freed := true);
      Pactree.Epoch.exit e;
      (* reader still active in an old epoch: cannot free yet *)
      Pactree.Epoch.try_advance e;
      Pactree.Epoch.try_advance e;
      Alcotest.(check bool) "blocked by reader" false !freed);
  Des.Sched.run sched;
  Pactree.Epoch.try_advance e;
  Pactree.Epoch.try_advance e;
  Alcotest.(check bool) "freed after reader exits" true !freed

let test_epoch_reentrancy () =
  let e = Pactree.Epoch.create () in
  Pactree.Epoch.enter e;
  Pactree.Epoch.enter e;
  Pactree.Epoch.exit e;
  Pactree.Epoch.exit e;
  Alcotest.(check int) "no pending" 0 (Pactree.Epoch.pending e)

let test_epoch_unpin_while () =
  let e = Pactree.Epoch.create () in
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"t" (fun () ->
      Pactree.Epoch.enter e;
      let before = Pactree.Epoch.current e in
      Pactree.Epoch.unpin_while e (fun () ->
          Pactree.Epoch.try_advance e;
          Pactree.Epoch.try_advance e);
      Alcotest.(check bool) "advanced past our pin" true
        (Pactree.Epoch.current e >= before + 2);
      Pactree.Epoch.exit e);
  Des.Sched.run sched

let suite =
  [
    Alcotest.test_case "node: insert/find" `Quick test_insert_find;
    Alcotest.test_case "node: fills at 64" `Quick test_node_fills_at_64;
    Alcotest.test_case "node: delete + slot reuse" `Quick test_delete_and_slot_reuse;
    Alcotest.test_case "node: update out-of-place" `Quick test_update_out_of_place;
    Alcotest.test_case "node: update in-place when full" `Quick
      test_update_in_place_when_full;
    Alcotest.test_case "node: bitmap is linearization point" `Quick
      test_insert_crash_before_bitmap_invisible;
    Alcotest.test_case "node: scan_from sorted" `Quick test_scan_from_sorted;
    Alcotest.test_case "node: permutation invalidation" `Quick
      test_permutation_cache_invalidation;
    Alcotest.test_case "node: string layout" `Quick test_string_layout;
    Alcotest.test_case "node: anchor compare" `Quick test_anchor_compare;
    QCheck_alcotest.to_alcotest test_qcheck_node_model;
    Alcotest.test_case "smo log: roundtrip" `Quick test_smo_log_roundtrip;
    Alcotest.test_case "smo log: merge entry" `Quick test_smo_log_merge_entry;
    Alcotest.test_case "smo log: survives crash" `Quick test_smo_log_survives_crash;
    Alcotest.test_case "smo log: iter_active" `Quick test_smo_log_iter_active;
    Alcotest.test_case "epoch: two-epoch rule" `Quick test_epoch_two_epoch_rule;
    Alcotest.test_case "epoch: blocked by active reader" `Quick
      test_epoch_blocked_by_active_reader;
    Alcotest.test_case "epoch: reentrancy" `Quick test_epoch_reentrancy;
    Alcotest.test_case "epoch: unpin_while" `Quick test_epoch_unpin_while;
  ]
