(* Tests for the discrete-event scheduler substrate. *)

let test_event_queue_order () =
  let q = Des.Event_queue.create () in
  Des.Event_queue.add q ~time:3.0 "c";
  Des.Event_queue.add q ~time:1.0 "a";
  Des.Event_queue.add q ~time:2.0 "b";
  Alcotest.(check (pair (float 0.0) string)) "min" (1.0, "a") (Des.Event_queue.pop_min q);
  Alcotest.(check (pair (float 0.0) string)) "next" (2.0, "b") (Des.Event_queue.pop_min q);
  Alcotest.(check (pair (float 0.0) string)) "last" (3.0, "c") (Des.Event_queue.pop_min q);
  Alcotest.(check bool) "empty" true (Des.Event_queue.is_empty q)

let test_event_queue_fifo_ties () =
  let q = Des.Event_queue.create () in
  Des.Event_queue.add q ~time:1.0 "first";
  Des.Event_queue.add q ~time:1.0 "second";
  Des.Event_queue.add q ~time:1.0 "third";
  let order = List.init 3 (fun _ -> snd (Des.Event_queue.pop_min q)) in
  Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ] order

let test_event_queue_many () =
  let q = Des.Event_queue.create () in
  let rng = Des.Rng.create ~seed:42L in
  for i = 0 to 999 do
    Des.Event_queue.add q ~time:(Des.Rng.float rng) i
  done;
  Alcotest.(check int) "length" 1000 (Des.Event_queue.length q);
  let prev = ref neg_infinity in
  for _ = 1 to 1000 do
    let t, _ = Des.Event_queue.pop_min q in
    Alcotest.(check bool) "sorted" true (t >= !prev);
    prev := t
  done

let test_rng_deterministic () =
  let a = Des.Rng.create ~seed:7L and b = Des.Rng.create ~seed:7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Des.Rng.next a) (Des.Rng.next b)
  done

let test_rng_split_independent () =
  let a = Des.Rng.create ~seed:7L in
  let child = Des.Rng.split a in
  let x = Des.Rng.next child and y = Des.Rng.next a in
  Alcotest.(check bool) "different values" true (x <> y)

let test_rng_int_bounds () =
  let rng = Des.Rng.create ~seed:1L in
  for _ = 1 to 10_000 do
    let v = Des.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Des.Rng.create ~seed:2L in
  for _ = 1 to 10_000 do
    let v = Des.Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_sched_delays_order_threads () =
  let sched = Des.Sched.create () in
  let log = ref [] in
  Des.Sched.spawn sched ~name:"slow" (fun () ->
      Des.Sched.delay 2.0;
      log := ("slow", Des.Sched.now sched) :: !log);
  Des.Sched.spawn sched ~name:"fast" (fun () ->
      Des.Sched.delay 1.0;
      log := ("fast", Des.Sched.now sched) :: !log);
  Des.Sched.run sched;
  Alcotest.(check (list (pair string (float 1e-9))))
    "interleaving" [ ("slow", 2.0); ("fast", 1.0) ] !log

let test_sched_charge_accumulates () =
  let sched = Des.Sched.create () in
  let finish = ref 0.0 in
  Des.Sched.spawn sched ~name:"t" (fun () ->
      Des.Sched.charge 0.5;
      Des.Sched.charge 0.25;
      Des.Sched.delay 1.0;
      finish := Des.Sched.now sched);
  Des.Sched.run sched;
  Alcotest.(check (float 1e-9)) "charge folded into delay" 1.75 !finish

let test_sched_outside_sim_noops () =
  Alcotest.(check bool) "not running" false (Des.Sched.running ());
  Des.Sched.delay 5.0;
  Des.Sched.charge 5.0;
  Alcotest.(check int) "id" (-1) (Des.Sched.current_id ());
  Alcotest.(check int) "numa" 0 (Des.Sched.current_numa ())

let test_sched_thread_identity () =
  let sched = Des.Sched.create () in
  let seen = ref [] in
  for i = 0 to 2 do
    Des.Sched.spawn sched ~numa:i ~name:(Printf.sprintf "t%d" i) (fun () ->
        seen :=
          (Des.Sched.current_id (), Des.Sched.current_numa (), Des.Sched.current_name ())
          :: !seen)
  done;
  Des.Sched.run sched;
  let sorted = List.sort compare !seen in
  Alcotest.(check (list (triple int int string)))
    "identities"
    [ (0, 0, "t0"); (1, 1, "t1"); (2, 2, "t2") ]
    sorted

let test_waitq_signal_all () =
  let sched = Des.Sched.create () in
  let wq = Des.Sched.Waitq.create () in
  let woken = ref 0 in
  for i = 1 to 3 do
    Des.Sched.spawn sched ~name:(Printf.sprintf "w%d" i) (fun () ->
        Des.Sched.Waitq.wait wq;
        incr woken)
  done;
  Des.Sched.spawn sched ~name:"signaller" (fun () ->
      Des.Sched.delay 1.0;
      Des.Sched.Waitq.signal_all sched wq);
  Des.Sched.run sched;
  Alcotest.(check int) "all woken" 3 !woken

let test_waitq_signal_one_fifo () =
  let sched = Des.Sched.create () in
  let wq = Des.Sched.Waitq.create () in
  let order = ref [] in
  for i = 1 to 2 do
    Des.Sched.spawn sched ~name:(Printf.sprintf "w%d" i) (fun () ->
        Des.Sched.Waitq.wait wq;
        order := i :: !order)
  done;
  Des.Sched.spawn sched ~name:"signaller" (fun () ->
      Des.Sched.delay 1.0;
      Des.Sched.Waitq.signal_one sched wq;
      Des.Sched.delay 1.0;
      Des.Sched.Waitq.signal_one sched wq);
  Des.Sched.run sched;
  Alcotest.(check (list int)) "fifo wakeups" [ 2; 1 ] !order

let test_deadlock_detected () =
  let sched = Des.Sched.create () in
  let wq = Des.Sched.Waitq.create () in
  Des.Sched.spawn sched ~name:"stuck" (fun () -> Des.Sched.Waitq.wait wq);
  Alcotest.check_raises "blocked forever"
    (Invalid_argument "Sched.run: 1 thread(s) blocked forever (missing signal?)")
    (fun () -> Des.Sched.run sched)

let test_mutex_excludes () =
  let sched = Des.Sched.create () in
  let mutex = Des.Sync.Mutex.create () in
  let in_cs = ref 0 and max_in_cs = ref 0 and done_count = ref 0 in
  for i = 1 to 4 do
    Des.Sched.spawn sched ~name:(Printf.sprintf "t%d" i) (fun () ->
        Des.Sync.Mutex.with_lock mutex (fun () ->
            incr in_cs;
            if !in_cs > !max_in_cs then max_in_cs := !in_cs;
            Des.Sched.delay 1.0;
            decr in_cs);
        incr done_count)
  done;
  Des.Sched.run sched;
  Alcotest.(check int) "mutual exclusion" 1 !max_in_cs;
  Alcotest.(check int) "all completed" 4 !done_count;
  Alcotest.(check (float 1e-9)) "serialized time" 4.0 (Des.Sched.now sched)

let test_mutex_outside_sim () =
  let mutex = Des.Sync.Mutex.create () in
  let v = Des.Sync.Mutex.with_lock mutex (fun () -> 42) in
  Alcotest.(check int) "usable outside sim" 42 v;
  Alcotest.(check bool) "released" false (Des.Sync.Mutex.locked mutex)

let test_determinism () =
  let run () =
    let sched = Des.Sched.create () in
    let rng = Des.Rng.create ~seed:99L in
    let trace = Buffer.create 64 in
    for i = 0 to 4 do
      let rng = Des.Rng.split rng in
      Des.Sched.spawn sched ~name:(Printf.sprintf "t%d" i) (fun () ->
          for _ = 1 to 10 do
            Des.Sched.delay (Des.Rng.float rng);
            Buffer.add_string trace
              (Printf.sprintf "%d@%.6f;" (Des.Sched.current_id ())
                 (Des.Sched.now sched))
          done)
    done;
    Des.Sched.run sched;
    Buffer.contents trace
  in
  Alcotest.(check string) "identical traces" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "event queue: ordering" `Quick test_event_queue_order;
    Alcotest.test_case "event queue: FIFO ties" `Quick test_event_queue_fifo_ties;
    Alcotest.test_case "event queue: 1000 random" `Quick test_event_queue_many;
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng: float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "sched: delay ordering" `Quick test_sched_delays_order_threads;
    Alcotest.test_case "sched: charge accumulates" `Quick test_sched_charge_accumulates;
    Alcotest.test_case "sched: no-ops outside sim" `Quick test_sched_outside_sim_noops;
    Alcotest.test_case "sched: thread identity" `Quick test_sched_thread_identity;
    Alcotest.test_case "waitq: signal_all" `Quick test_waitq_signal_all;
    Alcotest.test_case "waitq: signal_one FIFO" `Quick test_waitq_signal_one_fifo;
    Alcotest.test_case "sched: deadlock detection" `Quick test_deadlock_detected;
    Alcotest.test_case "mutex: mutual exclusion" `Quick test_mutex_excludes;
    Alcotest.test_case "mutex: outside sim" `Quick test_mutex_outside_sim;
    Alcotest.test_case "sched: determinism" `Quick test_determinism;
  ]
