(* Tests for eADR mode (paper §3.5): persistent CPU caches. *)

module Machine = Nvm.Machine
module Pool = Nvm.Pool
module Key = Pactree.Key
module Tree = Pactree.Tree

let eadr_machine () =
  Machine.create ~profile:Nvm.Config.dcpmm_eadr ~numa_count:2 ()

let test_unflushed_stores_survive () =
  let m = eadr_machine () in
  let p = Pool.create m ~name:"eadr" ~numa:0 ~capacity:4096 () in
  Pool.write_int p 0 42;
  (* no clwb, no fence *)
  Machine.crash m Machine.Strict;
  Alcotest.(check int) "store survived without flush" 42 (Pool.read_int p 0)

let test_flush_and_fence_are_free () =
  let m = eadr_machine () in
  let p = Pool.create m ~name:"eadr" ~numa:0 ~capacity:4096 () in
  let before = Nvm.Stats.snapshot (Machine.stats m) in
  Pool.write_int p 0 1;
  Pool.persist p 0 8;
  let d = Nvm.Stats.diff (Machine.stats m) before in
  Alcotest.(check int) "no fences counted" 0 d.Nvm.Stats.fences;
  (* drains still consume media write bandwidth *)
  let dev = Nvm.Stats.snapshot (Nvm.Device.stats (Machine.device m 0)) in
  Alcotest.(check bool) "background drain wrote media" true (dev.Nvm.Stats.media_writes > 0)

let test_eadr_faster_writes () =
  (* The same write workload must be faster under eADR than ADR
     (persistence off the critical path), §3.5's first claim. *)
  let tput profile =
    let machine = Machine.create ~profile ~numa_count:2 () in
    let cfg =
      {
        Tree.default_config with
        Tree.data_capacity = 1 lsl 23;
        search_capacity = 1 lsl 22;
      }
    in
    let t = Tree.create machine ~cfg () in
    let index = Baselines.Pactree_index.wrap t in
    let service = Experiments.Factory.pactree_service t in
    let r =
      Workload.Runner.run ~machine ~index ~service ~mix:Workload.Ycsb.Load_a
        ~kind:Workload.Keyset.Int_keys ~loaded:0 ~ops:8_000 ~threads:8 ()
    in
    r.Workload.Runner.throughput
  in
  let adr = tput Nvm.Config.dcpmm and eadr = tput Nvm.Config.dcpmm_eadr in
  Alcotest.(check bool)
    (Printf.sprintf "eADR (%.2f M) faster than ADR (%.2f M)" (eadr /. 1e6) (adr /. 1e6))
    true (eadr > adr *. 1.2)

let test_pactree_on_eadr_crash () =
  (* The index works unchanged under eADR and recovery still holds. *)
  let machine = eadr_machine () in
  let cfg =
    {
      Tree.default_config with
      Tree.data_capacity = 1 lsl 22;
      search_capacity = 1 lsl 21;
    }
  in
  let t = Tree.create machine ~cfg () in
  for i = 0 to 1_999 do
    Tree.insert t (Key.of_int i) i
  done;
  Machine.crash machine Machine.Strict;
  ignore (Tree.recover t);
  ignore (Tree.check_invariants t);
  for i = 0 to 1_999 do
    if Tree.lookup t (Key.of_int i) <> Some i then Alcotest.failf "key %d lost" i
  done

let suite =
  [
    Alcotest.test_case "unflushed stores survive" `Quick test_unflushed_stores_survive;
    Alcotest.test_case "flush/fence are free, drains billed" `Quick
      test_flush_and_fence_are_free;
    Alcotest.test_case "writes faster than ADR" `Quick test_eadr_faster_writes;
    Alcotest.test_case "PACTree crash/recovery under eADR" `Quick test_pactree_on_eadr_crash;
  ]
