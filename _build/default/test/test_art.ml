(* Tests for Key, Vlock, Fingerprint and PDL-ART. *)

module Machine = Nvm.Machine
module Pool = Nvm.Pool
module Heap = Pmalloc.Heap
module Pptr = Pmalloc.Pptr
module Key = Pactree.Key
module Art = Pactree.Art

(* ---------- Key ---------- *)

let test_key_int_roundtrip () =
  List.iter
    (fun i -> Alcotest.(check int) "roundtrip" i (Key.to_int (Key.of_int i)))
    [ 0; 1; -1; 42; max_int; min_int; 123456789 ]

let test_key_int_order =
  QCheck.Test.make ~name:"key: int order preserved" ~count:2000
    QCheck.(pair int int)
    (fun (a, b) -> compare a b = compare (Key.of_int a) (Key.of_int b))

let test_key_string_validation () =
  Alcotest.check_raises "too long"
    (Invalid_argument "Key.of_string: length 33 > 32") (fun () ->
      ignore (Key.of_string (String.make 33 'x')));
  Alcotest.check_raises "nul byte" (Invalid_argument "Key.of_string: NUL byte in key")
    (fun () -> ignore (Key.of_string "a\000b"))

let test_key_radix () =
  let k = Key.of_string "hello" in
  Alcotest.(check string) "terminator" "hello\000" (Key.to_radix k);
  Alcotest.(check string) "roundtrip" "hello" (Key.of_radix (Key.to_radix k));
  (* radix order = key order, including prefixes *)
  Alcotest.(check bool) "prefix-free order" true
    (String.compare (Key.to_radix "ab") (Key.to_radix "abc") < 0)

(* ---------- Vlock ---------- *)

let vlock_handle () =
  let m = Machine.create ~numa_count:1 () in
  let p = Pool.create m ~name:"lock" ~numa:0 ~capacity:4096 () in
  { Pactree.Vlock.pool = p; off = 64 }

let test_vlock_basic () =
  let h = vlock_handle () in
  Pactree.Vlock.init h ~gen:1;
  let v = Pactree.Vlock.begin_read h ~gen:1 in
  Alcotest.(check bool) "even" false (Pactree.Vlock.is_locked v);
  Alcotest.(check bool) "validates" true (Pactree.Vlock.validate h ~gen:1 ~version:v);
  let wv = Pactree.Vlock.acquire h ~gen:1 in
  Alcotest.(check bool) "locked" true (Pactree.Vlock.is_locked wv);
  Alcotest.(check bool) "reader invalidated" false
    (Pactree.Vlock.validate h ~gen:1 ~version:v);
  Pactree.Vlock.release h ~gen:1 ~version:wv;
  let v2 = Pactree.Vlock.begin_read h ~gen:1 in
  (* versions move in steps of 4: bit 0 = locked, bit 1 = obsolete *)
  Alcotest.(check int) "version counter advanced" (v + 4) v2;
  Alcotest.(check bool) "not obsolete" false (Pactree.Vlock.is_obsolete v2)

let test_vlock_generation_reset () =
  let h = vlock_handle () in
  Pactree.Vlock.init h ~gen:1;
  let wv = Pactree.Vlock.acquire h ~gen:1 in
  Alcotest.(check bool) "locked in gen 1" true (Pactree.Vlock.is_locked wv);
  (* Simulates restart: generation bump voids the held lock. *)
  let v = Pactree.Vlock.read_version h ~gen:2 in
  Alcotest.(check int) "reset to 0" 0 v;
  Alcotest.(check bool) "unlocked" false (Pactree.Vlock.is_locked v)

let test_vlock_upgrade_race () =
  let h = vlock_handle () in
  Pactree.Vlock.init h ~gen:1;
  let v = Pactree.Vlock.begin_read h ~gen:1 in
  Alcotest.(check bool) "upgrade wins" true (Pactree.Vlock.try_upgrade h ~gen:1 ~version:v);
  Alcotest.(check bool) "second upgrade loses" false
    (Pactree.Vlock.try_upgrade h ~gen:1 ~version:v)

let test_vlock_obsolete () =
  let h = vlock_handle () in
  Pactree.Vlock.init h ~gen:1;
  let wv = Pactree.Vlock.acquire h ~gen:1 in
  Pactree.Vlock.release_obsolete h ~gen:1 ~version:wv;
  let v = Pactree.Vlock.read_version h ~gen:1 in
  Alcotest.(check bool) "obsolete" true (Pactree.Vlock.is_obsolete v);
  Alcotest.(check bool) "not locked" false (Pactree.Vlock.is_locked v);
  Alcotest.(check bool) "cannot relock" false (Pactree.Vlock.try_upgrade h ~gen:1 ~version:v)

let test_vlock_blocks_until_release () =
  let h = vlock_handle () in
  Pactree.Vlock.init h ~gen:1;
  let sched = Des.Sched.create () in
  let acquired_at = ref 0.0 in
  Des.Sched.spawn sched ~name:"holder" (fun () ->
      let wv = Pactree.Vlock.acquire h ~gen:1 in
      Des.Sched.delay 1e-6;
      Pactree.Vlock.release h ~gen:1 ~version:wv);
  Des.Sched.spawn sched ~name:"waiter" (fun () ->
      Des.Sched.delay 1e-9 (* let holder go first *);
      let wv = Pactree.Vlock.acquire h ~gen:1 in
      acquired_at := Des.Sched.now sched;
      Pactree.Vlock.release h ~gen:1 ~version:wv);
  Des.Sched.run sched;
  Alcotest.(check bool) "waited for release" true (!acquired_at >= 1e-6)

(* ---------- Fingerprint ---------- *)

let test_fingerprint_range () =
  for i = 0 to 999 do
    let fp = Pactree.Fingerprint.of_key (Key.of_int i) in
    Alcotest.(check bool) "in [1,255]" true (fp >= 1 && fp <= 255)
  done

let test_fingerprint_distribution () =
  let buckets = Array.make 256 0 in
  for i = 0 to 9999 do
    let fp = Pactree.Fingerprint.of_key (Key.of_int i) in
    buckets.(fp) <- buckets.(fp) + 1
  done;
  let used = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 buckets in
  Alcotest.(check bool) (Printf.sprintf "spread over many values (%d)" used) true (used > 150)

(* ---------- ART ---------- *)

type art_ctx = {
  machine : Machine.t;
  art : Art.t;
  heap : Heap.t;
  kv_heap : Heap.t;
  kv_keys : (int, string) Hashtbl.t; (* kv record off -> radix key *)
}

(* Leaf payloads are tiny kv records; we keep their radix keys in a
   volatile mirror for key_of_leaf plus the record's key on NVM. *)
let make_art () =
  let machine = Machine.create ~numa_count:2 () in
  let heap =
    Heap.create machine ~kind:Heap.Pmdk ~name:"art" ~numa_pools:2 ~capacity:(1 lsl 22) ()
  in
  let kv_heap =
    Heap.create machine ~kind:Heap.Pmdk ~name:"kv" ~numa_pools:1 ~capacity:(1 lsl 22) ()
  in
  let meta = Pool.create machine ~name:"meta" ~numa:0 ~capacity:(Art.meta_size + 4096) () in
  Pmalloc.Registry.register meta;
  let kv_keys = Hashtbl.create 1024 in
  let key_of_leaf ptr =
    match Hashtbl.find_opt kv_keys (Pptr.off ptr) with
    | Some k -> k
    | None ->
        (* read from the record itself: len byte + bytes *)
        let pool = Pmalloc.Registry.resolve ptr in
        let len = Pool.read_u8 pool (Pptr.off ptr) in
        Pool.read_string pool (Pptr.off ptr + 1) len
  in
  let epoch = Pactree.Epoch.create () in
  let art = Art.create ~heap ~meta ~epoch ~key_of_leaf in
  { machine; art; heap; kv_heap; kv_keys }

let add_payload ctx rkey =
  let ptr = Heap.alloc ctx.kv_heap ~numa:0 64 in
  let pool = Pmalloc.Registry.resolve ptr in
  Pool.write_u8 pool (Pptr.off ptr) (String.length rkey);
  Pool.write_string pool (Pptr.off ptr + 1) rkey;
  Pool.persist pool (Pptr.off ptr) (1 + String.length rkey);
  Hashtbl.replace ctx.kv_keys (Pptr.off ptr) rkey;
  ptr

let insert_key ctx k =
  let rkey = Key.to_radix k in
  let p = add_payload ctx rkey in
  ignore (Art.insert ctx.art rkey p);
  p

let test_art_insert_lookup_small () =
  let ctx = make_art () in
  let keys = [ "a"; "ab"; "abc"; "b"; "ba"; "zzz"; "" ] in
  let ptrs = List.map (fun k -> (k, insert_key ctx k)) keys in
  List.iter
    (fun (k, p) ->
      match Art.lookup ctx.art (Key.to_radix k) with
      | Some found -> Alcotest.(check bool) ("found " ^ k) true (Pptr.equal found p)
      | None -> Alcotest.failf "key %S not found" k)
    ptrs;
  Alcotest.(check (option int)) "missing key" None
    (Option.map Pptr.off (Art.lookup ctx.art (Key.to_radix "nope")));
  Alcotest.(check int) "cardinal" (List.length keys) (Art.cardinal ctx.art)

let test_art_insert_lookup_many_ints () =
  let ctx = make_art () in
  let n = 2000 in
  let ptrs = Array.init n (fun i -> insert_key ctx (Key.of_int (i * 7919))) in
  for i = 0 to n - 1 do
    match Art.lookup ctx.art (Key.to_radix (Key.of_int (i * 7919))) with
    | Some p -> Alcotest.(check bool) "ptr matches" true (Pptr.equal p ptrs.(i))
    | None -> Alcotest.failf "int key %d missing" (i * 7919)
  done;
  Alcotest.(check int) "cardinal" n (Art.cardinal ctx.art)

let test_art_duplicate_insert_replaces () =
  let ctx = make_art () in
  let rkey = Key.to_radix (Key.of_int 1) in
  let p1 = add_payload ctx rkey in
  let p2 = add_payload ctx rkey in
  Alcotest.(check bool) "first insert" true (Art.insert ctx.art rkey p1 = Art.Inserted);
  Alcotest.(check bool) "second replaces, returns old" true
    (match Art.insert ctx.art rkey p2 with
    | Art.Replaced old -> Pptr.equal old p1
    | Art.Inserted -> false);
  match Art.lookup ctx.art rkey with
  | Some p -> Alcotest.(check bool) "new payload" true (Pptr.equal p p2)
  | None -> Alcotest.fail "missing"

let test_art_delete () =
  let ctx = make_art () in
  let keys = List.init 300 (fun i -> Key.of_int i) in
  List.iter (fun k -> ignore (insert_key ctx k)) keys;
  (* delete the odd ones *)
  List.iteri
    (fun i k ->
      if i mod 2 = 1 then
        Alcotest.(check bool) "deleted" true (Art.delete ctx.art (Key.to_radix k) <> None))
    keys;
  List.iteri
    (fun i k ->
      let found = Art.lookup ctx.art (Key.to_radix k) <> None in
      Alcotest.(check bool) (Printf.sprintf "key %d presence" i) (i mod 2 = 0) found)
    keys;
  Alcotest.(check (option int)) "delete missing returns None" None
    (Option.map Pptr.off (Art.delete ctx.art (Key.to_radix (Key.of_int 100000))))

let test_art_delete_all_then_reinsert () =
  let ctx = make_art () in
  let keys = List.init 100 (fun i -> Key.of_int i) in
  List.iter (fun k -> ignore (insert_key ctx k)) keys;
  List.iter (fun k -> ignore (Art.delete ctx.art (Key.to_radix k))) keys;
  Alcotest.(check int) "empty" 0 (Art.cardinal ctx.art);
  List.iter (fun k -> ignore (insert_key ctx k)) keys;
  Alcotest.(check int) "reinserted" 100 (Art.cardinal ctx.art)

let test_art_lookup_le () =
  let ctx = make_art () in
  (* keys 0, 10, 20, ..., 990 *)
  let tbl = Hashtbl.create 64 in
  for i = 0 to 99 do
    let k = Key.of_int (i * 10) in
    Hashtbl.replace tbl (Pptr.off (insert_key ctx k)) (i * 10)
  done;
  let le q =
    match Art.lookup_le ctx.art (Key.to_radix (Key.of_int q)) with
    | None -> None
    | Some p -> Some (Hashtbl.find tbl (Pptr.off p))
  in
  Alcotest.(check (option int)) "exact" (Some 500) (le 500);
  Alcotest.(check (option int)) "between" (Some 500) (le 509);
  Alcotest.(check (option int)) "above max" (Some 990) (le 5000);
  Alcotest.(check (option int)) "first" (Some 0) (le 0);
  Alcotest.(check (option int)) "below min" None (le (-1))

let test_art_lookup_le_strings () =
  let ctx = make_art () in
  let keys = [ ""; "apple"; "apply"; "banana"; "band"; "bandana"; "zoo" ] in
  List.iter (fun k -> ignore (insert_key ctx k)) keys;
  let le q expect =
    match Art.lookup_le ctx.art (Key.to_radix q) with
    | None -> Alcotest.(check (option string)) ("le " ^ q) expect None
    | Some p ->
        let rkey = Hashtbl.find ctx.kv_keys (Pptr.off p) in
        Alcotest.(check (option string)) ("le " ^ q) expect (Some (Key.of_radix rkey))
  in
  le "apple" (Some "apple");
  le "applesauce" (Some "apple");
  le "apricot" (Some "apply");
  le "bandage" (Some "band");
  le "car" (Some "bandana");
  le "zzz" (Some "zoo");
  le "a" (Some "");
  le "" (Some "")

let test_art_iter_from () =
  let ctx = make_art () in
  let n = 500 in
  for i = 0 to n - 1 do
    ignore (insert_key ctx (Key.of_int (i * 3)))
  done;
  let collected = ref [] in
  Art.iter_from ctx.art
    (Key.to_radix (Key.of_int 600))
    (fun p ->
      let rkey = Hashtbl.find ctx.kv_keys (Pptr.off p) in
      collected := Key.to_int (Key.of_radix rkey) :: !collected;
      List.length !collected < 10);
  let got = List.rev !collected in
  Alcotest.(check (list int)) "ordered from 600"
    [ 600; 603; 606; 609; 612; 615; 618; 621; 624; 627 ]
    got

let test_art_iter_all_sorted () =
  let ctx = make_art () in
  let rng = Des.Rng.create ~seed:77L in
  let seen = Hashtbl.create 64 in
  for _ = 0 to 999 do
    let k = Des.Rng.int rng 100000 in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      ignore (insert_key ctx (Key.of_int k))
    end
  done;
  let collected = ref [] in
  Art.iter_from ctx.art (Key.to_radix (Key.of_int min_int)) (fun p ->
      let rkey = Hashtbl.find ctx.kv_keys (Pptr.off p) in
      collected := Key.to_int (Key.of_radix rkey) :: !collected;
      true);
  let got = List.rev !collected in
  let expected = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []) in
  Alcotest.(check int) "count" (List.length expected) (List.length got);
  Alcotest.(check (list int)) "sorted enumeration" expected got

let test_art_qcheck_model =
  QCheck.Test.make ~name:"art: agrees with a map model (random ops)" ~count:30
    QCheck.(list (pair (int_bound 500) bool))
    (fun ops ->
      let ctx = make_art () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, ins) ->
          let key = Key.of_int k in
          if ins then begin
            let p = add_payload ctx (Key.to_radix key) in
            ignore (Art.insert ctx.art (Key.to_radix key) p);
            Hashtbl.replace model k p
          end
          else begin
            let deleted = Art.delete ctx.art (Key.to_radix key) <> None in
            let expected = Hashtbl.mem model k in
            Hashtbl.remove model k;
            if deleted <> expected then raise Exit
          end)
        ops;
      Hashtbl.iter
        (fun k p ->
          match Art.lookup ctx.art (Key.to_radix (Key.of_int k)) with
          | Some q when Pptr.equal p q -> ()
          | _ -> raise Exit)
        model;
      Art.cardinal ctx.art = Hashtbl.length model)

let test_art_concurrent_inserts () =
  let ctx = make_art () in
  let sched = Des.Sched.create () in
  let threads = 8 and per = 200 in
  for t = 0 to threads - 1 do
    Des.Sched.spawn sched ~numa:(t mod 2) ~name:(Printf.sprintf "w%d" t) (fun () ->
        for i = 0 to per - 1 do
          ignore (insert_key ctx (Key.of_int ((i * threads) + t)))
        done)
  done;
  Des.Sched.run sched;
  Alcotest.(check int) "all inserted" (threads * per) (Art.cardinal ctx.art);
  for k = 0 to (threads * per) - 1 do
    if Art.lookup ctx.art (Key.to_radix (Key.of_int k)) = None then
      Alcotest.failf "key %d lost" k
  done

let test_art_concurrent_mixed () =
  let ctx = make_art () in
  (* preload evens *)
  for i = 0 to 499 do
    ignore (insert_key ctx (Key.of_int (i * 2)))
  done;
  let sched = Des.Sched.create () in
  let lookup_failures = ref 0 in
  (* writers insert odds, readers look up evens (must always hit) *)
  for t = 0 to 3 do
    Des.Sched.spawn sched ~numa:(t mod 2) ~name:(Printf.sprintf "ins%d" t) (fun () ->
        let rec go i =
          if i < 125 then begin
            ignore (insert_key ctx (Key.of_int ((((t * 125) + i) * 2) + 1)));
            go (i + 1)
          end
        in
        go 0)
  done;
  for t = 0 to 3 do
    Des.Sched.spawn sched ~numa:(t mod 2) ~name:(Printf.sprintf "rd%d" t) (fun () ->
        let rng = Des.Rng.create ~seed:(Int64.of_int t) in
        for _ = 0 to 499 do
          let k = Des.Rng.int rng 500 * 2 in
          if Art.lookup ctx.art (Key.to_radix (Key.of_int k)) = None then
            incr lookup_failures
        done)
  done;
  Des.Sched.run sched;
  Alcotest.(check int) "no reader ever missed a preloaded key" 0 !lookup_failures;
  Alcotest.(check int) "final cardinality" 1000 (Art.cardinal ctx.art)

let test_art_crash_recovery_persists_inserts () =
  let ctx = make_art () in
  let n = 300 in
  for i = 0 to n - 1 do
    ignore (insert_key ctx (Key.of_int i))
  done;
  Machine.crash ctx.machine Machine.Strict;
  Heap.recover ctx.heap;
  Heap.recover ctx.kv_heap;
  let freed = Art.recover ctx.art in
  Alcotest.(check bool) "freed >= 0" true (freed >= 0);
  for i = 0 to n - 1 do
    if Art.lookup ctx.art (Key.to_radix (Key.of_int i)) = None then
      Alcotest.failf "key %d lost after crash" i
  done;
  (* the index still works after recovery *)
  ignore (insert_key ctx (Key.of_int 100000));
  Alcotest.(check bool) "post-recovery insert" true
    (Art.lookup ctx.art (Key.to_radix (Key.of_int 100000)) <> None)

let test_art_crash_mid_run_flaky () =
  (* Flaky crash: every dirty line independently survives.  All
     acknowledged inserts must still be there (durable
     linearizability); the tree must stay well-formed. *)
  let ctx = make_art () in
  let n = 200 in
  for i = 0 to n - 1 do
    ignore (insert_key ctx (Key.of_int i))
  done;
  let rng = Des.Rng.create ~seed:123L in
  Machine.crash ctx.machine (Machine.Flaky (0.5, rng));
  Heap.recover ctx.heap;
  Heap.recover ctx.kv_heap;
  ignore (Art.recover ctx.art);
  for i = 0 to n - 1 do
    if Art.lookup ctx.art (Key.to_radix (Key.of_int i)) = None then
      Alcotest.failf "acknowledged key %d lost after flaky crash" i
  done

let test_art_generation_bumps_on_recover () =
  let ctx = make_art () in
  let g0 = Art.generation ctx.art in
  Machine.crash ctx.machine Machine.Strict;
  ignore (Art.recover ctx.art);
  Alcotest.(check bool) "generation increased" true (Art.generation ctx.art > g0)

let suite =
  [
    Alcotest.test_case "key: int roundtrip" `Quick test_key_int_roundtrip;
    QCheck_alcotest.to_alcotest test_key_int_order;
    Alcotest.test_case "key: validation" `Quick test_key_string_validation;
    Alcotest.test_case "key: radix encoding" `Quick test_key_radix;
    Alcotest.test_case "vlock: basic protocol" `Quick test_vlock_basic;
    Alcotest.test_case "vlock: generation reset (§5.7)" `Quick test_vlock_generation_reset;
    Alcotest.test_case "vlock: upgrade race" `Quick test_vlock_upgrade_race;
    Alcotest.test_case "vlock: obsolete marker" `Quick test_vlock_obsolete;
    Alcotest.test_case "vlock: blocks until release" `Quick test_vlock_blocks_until_release;
    Alcotest.test_case "fingerprint: range" `Quick test_fingerprint_range;
    Alcotest.test_case "fingerprint: distribution" `Quick test_fingerprint_distribution;
    Alcotest.test_case "art: small insert/lookup" `Quick test_art_insert_lookup_small;
    Alcotest.test_case "art: 2000 int keys" `Quick test_art_insert_lookup_many_ints;
    Alcotest.test_case "art: duplicate insert replaces" `Quick
      test_art_duplicate_insert_replaces;
    Alcotest.test_case "art: delete" `Quick test_art_delete;
    Alcotest.test_case "art: delete all, reinsert" `Quick test_art_delete_all_then_reinsert;
    Alcotest.test_case "art: lookup_le ints" `Quick test_art_lookup_le;
    Alcotest.test_case "art: lookup_le strings" `Quick test_art_lookup_le_strings;
    Alcotest.test_case "art: iter_from" `Quick test_art_iter_from;
    Alcotest.test_case "art: full sorted enumeration" `Quick test_art_iter_all_sorted;
    QCheck_alcotest.to_alcotest test_art_qcheck_model;
    Alcotest.test_case "art: concurrent inserts" `Quick test_art_concurrent_inserts;
    Alcotest.test_case "art: concurrent mixed" `Quick test_art_concurrent_mixed;
    Alcotest.test_case "art: crash + recovery (strict)" `Quick
      test_art_crash_recovery_persists_inserts;
    Alcotest.test_case "art: crash + recovery (flaky)" `Quick test_art_crash_mid_run_flaky;
    Alcotest.test_case "art: generation bump" `Quick test_art_generation_bumps_on_recover;
  ]
