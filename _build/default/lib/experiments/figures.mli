(** One generator per table/figure of the paper's evaluation.

    Each prints the same rows/series the paper plots, at the given
    {!Scale.t}; DESIGN.md §3 maps ids to paper sections and
    EXPERIMENTS.md records paper-vs-measured shapes. *)

val fig2 : Scale.t -> unit
(** FastFair under snoop vs directory coherence (FH5). *)

val fig3 : Scale.t -> unit
(** PDL-ART insert-only: PMDK vs volatile allocator (GS1). *)

val fig4 : Scale.t -> unit
(** Lookup throughput + NVM reads, FastFair vs PDL-ART (GA1). *)

val fig5 : Scale.t -> unit
(** Scan throughput + NVM reads (GA5). *)

val fig6 : Scale.t -> unit
(** FPTree HTM aborts vs data size and threads (GC3). *)

val fig9 : Scale.t -> unit
(** YCSB sweep, string keys. *)

val fig10 : Scale.t -> unit
(** YCSB sweep, integer keys. *)

val fig11 : Scale.t -> unit
(** Low-bandwidth NVM machine (§6.2). *)

val fig12 : Scale.t -> unit
(** Factor analysis (§6.3). *)

val fig13 : Scale.t -> unit
(** Tail latency (§6.4). *)

val fig14 : Scale.t -> unit
(** Single-thread throughput (§6.5). *)

val fig15 : Scale.t -> unit
(** Zipfian-coefficient sweep (§6.6). *)

val eadr : Scale.t -> unit
(** §3.5 discussion: ADR vs eADR machine modes. *)

val fh5 : Scale.t -> unit
(** §3.1.1 remote-read coherence-traffic measurement. *)

val sec6_7 : Scale.t -> unit
(** Jump-node distance distribution (§6.7). *)

val sec6_8 : Scale.t -> unit
(** Crash-injection recovery test (§6.8). *)
