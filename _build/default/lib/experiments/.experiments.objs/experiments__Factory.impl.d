lib/experiments/factory.ml: Baselines Pactree Scale Workload
