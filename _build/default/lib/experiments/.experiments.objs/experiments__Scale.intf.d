lib/experiments/scale.mli:
