lib/experiments/figures.mli: Scale
