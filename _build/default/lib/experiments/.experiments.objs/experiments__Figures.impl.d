lib/experiments/figures.ml: Array Baselines Des Factory Format Gc Hashtbl Int64 List Nvm Option Pactree Pmalloc Printf Scale Workload
