lib/experiments/scale.ml:
