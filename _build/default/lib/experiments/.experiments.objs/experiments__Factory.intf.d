lib/experiments/factory.mli: Baselines Nvm Pactree Scale Workload
