(** Workload scales for the benchmark suite.

    The paper runs 64M keys / 64M operations on a 3TB testbed; the
    simulator runs reduced scales (same code paths and mechanisms)
    so every figure regenerates in minutes.  See DESIGN.md §6. *)

type t = {
  keys : int;  (** preloaded key count *)
  ops : int;  (** operations per run *)
  thread_counts : int list;  (** x-axis of scalability figures *)
  data_capacity : int;  (** bytes per data pool *)
  search_capacity : int;  (** bytes per search-layer pool *)
}

val make : keys:int -> ops:int -> thread_counts:int list -> t

(** Default: 150K keys, 60K ops. *)
val quick : t

(** Paper-like: 400K keys, 200K ops, thread counts up to 112 (slow). *)
val full : t

(** Smoke-test scale. *)
val tiny : t
