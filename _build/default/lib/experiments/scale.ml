(** Workload scales.

    The paper runs 64M keys / 64M operations on a 3TB-NVM testbed;
    under the discrete-event simulator the suite is run at reduced
    scale (same code paths, same mechanisms) so the whole set of
    figures regenerates in minutes.  [quick] is the default; [full]
    takes tens of minutes. *)

type t = {
  keys : int;  (** preloaded key count (the paper's 64M) *)
  ops : int;  (** operations per run (the paper's 64M) *)
  thread_counts : int list;  (** x-axis of the scalability figures *)
  data_capacity : int;
  search_capacity : int;
}

let capacities keys =
  (* sized for the string layout (4KB data-node class, half-occupancy
     after splits, plus the run phase's fresh inserts), with room for
     the out-of-node records of the baselines *)
  let data = max (1 lsl 22) (keys * 384) in
  let search = max (1 lsl 21) (keys * 96) in
  (data, search)

let make ~keys ~ops ~thread_counts =
  let data_capacity, search_capacity = capacities keys in
  { keys; ops; thread_counts; data_capacity; search_capacity }

let quick = make ~keys:150_000 ~ops:60_000 ~thread_counts:[ 1; 28; 56 ]

let full =
  make ~keys:400_000 ~ops:200_000 ~thread_counts:[ 1; 4; 8; 16; 28; 56; 112 ]

let tiny = make ~keys:8_000 ~ops:8_000 ~thread_counts:[ 1; 8 ]
