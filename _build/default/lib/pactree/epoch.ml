type thread_state = { mutable depth : int; mutable local : int }

type t = {
  mutable epoch : int;
  threads : (int, thread_state) Hashtbl.t;
  mutable deferred : (int * (unit -> unit)) list; (* newest first *)
  mutable ops_since_advance : int;
}

let create () =
  { epoch = 0; threads = Hashtbl.create 64; deferred = []; ops_since_advance = 0 }

let state t =
  let tid = Des.Sched.current_id () in
  match Hashtbl.find_opt t.threads tid with
  | Some ts -> ts
  | None ->
      let ts = { depth = 0; local = 0 } in
      Hashtbl.add t.threads tid ts;
      ts

let all_caught_up t =
  Hashtbl.fold (fun _ ts acc -> acc && (ts.depth = 0 || ts.local = t.epoch)) t.threads true

let run_ripe t =
  let ripe, fresh = List.partition (fun (e, _) -> e <= t.epoch - 2) t.deferred in
  t.deferred <- fresh;
  List.iter (fun (_, f) -> f ()) (List.rev ripe)

let attempts = ref 0

let try_advance t =
  incr attempts;
  if all_caught_up t then begin
    t.epoch <- t.epoch + 1;
    run_ripe t
  end

(* enter/exit are re-entrant: an index operation may span nested
   epoch-protected components (tree + search layer). *)
let enter t =
  let ts = state t in
  if ts.depth = 0 then ts.local <- t.epoch;
  ts.depth <- ts.depth + 1

let exit t =
  let ts = state t in
  assert (ts.depth > 0);
  ts.depth <- ts.depth - 1;
  if ts.depth = 0 then begin
    t.ops_since_advance <- t.ops_since_advance + 1;
    if t.ops_since_advance >= 32 || t.deferred <> [] then begin
      t.ops_since_advance <- 0;
      try_advance t
    end
  end

let defer t f = t.deferred <- (t.epoch, f) :: t.deferred

(* debug: description of the calling thread's pin state *)
let debug_state t =
  let ts = state t in
  Printf.sprintf "epoch=%d local=%d depth=%d" t.epoch ts.local ts.depth

(* Temporarily release the calling thread's pin so the epoch can
   advance past it (e.g. while waiting for deferred frees to release
   log slots).  ONLY safe when the caller holds no optimistic
   references — everything it touches must be locked. *)
let unpin_while t f =
  let ts = state t in
  let depth = ts.depth in
  ts.depth <- 0;
  let restore () =
    ts.depth <- depth;
    ts.local <- t.epoch
  in
  match f () with
  | v ->
      restore ();
      v
  | exception exn ->
      restore ();
      raise exn

let pending t = List.length t.deferred

let current t = t.epoch
