(** Epoch-based memory reclamation (paper §5.6).

    Retired NVM objects may still be referenced by concurrent
    optimistic readers; they are freed only after two epoch
    advancements, which guarantees (1) no new references exist (first
    epoch) and (2) all references taken before retirement have been
    dropped (second epoch).

    Threads bracket every index operation with [enter]/[exit]. *)

type t

val create : unit -> t

(** Begin an operation on the calling simulated thread. *)
val enter : t -> unit

(** End the operation; occasionally tries to advance the epoch and run
    ripe deferred frees. *)
val exit : t -> unit

(** [defer t f] schedules [f] to run once two epochs have passed. *)
val defer : t -> (unit -> unit) -> unit

(** [unpin_while t f] releases the calling thread's epoch pin for the
    duration of [f], letting the epoch advance past it.  Only safe
    when the caller holds no optimistic references (everything it
    touches is locked): used to wait for deferred frees without
    blocking them. *)
val unpin_while : t -> (unit -> 'a) -> 'a

(** Force an advancement attempt (runs ripe deferred frees). *)
val try_advance : t -> unit

(** Deferred actions not yet executed. *)
val pending : t -> int

(** Current epoch number (for tests). *)
val current : t -> int

(** Total advancement attempts (instrumentation). *)
val attempts : int ref

(** Debug: "epoch/local/depth" of the calling thread. *)
val debug_state : t -> string
