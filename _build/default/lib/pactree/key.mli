(** Index keys.

    Keys are order-preserving byte strings: comparing keys as strings
    equals comparing them in the index's logical order.  Integer keys
    are encoded as 8-byte big-endian with the sign bit flipped, so
    signed integer order matches byte order.

    Keys are at most {!max_len} bytes (paper §5.2: up to 32 bytes are
    stored inline in a data node) and must not contain NUL bytes when
    used with the trie layers (the standard ART prefix-freedom
    requirement; the terminator is appended by {!to_radix}). *)

type t = string

val max_len : int

(** [of_int i] encodes any OCaml int, preserving order. *)
val of_int : int -> t

(** Inverse of [of_int].  Raises [Invalid_argument] on keys not
    produced by [of_int]. *)
val to_int : t -> int

(** [of_string s] validates length and NUL-freedom. *)
val of_string : string -> t

val compare : t -> t -> int

val equal : t -> t -> bool

(** [to_radix k] is the byte sequence the tries consume: [k] plus a
    0x00 terminator, making the key set prefix-free. *)
val to_radix : t -> string

(** Inverse of [to_radix]. *)
val of_radix : string -> t

val pp : Format.formatter -> t -> unit
