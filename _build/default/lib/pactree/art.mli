(** PDL-ART: Persistent Durable-Linearizable Adaptive Radix Tree
    (paper §5.1).

    Maps prefix-free radix keys ({!Key.to_radix}) to persistent
    payload pointers.  Used as PACTree's search layer (payload = data
    node) and standalone as the PDL-ART baseline index (payload = kv
    record).

    Concurrency: optimistic lock coupling over {!Vlock}; readers never
    write (except lazily re-initialising stale-generation locks).
    Crash consistency is log-free via ordered persists and
    copy-on-write structural changes committed by single 8-byte
    pointer swaps; a per-thread pending log plus the allocator's
    malloc-to semantics prevent persistent memory leaks. *)

type t

exception Restart

type stats = {
  mutable restarts : int;
  mutable allocs : int;
  mutable retires : int;
}

type insert_outcome = Inserted | Replaced of Pmalloc.Pptr.t

(** Bytes of meta-pool space the trie needs (root, generation, pending
    log). *)
val meta_size : int

(** [create ~heap ~meta ~epoch ~key_of_leaf] opens (or creates) a trie
    whose roots/logs live at the base of [meta].  Increments the
    persistent generation id, voiding all pre-crash locks.
    [key_of_leaf] must return the {e radix} key of a payload. *)
val create :
  heap:Pmalloc.Heap.t ->
  meta:Nvm.Pool.t ->
  epoch:Epoch.t ->
  key_of_leaf:(Pmalloc.Pptr.t -> string) ->
  t

val stats : t -> stats

val generation : t -> int

(** Exact match. *)
val lookup : t -> string -> Pmalloc.Pptr.t option

(** Greatest leaf with key <= the given radix key (anchor-key routing,
    §5.3). *)
val lookup_le : t -> string -> Pmalloc.Pptr.t option

(** Insert, or replace the payload of an equal key (returning the
    previous payload exactly once, so callers can reclaim it). *)
val insert : t -> string -> Pmalloc.Pptr.t -> insert_outcome

(** [delete t rkey] returns the removed payload when the key was
    present. *)
val delete : t -> string -> Pmalloc.Pptr.t option

(** In-order iteration over payloads with key >= the given radix key;
    stops when [f] returns [false].  Under concurrent structural
    modification a subtree may be re-visited (the PACTree proper never
    scans through the trie — only the PDL-ART baseline does). *)
val iter_from : t -> string -> (Pmalloc.Pptr.t -> bool) -> unit

(** Post-crash recovery: bumps the generation and frees unreachable
    pending-log entries.  Returns the number of freed nodes.  The
    heap's own {!Pmalloc.Heap.recover} must run first. *)
val recover : t -> int

(** Drop the whole trie without freeing any node — used when the
    backing pool was volatile (DRAM search layer) and a crash wiped
    it; the trie is then rebuilt from the data layer. *)
val reset : t -> unit

(** Number of leaves (test helper; walks the whole trie). *)
val cardinal : t -> int

(** Leaf-depth histogram (test helper). *)
val depth_histogram : t -> (int, int) Hashtbl.t

(** Waits for pending-log capacity (instrumentation). *)
val pending_waits : int ref
