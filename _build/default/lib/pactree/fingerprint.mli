(** One-byte key fingerprints (paper §4.2, after FP-Tree).

    A lookup first scans the 64-byte fingerprint array of a data node
    (one cache line) and only runs full key comparisons on slots whose
    fingerprint matches, cutting NVM reads per lookup. *)

(** [of_key k] is in [\[1, 255\]]; 0 is reserved for empty slots so a
    fingerprint array of zeroes can never match. *)
val of_key : Key.t -> int
