lib/pactree/smo_log.ml: Array Des Hashtbl Key Nvm Option Pmalloc String
