lib/pactree/tree.mli: Art Data_node Epoch Key Nvm Pmalloc
