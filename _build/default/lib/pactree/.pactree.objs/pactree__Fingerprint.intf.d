lib/pactree/fingerprint.mli: Key
