lib/pactree/art.mli: Epoch Hashtbl Nvm Pmalloc
