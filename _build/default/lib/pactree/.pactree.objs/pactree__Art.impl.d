lib/pactree/art.ml: Array Char Des Epoch Float Fun Hashtbl List Nvm Option Pmalloc String Vlock
