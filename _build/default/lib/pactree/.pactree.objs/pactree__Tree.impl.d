lib/pactree/tree.ml: Array Art Data_node Des Epoch Fun Key List Nvm Option Pmalloc Printf Queue Smo_log Vlock
