lib/pactree/data_node.mli: Key Nvm Pmalloc Vlock
