lib/pactree/vlock.ml: Des Nvm Pmalloc Printf Sys
