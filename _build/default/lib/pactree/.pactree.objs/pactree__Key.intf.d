lib/pactree/key.mli: Format
