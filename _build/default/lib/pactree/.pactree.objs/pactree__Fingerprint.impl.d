lib/pactree/fingerprint.ml: Char String
