lib/pactree/smo_log.mli: Key Nvm Pmalloc
