lib/pactree/epoch.ml: Des Hashtbl List Printf
