lib/pactree/key.ml: Bytes Char Format Int64 List Printf String
