lib/pactree/data_node.ml: Bool Char Fingerprint Fun Int64 Key List Nvm Pmalloc String Vlock
