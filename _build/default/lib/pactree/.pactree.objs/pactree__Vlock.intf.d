lib/pactree/vlock.mli: Nvm
