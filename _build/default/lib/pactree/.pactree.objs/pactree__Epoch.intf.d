lib/pactree/epoch.mli:
