(** PACTree — the paper's persistent hybrid range index (§4-§5).

    A trie-based search layer ({!Art}) indexes the anchor keys of a
    doubly-linked list of slotted data nodes ({!Data_node}).  The
    layers are decoupled: structural modifications log to a per-thread
    SMO log and complete without touching the search layer; a
    background updater replays the log asynchronously, and readers
    tolerate the lag by walking sibling pointers from the jump node
    (ephemeral inconsistency, §4.3).

    All operations are durably linearizable (§5): a completed call's
    effect survives any crash, and crash recovery ({!recover}) repairs
    interrupted structural modifications from the SMO log. *)

type t

(** Construction-time switches; the defaults are full PACTree, the
    others exist for the paper's factor analysis (Fig 12). *)
type config = {
  key_inline : int;  (** 8 (integer keys) or 32 (string keys) *)
  numa_pools : int;  (** 0 = one pool per NUMA domain *)
  async_smo : bool;  (** asynchronous search-layer update (§4.3) *)
  selective_persistence : bool;  (** skip persisting permutation arrays (§4.4) *)
  search_layer_dram : bool;  (** DRAM-resident search layer (ablation) *)
  alloc_kind : Pmalloc.Heap.kind;
  data_capacity : int;  (** bytes per data pool *)
  search_capacity : int;  (** bytes per search-layer pool *)
}

val default_config : config

type stats = {
  mutable splits : int;
  mutable merges : int;
  mutable reader_retries : int;
}

val create : Nvm.Machine.t -> ?cfg:config -> unit -> t

val machine : t -> Nvm.Machine.t

val data_heap : t -> Pmalloc.Heap.t

val search_heap : t -> Pmalloc.Heap.t

val epoch : t -> Epoch.t

val layout : t -> Data_node.layout

(** {2 Operations} *)

(** Upsert: inserts, or updates the value of an existing key. *)
val insert : t -> Key.t -> int -> unit

val lookup : t -> Key.t -> int option

(** [update t k v] is [true] iff [k] existed. *)
val update : t -> Key.t -> int -> bool

(** [delete t k] is [true] iff [k] existed. *)
val delete : t -> Key.t -> bool

(** [scan t k n]: up to [n] pairs with key >= [k], in key order. *)
val scan : t -> Key.t -> int -> (Key.t * int) list

(** {2 Background updater (§5.6)} *)

(** Body of the background updater thread; run it via
    [Des.Sched.spawn].  Exits once {!request_shutdown} was called and
    the log is drained. *)
val updater_loop : t -> unit

val request_shutdown : t -> unit

(** Allow restarting an updater after a shutdown (benchmarks reuse
    trees). *)
val reset_shutdown : t -> unit

(** Synchronously replay queued SMO entries (used when no updater
    thread is running, e.g. outside a simulation). *)
val drain_smo : t -> unit

(** Queued + persistent-log entries not yet replayed. *)
val smo_backlog : t -> int

(** {2 Recovery (§5.9)} *)

(** Post-crash recovery: recovers both heaps, resets lock generations,
    replays/repairs outstanding SMO log entries (rebuilding the search
    layer when it lived in DRAM).  Returns the number of SMO entries
    repaired. *)
val recover : t -> int

(** {2 Introspection} *)

val stats : t -> stats

val art_stats : t -> Art.stats

(** §6.7: histogram of hops from the search-layer jump node to the
    target node (index = hops, last bucket = overflow). *)
val jump_histogram : t -> int array

(** Walk both layers, failing on any broken invariant; returns the
    number of data nodes.  (Search-layer completeness is only checked
    when the SMO backlog is empty.) *)
val check_invariants : t -> int

(** All pairs in key order (test helper — walks the data layer). *)
val to_list : t -> (Key.t * int) list

val cardinal : t -> int
