(* FNV-1a folded to one byte. *)
let of_key k =
  let h = ref 0x811C9DC5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFF) k;
  let byte = !h lxor (!h lsr 8) lxor (!h lsr 16) land 0xFF in
  if byte = 0 then 1 else byte
