type t = string

let max_len = 32

(* Flipping the sign bit turns signed comparison into unsigned, and
   big-endian byte order makes unsigned comparison lexicographic. *)
let of_int i =
  let v = Int64.logxor (Int64.of_int i) Int64.min_int in
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 v;
  Bytes.unsafe_to_string b

let to_int k =
  if String.length k <> 8 then invalid_arg "Key.to_int: not an integer key";
  Int64.to_int (Int64.logxor (String.get_int64_be k 0) Int64.min_int)

let of_string s =
  if String.length s > max_len then
    invalid_arg (Printf.sprintf "Key.of_string: length %d > %d" (String.length s) max_len);
  if String.contains s '\000' then invalid_arg "Key.of_string: NUL byte in key";
  s

let compare = String.compare

let equal = String.equal

let to_radix k = k ^ "\000"

let of_radix r =
  let n = String.length r in
  if n = 0 || r.[n - 1] <> '\000' then invalid_arg "Key.of_radix: missing terminator";
  String.sub r 0 (n - 1)

let pp ppf k =
  let printable = String.for_all (fun c -> c >= ' ' && c < '\127') k in
  if printable && k <> "" then Format.fprintf ppf "%S" k
  else if String.length k = 8 then Format.fprintf ppf "#%d" (to_int k)
  else Format.fprintf ppf "0x%s" (String.concat "" (List.map (Printf.sprintf "%02x") (List.init (String.length k) (fun i -> Char.code k.[i]))))
