(* Pools are held weakly: the registry must not keep the (large) pool
   images of discarded machines alive — benchmark suites create
   hundreds of machines per process. *)
let table : (int, Nvm.Pool.t Weak.t) Hashtbl.t = Hashtbl.create 256

let register pool =
  let w = Weak.create 1 in
  Weak.set w 0 (Some pool);
  Hashtbl.replace table (Nvm.Pool.id pool) w

let find id =
  match Hashtbl.find_opt table id with
  | Some w -> (
      match Weak.get w 0 with
      | Some pool -> pool
      | None ->
          invalid_arg (Printf.sprintf "Registry.find: pool id %d no longer live" id))
  | None -> invalid_arg (Printf.sprintf "Registry.find: unknown pool id %d" id)

let resolve p = find (Pptr.pool p)
