(** NUMA-aware persistent memory heaps (paper §4.5, §5.8, GS1/GS2).

    A heap is a set of per-NUMA NVM pools with a segregated-size-class
    allocator in each.  Two allocator kinds model the paper's GS1
    comparison:

    - [Pmdk]: crash consistent.  Heap metadata (bump pointer, free
      lists, object headers) lives on NVM and every mutation is
      guarded by a one-line undo/redo log that is flushed and fenced,
      reproducing the PMDK allocator's multiple-flush cost per
      alloc/free.  Supports [alloc_to] ("malloc-to" semantics):
      allocation and persisting the destination pointer are atomic
      with respect to crashes, preventing persistent memory leaks.
    - [Volatile_meta]: the "modified Jemalloc" baseline — objects live
      on NVM but heap metadata is volatile and not crash consistent;
      allocation does no NVM writes at all.

    Allocation is NUMA-local by default: the pool of the calling
    simulated thread's NUMA domain is used (GS2). *)

type kind = Pmdk | Volatile_meta

type t

type alloc_stats = {
  mutable allocs : int;
  mutable frees : int;
  mutable alloc_bytes : int;
}

(** [create machine ~kind ~name ~numa_pools ~capacity ()] builds a
    heap of [numa_pools] pools, each of [capacity] bytes, pool [i]
    living on NUMA domain [i].  Pass [numa_pools:1] for the paper's
    single-socket-heap configuration (the per-NUMA-pool ablation of
    Fig 12).  [volatile_pool] makes the backing pools DRAM (for
    DRAM-placed search layers). *)
val create :
  Nvm.Machine.t ->
  ?volatile_pool:bool ->
  kind:kind ->
  name:string ->
  numa_pools:int ->
  capacity:int ->
  unit ->
  t

val machine : t -> Nvm.Machine.t

val kind : t -> kind

val stats : t -> alloc_stats

(** [alloc t ?numa size] returns a persistent pointer to [size] fresh
    bytes (8-aligned; 64-aligned for sizes >= 64).  [numa] defaults to
    the calling thread's domain. *)
val alloc : t -> ?numa:int -> int -> Pptr.t

(** [alloc_to t ~size ~dest_pool ~dest_off] allocates and atomically
    persists the new pointer into [dest_pool] at [dest_off]; after a
    crash either the destination holds the new object or the
    allocation never happened (no leak). *)
val alloc_to : t -> ?numa:int -> size:int -> dest_pool:Nvm.Pool.t -> dest_off:int -> unit -> Pptr.t

val free : t -> Pptr.t -> unit

(** Resolve a pointer produced by this heap. *)
val pool : t -> Pptr.t -> Nvm.Pool.t

val pool_by_numa : t -> int -> Nvm.Pool.t

val numa_pools : t -> int

(** Post-crash recovery: completes or rolls back any allocator
    operation that was interrupted mid-flight ([Pmdk]); resets a
    [Volatile_meta] heap to empty (its metadata did not survive —
    that is the point of the GS1 comparison). *)
val recover : t -> unit

(** Bytes still allocatable in the pool for [numa]. *)
val remaining : t -> numa:int -> int

(** Debug (env [DES_DEBUG]): report if [off] lies within a
    currently-free block of pool [pool_id]. *)
val check_not_freed : who:string -> int -> int -> unit
