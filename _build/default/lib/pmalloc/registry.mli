(** Process-global pool registry.

    Persistent pointers embed a pool id; this registry maps ids back
    to live {!Nvm.Pool.t} values so that pointers can be dereferenced
    across heaps (e.g. an SMO-log entry in the log heap naming a data
    node in the data heap). *)

val register : Nvm.Pool.t -> unit

(** Raises [Invalid_argument] for an unknown id. *)
val find : int -> Nvm.Pool.t

(** [resolve p] is the pool of persistent pointer [p]. *)
val resolve : Pptr.t -> Nvm.Pool.t
