lib/pmalloc/pptr.mli: Format
