lib/pmalloc/heap.ml: Array Des Hashtbl Nvm Pptr Printexc Printf Registry Sys
