lib/pmalloc/registry.mli: Nvm Pptr
