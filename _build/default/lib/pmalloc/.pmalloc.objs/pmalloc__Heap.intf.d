lib/pmalloc/heap.mli: Nvm Pptr
