lib/pmalloc/registry.ml: Hashtbl Nvm Pptr Printf Weak
