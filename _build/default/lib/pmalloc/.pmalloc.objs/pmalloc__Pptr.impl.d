lib/pmalloc/pptr.ml: Format Int
