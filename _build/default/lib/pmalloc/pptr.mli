(** Compact persistent pointers (paper §5.8).

    A persistent pointer packs a pool id in the upper bits and a
    40-bit pool offset in the lower bits, so pointers stored on NVM
    stay valid across restarts regardless of where pools are mapped.
    [null] is all-zeroes with offset 0 (offset 0 is reserved by the
    allocators, so no valid object lives there).

    The low 3 bits of offsets are always 0 (8-byte allocation
    alignment); bit 0 is exposed as a tag so tries can distinguish
    leaf pointers from node pointers in a single atomic word. *)

type t = int

val null : t

val is_null : t -> bool

val make : pool:int -> off:int -> t

val pool : t -> int

val off : t -> int

(** [tagged p] sets bit 0; [untag p] clears it; [is_tagged p] tests it. *)
val tagged : t -> t

val untag : t -> t

val is_tagged : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
