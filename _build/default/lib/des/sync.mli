(** Synchronization primitives for simulated threads. *)

(** Blocking mutual exclusion.

    Critical sections in the simulator are only preempted when the
    holder performs a simulated-time action (an NVM access, [delay]),
    so a mutex is needed exactly where real code would need one around
    blocking persistence operations — e.g. inside the PMDK-style
    allocator. *)
module Mutex : sig
  type t

  val create : unit -> t

  val lock : t -> unit

  val unlock : t -> unit

  val with_lock : t -> (unit -> 'a) -> 'a

  val locked : t -> bool
end
