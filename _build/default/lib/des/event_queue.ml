(* Binary min-heap in a growable array.  Entries carry a sequence
   number so that events scheduled at the same instant are delivered in
   insertion order, which makes simulation runs deterministic. *)

type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0

let length q = q.size

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.size && earlier q.heap.(left) q.heap.(!smallest) then
    smallest := left;
  if right < q.size && earlier q.heap.(right) q.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let grow q entry =
  let capacity = Array.length q.heap in
  if q.size = capacity then begin
    let new_capacity = max 16 (2 * capacity) in
    let heap = Array.make new_capacity entry in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let add q ~time value =
  let entry = { time; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop_min q =
  if q.size = 0 then raise Not_found;
  let top = q.heap.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.heap.(0) <- q.heap.(q.size);
    sift_down q 0
  end;
  (top.time, top.value)

let min_time q = if q.size = 0 then None else Some q.heap.(0).time
