module Mutex = struct
  type t = { mutable holder : int option; waiters : Sched.Waitq.t }

  let create () = { holder = None; waiters = Sched.Waitq.create () }

  let rec lock t =
    match t.holder with
    | None -> t.holder <- Some (Sched.current_id ())
    | Some _ ->
        Sched.Waitq.wait t.waiters;
        lock t

  let unlock t =
    t.holder <- None;
    match Sched.self () with
    | Some sched -> Sched.Waitq.signal_one sched t.waiters
    | None -> ()

  let with_lock t f =
    lock t;
    match f () with
    | v ->
        unlock t;
        v
    | exception exn ->
        unlock t;
        raise exn

  let locked t = t.holder <> None
end
