lib/des/sync.mli:
