lib/des/rng.ml: Int64
