lib/des/sched.mli:
