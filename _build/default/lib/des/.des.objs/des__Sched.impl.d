lib/des/sched.ml: Effect Event_queue List Printf Sys
