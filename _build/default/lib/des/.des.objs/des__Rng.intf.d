lib/des/rng.mli:
