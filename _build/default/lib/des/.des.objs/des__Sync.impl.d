lib/des/sync.ml: Sched
