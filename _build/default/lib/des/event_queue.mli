(** Mutable min-priority queue keyed by simulated time.

    Used as the event queue of the discrete-event scheduler.  Ties are
    broken by insertion order (FIFO), which keeps simulations
    deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

(** [add q ~time v] schedules [v] at [time]. *)
val add : 'a t -> time:float -> 'a -> unit

(** [pop_min q] removes and returns the earliest event as
    [(time, value)].  Raises [Not_found] if the queue is empty. *)
val pop_min : 'a t -> float * 'a

(** [min_time q] is the time of the earliest event, if any. *)
val min_time : 'a t -> float option
