(* Standalone PDL-ART baseline: the paper's persistent
   durable-linearizable ART used directly as a key-value index (§3,
   §6.1), i.e. the starting point of the Fig 12 factor analysis.

   Unlike PACTree, key-value pairs are NOT embedded in leaf nodes:
   every insert allocates an out-of-node record (GA3's allocation
   cost), every lookup pays an extra dereference, and scans perform
   random reads per record instead of sequential node reads (GA5,
   Figs 4/5).  Updates are out-of-place (allocate + swap + deferred
   free) to stay durably linearizable. *)

module Pool = Nvm.Pool
module Machine = Nvm.Machine
module Heap = Pmalloc.Heap
module Pptr = Pmalloc.Pptr
module Key = Pactree.Key
module Art = Pactree.Art

let name = "PDL-ART"

(* Record layout: value (8B) | key length (1B) | key bytes. *)
type t = {
  machine : Machine.t;
  heap : Heap.t;
  meta : Pool.t;
  art : Art.t;
  epoch : Pactree.Epoch.t;
}

let record_key ptr =
  let pool = Pmalloc.Registry.resolve ptr in
  let off = Pptr.off ptr in
  let len = Pool.read_u8 pool (off + 8) in
  Pool.read_string pool (off + 9) len

let create machine ?(alloc_kind = Heap.Pmdk) ?(capacity = 1 lsl 26) ?numa_pools () =
  let numa = Option.value ~default:(Machine.numa_count machine) numa_pools in
  let heap = Heap.create machine ~kind:alloc_kind ~name:"pdlart" ~numa_pools:numa ~capacity () in
  let meta =
    Pool.create machine ~name:"pdlart.meta" ~numa:0 ~capacity:(Art.meta_size + 256) ()
  in
  Pmalloc.Registry.register meta;
  let epoch = Pactree.Epoch.create () in
  let art = Art.create ~heap ~meta ~epoch ~key_of_leaf:record_key in
  { machine; heap; meta; art; epoch }

let alloc_record t rkey value =
  let size = 9 + String.length rkey in
  let ptr = Heap.alloc t.heap size in
  let pool = Pmalloc.Registry.resolve ptr in
  let off = Pptr.off ptr in
  Pool.write_int pool off value;
  Pool.write_u8 pool (off + 8) (String.length rkey);
  Pool.write_string pool (off + 9) rkey;
  Pool.persist pool off size;
  ptr

let record_value ptr =
  let pool = Pmalloc.Registry.resolve ptr in
  Pool.read_int pool (Pptr.off ptr)

let free_later t ptr = Pactree.Epoch.defer t.epoch (fun () -> Heap.free t.heap ptr)

let set_record_value ptr value =
  let pool = Pmalloc.Registry.resolve ptr in
  Pool.write_int pool (Pptr.off ptr) value;
  Pool.persist pool (Pptr.off ptr) 8

(* Upsert.  An existing key's record is updated in place: the value is
   a single 8-byte atomic store + persist (durably linearizable on its
   own).  Only genuinely new keys allocate a record (GA3's
   per-insert allocation).  The epoch pin keeps a concurrently deleted
   record alive while we write it. *)
let insert t key value =
  let rkey = Key.to_radix key in
  Pactree.Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Pactree.Epoch.exit t.epoch) @@ fun () ->
  match Art.lookup t.art rkey with
  | Some record -> set_record_value record value
  | None -> (
      let record = alloc_record t rkey value in
      match Art.insert t.art rkey record with
      | Art.Inserted -> ()
      | Art.Replaced old ->
          (* raced with a concurrent insert of the same key *)
          free_later t old)

let lookup t key =
  match Art.lookup t.art (Key.to_radix key) with
  | Some record -> Some (record_value record)
  | None -> None

let update t key value =
  let rkey = Key.to_radix key in
  Pactree.Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Pactree.Epoch.exit t.epoch) @@ fun () ->
  match Art.lookup t.art rkey with
  | None -> false
  | Some record ->
      set_record_value record value;
      true

let delete t key =
  let rkey = Key.to_radix key in
  match Art.delete t.art rkey with
  | Some old ->
      free_later t old;
      true
  | None -> false

(* Scan through trie order: one random record read per result (no
   sequential locality — the GA5 cost). *)
let scan t key n_wanted =
  let acc = ref [] and n = ref 0 in
  Art.iter_from t.art (Key.to_radix key) (fun record ->
      acc := (Key.of_radix (record_key record), record_value record) :: !acc;
      incr n;
      !n < n_wanted);
  List.rev !acc

let recover t =
  Heap.recover t.heap;
  ignore (Art.recover t.art)

let art t = t.art

module Index : Index_intf.S with type t = t = struct
  type nonrec t = t

  let name = name

  let insert = insert

  let lookup = lookup

  let update = update

  let delete = delete

  let scan = scan
end

let heap t = t.heap

let epoch t = t.epoch
