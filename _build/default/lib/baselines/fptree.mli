(** FPTree baseline (Oukid et al., SIGMOD'16): a DRAM-NVM hybrid
    B+-tree.

    Internal nodes in DRAM (rebuilt on restart), fingerprinted
    unsorted leaves on NVM, HTM for the internal structure with leaf
    locks, synchronous splits.  Scans re-sort every visited leaf (no
    cached permutation).  See the implementation header. *)

type t

val name : string

val create : Nvm.Machine.t -> ?string_keys:bool -> ?capacity:int -> unit -> t

val insert : t -> Pactree.Key.t -> int -> unit

val lookup : t -> Pactree.Key.t -> int option

val update : t -> Pactree.Key.t -> int -> bool

(** Bitmap-clearing deletion (no leaf merging, as in the authors'
    binary). *)
val delete : t -> Pactree.Key.t -> bool

val scan : t -> Pactree.Key.t -> int -> (Pactree.Key.t * int) list

(** HTM commit/abort/fallback counters (Fig 6). *)
val htm_stats : t -> Htm.stats

(** Post-restart recovery: rebuilds the DRAM internal layer by walking
    the persistent leaf chain (FPTree's recovery-time cost). *)
val recover : t -> unit

val check_invariants : t -> int

module Index : Index_intf.S with type t = t
