(* Hardware transactional memory model (Intel RTM), as used by FPTree
   for its internal nodes.

   The paper's GC3 finding is that HTM progress degrades with data-set
   size (capacity aborts: transactions are bounded by L1-sized read
   sets) and with concurrency (conflict aborts), Fig 6.  We model an
   attempt as aborting with probability

     p = p_capacity(footprint) + p_conflict(in-flight transactions)

   charging the wasted work of each abort, and fall back to a global
   lock after [max_retries] failed attempts — the standard RTM usage
   pattern (the paper notes the open-source LB+-Tree lacks exactly
   this fallback and is unstable). *)

type stats = {
  mutable attempts : int;
  mutable commits : int;
  mutable aborts : int;
  mutable fallbacks : int;
}

type t = {
  rng : Des.Rng.t;
  mutable concurrent : int;
  fallback : Des.Sync.Mutex.t;
  mutable fallback_held : bool;
  l1_lines : int;
  max_retries : int;
  stats : stats;
}

let create ?(l1_lines = 512) ?(max_retries = 5) ~seed () =
  {
    rng = Des.Rng.create ~seed;
    concurrent = 0;
    fallback = Des.Sync.Mutex.create ();
    fallback_held = false;
    l1_lines;
    max_retries;
    stats = { attempts = 0; commits = 0; aborts = 0; fallbacks = 0 };
  }

let stats t = t.stats

let abort_probability t ~footprint_lines =
  let capacity =
    let overflow = float_of_int (footprint_lines - (t.l1_lines / 8)) in
    Float.max 0.0 (Float.min 0.85 (overflow /. float_of_int t.l1_lines))
  in
  let conflict = Float.min 0.4 (0.012 *. float_of_int t.concurrent) in
  Float.min 0.95 (capacity +. conflict)

(* [execute t ~footprint_lines ~duration body] runs [body]
   transactionally.  [duration] is the transaction's window (its reads
   and computation); it elapses inside the transaction so concurrent
   transactions overlap, which drives the conflict-abort term.  [body]
   itself must be atomic in the simulator (no blocking inside). *)
let execute t ~footprint_lines ?(duration = 0.0) body =
  let rec attempt retry =
    t.stats.attempts <- t.stats.attempts + 1;
    if t.fallback_held then begin
      (* a fallback-lock holder aborts all transactions: wait *)
      t.stats.aborts <- t.stats.aborts + 1;
      Des.Sync.Mutex.lock t.fallback;
      Des.Sync.Mutex.unlock t.fallback;
      attempt retry
    end
    else if retry >= t.max_retries then begin
      t.stats.fallbacks <- t.stats.fallbacks + 1;
      Des.Sync.Mutex.lock t.fallback;
      t.fallback_held <- true;
      let finish () =
        t.fallback_held <- false;
        Des.Sync.Mutex.unlock t.fallback
      in
      if duration > 0.0 then Des.Sched.delay duration;
      match body () with
      | v ->
          finish ();
          v
      | exception exn ->
          finish ();
          raise exn
    end
    else begin
      t.concurrent <- t.concurrent + 1;
      (* the transaction window: other transactions may start/finish
         while this one is open *)
      if duration > 0.0 then Des.Sched.delay duration;
      let p = abort_probability t ~footprint_lines in
      if Des.Rng.float t.rng < p then begin
        (* aborted transaction: the window above was wasted work *)
        t.concurrent <- t.concurrent - 1;
        t.stats.aborts <- t.stats.aborts + 1;
        Des.Sched.delay (50e-9 +. (Des.Rng.float t.rng *. 200e-9));
        attempt (retry + 1)
      end
      else begin
        match body () with
        | v ->
            t.concurrent <- t.concurrent - 1;
            t.stats.commits <- t.stats.commits + 1;
            v
        | exception exn ->
            t.concurrent <- t.concurrent - 1;
            raise exn
      end
    end
  in
  attempt 0
