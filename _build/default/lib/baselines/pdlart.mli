(** Standalone PDL-ART baseline: the paper's persistent ART used
    directly as a key-value index (the Fig 12 starting point).

    Key-value pairs live in out-of-node records: one NVM allocation
    per fresh insert (GA3), one extra dereference per lookup, random
    reads per scan result (GA5).  Updates of existing keys are
    in-place atomic 8-byte value stores. *)

type t

val name : string

val create :
  Nvm.Machine.t ->
  ?alloc_kind:Pmalloc.Heap.kind ->
  ?capacity:int ->
  ?numa_pools:int ->
  unit ->
  t

val insert : t -> Pactree.Key.t -> int -> unit

val lookup : t -> Pactree.Key.t -> int option

val update : t -> Pactree.Key.t -> int -> bool

val delete : t -> Pactree.Key.t -> bool

val scan : t -> Pactree.Key.t -> int -> (Pactree.Key.t * int) list

(** Post-crash recovery (heap log + trie pending log). *)
val recover : t -> unit

(** The underlying trie (tests/benchmarks). *)
val art : t -> Pactree.Art.t

val heap : t -> Pmalloc.Heap.t

(** The epoch manager (tests). *)
val epoch : t -> Pactree.Epoch.t

module Index : Index_intf.S with type t = t
