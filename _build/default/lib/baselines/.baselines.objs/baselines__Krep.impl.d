lib/baselines/krep.ml: Bytes Int64 Nvm Pactree Pmalloc String
