lib/baselines/bztree.ml: Des Float Index_intf Krep List Nvm Pactree Pmalloc Pmwcas
