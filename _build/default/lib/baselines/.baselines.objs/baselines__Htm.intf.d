lib/baselines/htm.mli:
