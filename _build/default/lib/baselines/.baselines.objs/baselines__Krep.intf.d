lib/baselines/krep.mli: Pactree Pmalloc
