lib/baselines/pdlart.mli: Index_intf Nvm Pactree Pmalloc
