lib/baselines/pmwcas.ml: Array Des List Nvm
