lib/baselines/fastfair.ml: Bool Bytes Des Float Index_intf Int64 Lazy List Nvm Pactree Pmalloc String
