lib/baselines/htm.ml: Des Float
