lib/baselines/pactree_index.ml: Index_intf Pactree
