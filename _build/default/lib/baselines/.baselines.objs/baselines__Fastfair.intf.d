lib/baselines/fastfair.mli: Index_intf Nvm Pactree
