lib/baselines/index_intf.ml: Pactree
