lib/baselines/fptree.mli: Htm Index_intf Nvm Pactree
