lib/baselines/bztree.mli: Index_intf Nvm Pactree
