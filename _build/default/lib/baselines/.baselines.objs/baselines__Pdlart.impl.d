lib/baselines/pdlart.ml: Fun Index_intf List Nvm Option Pactree Pmalloc String
