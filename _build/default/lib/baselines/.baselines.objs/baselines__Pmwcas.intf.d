lib/baselines/pmwcas.mli: Nvm
