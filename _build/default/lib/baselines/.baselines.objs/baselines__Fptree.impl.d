lib/baselines/fptree.ml: Float Htm Index_intf List Map Nvm Option Pactree Pmalloc String
