(* Persistent Multi-word Compare-and-Swap (Wang et al., ICDE'18) —
   the primitive BzTree builds on.

   The cost profile is what matters for the paper's comparison (§6.1:
   "at least 15 flushes per insert" for BzTree): a descriptor is
   written and persisted, each target word is installed and persisted,
   and the descriptor status is finalised and persisted.  We charge
   exactly that traffic against a per-thread descriptor area.

   Atomicity in the simulator: a striped volatile mutex serialises
   PMwCAS executions whose first target word collides; BzTree always
   names the owning node's status word first, so operations on the
   same node serialise while independent nodes proceed in parallel —
   mirroring the real primitive's per-word contention behaviour. *)

module Pool = Nvm.Pool

type target = { pool : Pool.t; off : int; expected : int; desired : int }

let stripes = Array.init 1024 (fun _ -> Des.Sync.Mutex.create ())

let stripe_of tgt = (Pool.id tgt.pool * 8191) + (tgt.off lsr 3) land 1023

(* Per-thread descriptor slots in a caller-provided pool. *)
let descriptor_size = 128

let region_size = 256 * descriptor_size

let desc_off base = base + ((Des.Sched.current_id () land 255) * descriptor_size)

type stats = { mutable attempts : int; mutable failures : int }

let stats = { attempts = 0; failures = 0 }

(* [execute ~desc_pool ~desc_base targets] returns [true] iff every
   target still held its expected value; on success all desired values
   are stored and persisted. *)
let execute ~desc_pool ~desc_base targets =
  assert (targets <> []);
  stats.attempts <- stats.attempts + 1;
  let first = List.hd targets in
  let mutex = stripes.(stripe_of first land 1023) in
  Des.Sync.Mutex.with_lock mutex @@ fun () ->
  (* 1. Write and persist the descriptor (status + per-word triples;
     we model the traffic with one line per 2 words). *)
  let doff = desc_off desc_base in
  List.iteri
    (fun i tgt ->
      let entry = doff + (i mod 7 * 16) in
      Pool.write_int desc_pool entry tgt.off;
      Pool.write_int desc_pool (entry + 8) tgt.desired)
    targets;
  Pool.persist desc_pool doff descriptor_size;
  (* 2. Install phase: validate + mark each word (a CAS with persist
     per word in the real protocol). *)
  let ok = List.for_all (fun tgt -> Pool.read_int tgt.pool tgt.off = tgt.expected) targets in
  if ok then begin
    List.iter
      (fun tgt ->
        Pool.write_int tgt.pool tgt.off tgt.desired;
        Pool.clwb tgt.pool tgt.off)
      targets;
    (match targets with t0 :: _ -> Pool.fence t0.pool | [] -> ());
    (* 3. Finalise: persist the descriptor status, then clean up. *)
    Pool.write_int desc_pool doff 0;
    Pool.persist desc_pool doff 8
  end
  else begin
    stats.failures <- stats.failures + 1;
    (* failed attempt still persisted its status flip *)
    Pool.write_int desc_pool doff 0;
    Pool.persist desc_pool doff 8
  end;
  ok
