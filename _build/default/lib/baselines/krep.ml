(* Shared 8-byte key representation for the B+-tree baselines.

   Integer keys (8-byte, order-preserving encoding from {!Pactree.Key})
   are embedded directly: big-endian bytes reinterpreted as an int64,
   compared unsigned.  String keys are stored out-of-node in an NVM
   record (length byte + bytes) and the krep is the persistent
   pointer — every comparison then costs a dereference, which is the
   behaviour the paper highlights for FastFair on string keys. *)

module Pool = Nvm.Pool
module Heap = Pmalloc.Heap
module Pptr = Pmalloc.Pptr
module Key = Pactree.Key

type t = { heap : Heap.t; string_keys : bool }

let create ~heap ~string_keys = { heap; string_keys }

let encode_int_key k = String.get_int64_be k 0

(* Allocating conversion (used when storing a new record). *)
let of_key t (k : Key.t) =
  if t.string_keys then begin
    let ptr = t.heap |> fun h -> Heap.alloc h (1 + String.length k) in
    let pool = Pmalloc.Registry.resolve ptr in
    let off = Pptr.off ptr in
    Pool.write_u8 pool off (String.length k);
    Pool.write_string pool (off + 1) k;
    Pool.persist pool off (1 + String.length k);
    Int64.of_int ptr
  end
  else encode_int_key k

let to_key t krep =
  if t.string_keys then begin
    let ptr = Int64.to_int krep in
    let pool = Pmalloc.Registry.resolve ptr in
    let off = Pptr.off ptr in
    let len = Pool.read_u8 pool off in
    Pool.read_string pool (off + 1) len
  end
  else begin
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 krep;
    Bytes.unsafe_to_string b
  end

(* Compare a stored krep against a probe key (the probe's int64 form
   can be precomputed with [encode_int_key] and passed as
   [probe_rep]). *)
let compare_with_key t krep ~probe_rep ~probe_key =
  if t.string_keys then begin
    let ptr = Int64.to_int krep in
    let pool = Pmalloc.Registry.resolve ptr in
    let off = Pptr.off ptr in
    let len = Pool.read_u8 pool off in
    Pool.compare_string pool (off + 1) len probe_key
  end
  else Int64.unsigned_compare krep probe_rep

let compare t a b =
  if t.string_keys then compare_with_key t a ~probe_rep:0L ~probe_key:(to_key t b)
  else Int64.unsigned_compare a b

let probe_rep t k = if t.string_keys then 0L else encode_int_key k
