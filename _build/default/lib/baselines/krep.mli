(** Shared 8-byte key representation for the B+-tree baselines.

    Integer keys embed their order-preserving bytes (compared as
    unsigned int64); string keys are stored out-of-node and the
    representation is a persistent pointer, so every comparison costs
    a dereference — the behaviour behind FastFair's string-key drop
    (paper Fig 9). *)

type t

val create : heap:Pmalloc.Heap.t -> string_keys:bool -> t

(** Non-allocating int64 form of an integer key (probe side). *)
val encode_int_key : Pactree.Key.t -> int64

(** Storing conversion (allocates a record for string keys). *)
val of_key : t -> Pactree.Key.t -> int64

val to_key : t -> int64 -> Pactree.Key.t

(** Compare a stored representation against a probe key;
    [probe_rep] is [encode_int_key probe_key] (ignored for
    strings). *)
val compare_with_key : t -> int64 -> probe_rep:int64 -> probe_key:Pactree.Key.t -> int

val compare : t -> int64 -> int64 -> int

(** [probe_rep t k] precomputes the probe form for repeated
    comparisons. *)
val probe_rep : t -> Pactree.Key.t -> int64
