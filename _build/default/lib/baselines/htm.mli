(** Hardware-transactional-memory model (Intel RTM), used by the
    FPTree baseline.

    An attempt aborts with probability [p_capacity(footprint) +
    p_conflict(concurrent transactions)], charging the wasted window;
    after [max_retries] failures the execution takes a global fallback
    lock (which aborts all running transactions).  Reproduces the
    paper's GC3 finding that HTM progress degrades with data-set size
    and concurrency (Fig 6). *)

type stats = {
  mutable attempts : int;
  mutable commits : int;
  mutable aborts : int;
  mutable fallbacks : int;
}

type t

val create : ?l1_lines:int -> ?max_retries:int -> seed:int64 -> unit -> t

val stats : t -> stats

(** [execute t ~footprint_lines ~duration body] runs [body]
    transactionally.  [duration] is the transaction window (elapses
    inside the transaction, so concurrent transactions overlap);
    [body] itself must not block. *)
val execute : t -> footprint_lines:int -> ?duration:float -> (unit -> 'a) -> 'a
