(** Common interface of all benchmarked range indexes (PACTree and the
    comparison baselines of §6).

    A first-class-module value of type {!index} bundles one live index
    instance with its operations, so the workload runner can drive any
    of them uniformly. *)

module type S = sig
  type t

  (** Human-readable name used in benchmark tables. *)
  val name : string

  (** Upsert. *)
  val insert : t -> Pactree.Key.t -> int -> unit

  val lookup : t -> Pactree.Key.t -> int option

  (** Update an existing key; [false] when absent. *)
  val update : t -> Pactree.Key.t -> int -> bool

  val delete : t -> Pactree.Key.t -> bool

  (** [scan t k n]: up to [n] pairs with key >= [k] in key order. *)
  val scan : t -> Pactree.Key.t -> int -> (Pactree.Key.t * int) list
end

type index = Index : (module S with type t = 'a) * 'a -> index

let name (Index ((module M), _)) = M.name

let insert (Index ((module M), t)) k v = M.insert t k v

let lookup (Index ((module M), t)) k = M.lookup t k

let update (Index ((module M), t)) k v = M.update t k v

let delete (Index ((module M), t)) k = M.delete t k

let scan (Index ((module M), t)) k n = M.scan t k n
