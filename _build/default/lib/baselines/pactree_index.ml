(** {!Index_intf.S} adapter for PACTree itself, so the workload runner
    drives it like every baseline. *)

module Index : Index_intf.S with type t = Pactree.Tree.t = struct
  type t = Pactree.Tree.t

  let name = "PACTree"

  let insert = Pactree.Tree.insert

  let lookup = Pactree.Tree.lookup

  let update = Pactree.Tree.update

  let delete = Pactree.Tree.delete

  let scan = Pactree.Tree.scan
end

let wrap t = Index_intf.Index ((module Index), t)
