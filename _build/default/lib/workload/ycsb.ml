type mix =
  | Load_a
  | Workload_a
  | Workload_b
  | Workload_c
  | Workload_e
  | Skew_update (* Fig 15: 50% lookup + 50% update of existing keys *)
  | Skew_insert (* Fig 15: 50% lookup + 50% insert of new keys *)

type op =
  | Lookup of Pactree.Key.t
  | Upsert of Pactree.Key.t * int
  | Insert_new of Pactree.Key.t * int
  | Scan of Pactree.Key.t * int

type t = {
  mix : mix;
  kind : Keyset.kind;
  rng : Des.Rng.t;
  zipf : Zipf.t;
  mutable load_cursor : int; (* Load_a: next index to insert *)
  mutable fresh_cursor : int; (* Workload_e: next fresh index *)
  threads : int;
}

let create ~mix ~kind ~loaded ~theta ~seed ~thread ~threads =
  let rng = Des.Rng.create ~seed:(Int64.add seed (Int64.of_int (thread * 7919))) in
  let zipf = Zipf.create ~n:(max 1 loaded) ~theta (Des.Rng.split rng) in
  {
    mix;
    kind;
    rng;
    zipf;
    load_cursor = thread;
    fresh_cursor = loaded + thread;
    threads;
  }

let hot_key t = Keyset.key t.kind (Zipf.next t.zipf)

let fresh_key t =
  let i = t.fresh_cursor in
  t.fresh_cursor <- t.fresh_cursor + t.threads;
  Keyset.key t.kind i

let value_of t = Des.Rng.int t.rng 1_000_000

(* YCSB scan lengths: uniform in [1, 100]. *)
let scan_len t = 1 + Des.Rng.int t.rng 100

let next t =
  match t.mix with
  | Load_a ->
      let i = t.load_cursor in
      t.load_cursor <- t.load_cursor + t.threads;
      Insert_new (Keyset.key t.kind i, value_of t)
  (* Paper 6: "we replace the update operation to insert operation
     similar to the previous work" — A and B's writes insert fresh
     keys, exercising node growth and SMOs. *)
  | Workload_a ->
      if Des.Rng.int t.rng 100 < 50 then Lookup (hot_key t)
      else Insert_new (fresh_key t, value_of t)
  | Workload_b ->
      if Des.Rng.int t.rng 100 < 95 then Lookup (hot_key t)
      else Insert_new (fresh_key t, value_of t)
  | Workload_c -> Lookup (hot_key t)
  | Workload_e ->
      if Des.Rng.int t.rng 100 < 95 then Scan (hot_key t, scan_len t)
      else Insert_new (fresh_key t, value_of t)
  | Skew_update ->
      if Des.Rng.int t.rng 100 < 50 then Lookup (hot_key t)
      else Upsert (hot_key t, value_of t)
  | Skew_insert ->
      if Des.Rng.int t.rng 100 < 50 then Lookup (hot_key t)
      else Insert_new (fresh_key t, value_of t)

let pp_mix ppf mix =
  Format.pp_print_string ppf
    (match mix with
    | Load_a -> "L-A"
    | Workload_a -> "W-A"
    | Workload_b -> "W-B"
    | Workload_c -> "W-C"
    | Workload_e -> "W-E"
    | Skew_update -> "50L/50U"
    | Skew_insert -> "50L/50I")

let mix_of_string = function
  | "L-A" | "la" | "load-a" -> Some Load_a
  | "W-A" | "a" -> Some Workload_a
  | "W-B" | "b" -> Some Workload_b
  | "W-C" | "c" -> Some Workload_c
  | "W-E" | "e" -> Some Workload_e
  | "skew-update" -> Some Skew_update
  | "skew-insert" -> Some Skew_insert
  | _ -> None

let all_mixes = [ Load_a; Workload_a; Workload_b; Workload_c; Workload_e ]
