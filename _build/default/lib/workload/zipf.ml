type t = {
  rng : Des.Rng.t;
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  threshold : float; (* 1 + 0.5^theta *)
  scramble : bool;
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let create ?(scramble = true) ~n ~theta rng =
  assert (n > 0 && theta >= 0.0 && theta < 1.0);
  if theta = 0.0 then
    { rng; n; theta; alpha = 0.0; zetan = 0.0; eta = 0.0; threshold = 0.0; scramble }
  else begin
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { rng; n; theta; alpha; zetan; eta; threshold = 1.0 +. Float.pow 0.5 theta; scramble }
  end

let spread rank n =
  (* FNV-style scramble keeping the result in [0, n) *)
  let h = rank * 0x100000001B3 land max_int in
  let h = h lxor (h lsr 33) in
  h mod n

let next t =
  if t.theta = 0.0 then Des.Rng.int t.rng t.n
  else begin
    let u = Des.Rng.float t.rng in
    let uz = u *. t.zetan in
    let rank =
      if uz < 1.0 then 0
      else if uz < t.threshold then 1
      else
        int_of_float
          (float_of_int t.n *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
    in
    let rank = if rank >= t.n then t.n - 1 else rank in
    if t.scramble then spread rank t.n else rank
  end

let n t = t.n
