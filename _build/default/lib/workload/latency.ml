type t = {
  rng : Des.Rng.t;
  sample_rate : float;
  mutable samples : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create ?(sample_rate = 0.1) rng =
  { rng; sample_rate; samples = Array.make 1024 0.0; size = 0; sorted = false }

let should_sample t = t.sample_rate >= 1.0 || Des.Rng.float t.rng < t.sample_rate

let record t latency =
  if t.size = Array.length t.samples then begin
    let bigger = Array.make (2 * t.size) 0.0 in
    Array.blit t.samples 0 bigger 0 t.size;
    t.samples <- bigger
  end;
  t.samples.(t.size) <- latency;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.size in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  assert (p >= 0.0 && p <= 100.0);
  if t.size = 0 then 0.0
  else begin
    ensure_sorted t;
    let idx = int_of_float (Float.of_int (t.size - 1) *. p /. 100.0) in
    t.samples.(idx)
  end

let merge ~dst ~src =
  for i = 0 to src.size - 1 do
    record dst src.samples.(i)
  done
