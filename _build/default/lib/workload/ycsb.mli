(** YCSB workload definitions as used by the paper's index-microbench
    (§6): Load A plus run-phase workloads A, B, C, E, with uniform or
    Zipfian request distributions over integer or string keys.

    Note (paper §6): indexes without a native update are driven with
    insert in place of update; our upsert-style [insert] matches
    that, so workload A/B write operations are upserts of existing
    keys and workload E inserts fresh keys. *)

type mix =
  | Load_a  (** 100% insert (the load phase itself) *)
  | Workload_a  (** 50% lookup, 50% insert of new keys (paper 6) *)
  | Workload_b  (** 95% lookup, 5% insert of new keys *)
  | Workload_c  (** 100% lookup *)
  | Workload_e  (** 95% short scan, 5% insert of new keys *)
  | Skew_update  (** Fig 15: 50% lookup, 50% update of existing keys *)
  | Skew_insert  (** Fig 15: 50% lookup, 50% insert of new keys *)

type op =
  | Lookup of Pactree.Key.t
  | Upsert of Pactree.Key.t * int
  | Insert_new of Pactree.Key.t * int
  | Scan of Pactree.Key.t * int

type t

(** [create ~mix ~kind ~loaded ~theta ~seed ~thread] builds a
    per-thread deterministic op stream.  [loaded] is the number of
    pre-loaded keys; [theta = 0.] selects the uniform distribution.
    New keys inserted by workload E are drawn from indexes past
    [loaded], partitioned by thread so streams never collide. *)
val create :
  mix:mix ->
  kind:Keyset.kind ->
  loaded:int ->
  theta:float ->
  seed:int64 ->
  thread:int ->
  threads:int ->
  t

val next : t -> op

val pp_mix : Format.formatter -> mix -> unit

val mix_of_string : string -> mix option

val all_mixes : mix list
