lib/workload/latency.mli: Des
