lib/workload/zipf.mli: Des
