lib/workload/latency.ml: Array Des Float
