lib/workload/keyset.ml: Format Pactree Printf
