lib/workload/runner.ml: Array Baselines Des Format Int64 Latency Nvm Option Printf Ycsb
