lib/workload/ycsb.ml: Des Format Int64 Keyset Pactree Zipf
