lib/workload/ycsb.mli: Format Keyset Pactree
