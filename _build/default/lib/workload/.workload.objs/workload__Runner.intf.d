lib/workload/runner.mli: Baselines Format Keyset Latency Nvm Ycsb
