lib/workload/keyset.mli: Format Pactree
