lib/workload/zipf.ml: Des Float
