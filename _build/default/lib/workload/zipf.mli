(** Zipfian rank generator (Gray et al.), as used by YCSB.

    Draws ranks in [\[0, n)] where rank 0 is the hottest item.  With
    [scramble] (default), ranks are hashed over the item space so hot
    items are spread out, matching YCSB's scrambled Zipfian. *)

type t

(** [create ~n ~theta rng].  [theta] is the skew (YCSB default 0.99;
    the paper sweeps 0.5-0.99 in Fig 15).  [theta = 0] degenerates to
    uniform. *)
val create : ?scramble:bool -> n:int -> theta:float -> Des.Rng.t -> t

val next : t -> int

(** Number of items. *)
val n : t -> int
