type kind = Int_keys | String_keys

(* Multiplication by an odd constant is a bijection modulo 2^46, so
   every index yields a distinct scattered key. *)
let scatter i = i * 0x9E3779B97F47 land ((1 lsl 46) - 1)

let key kind i =
  let v = scatter i in
  match kind with
  | Int_keys -> Pactree.Key.of_int v
  | String_keys -> Printf.sprintf "user%019d" v (* 23 bytes, like the paper *)

let key_inline = function Int_keys -> 8 | String_keys -> 32

let pp_kind ppf = function
  | Int_keys -> Format.pp_print_string ppf "int"
  | String_keys -> Format.pp_print_string ppf "string"
