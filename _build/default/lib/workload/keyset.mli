(** Key spaces for the YCSB workloads (paper §6: 8-byte integer keys
    and 23-byte string keys). *)

type kind = Int_keys | String_keys

(** [key kind i] maps the dense index [i] (0..) to a unique key; the
    mapping scatters consecutive indices across the key space like the
    index-microbench's hashed keys. *)
val key : kind -> int -> Pactree.Key.t

(** [key_inline kind] is the data-node inline size to configure. *)
val key_inline : kind -> int

val pp_kind : Format.formatter -> kind -> unit
