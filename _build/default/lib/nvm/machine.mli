(** The simulated NVM machine: NUMA topology, CPU cache model and the
    clwb/sfence staging pipeline shared by all pools.

    Persistence model (ADR, paper §2.1): CPU caches are volatile.  A
    store only reaches the persistent media image after [clwb] stages
    a snapshot of its cache line {e and} a subsequent [fence] by the
    same thread completes.  On {!crash}, everything else is lost
    ([Strict]) or survives line-by-line with some probability
    ([Flaky]), which models arbitrary cache evictions and in-flight
    flushes. *)

type t

(** [Strict]: only fenced flushes survive a crash — catches missing
    [clwb]/[fence].  [Flaky (p, rng)]: additionally every dirty line
    independently survives with probability [p] — models cache
    evictions and un-fenced flushes, catching ordering bugs. *)
type crash_mode = Strict | Flaky of float * Des.Rng.t

val create :
  ?profile:Config.profile -> ?protocol:Config.protocol -> numa_count:int -> unit -> t

val profile : t -> Config.profile

val protocol : t -> Config.protocol

val numa_count : t -> int

val device : t -> int -> Device.t

(** Machine-level counters (flushes, fences, CPU cache).  Device
    traffic lives in each device's {!Device.stats}. *)
val stats : t -> Stats.t

(** Sum of machine-level and all device counters. *)
val total_stats : t -> Stats.t

(** Current simulated time (0 outside a simulation). *)
val now : t -> float

(** {2 Used by {!Pool}} *)

val fresh_pool_id : t -> int

(** [cache_access t gline] models a CPU cache access to global line
    [gline]; returns [true] on a hit.  Misses install the tag. *)
val cache_access : t -> int -> bool

val cache_invalidate : t -> int -> unit

type staged = {
  pool_id : int;
  dev : Device.t;
  xpline : int;  (** global XPLine id, for write-combining *)
  apply : unit -> unit;  (** persist the snapshot into the media image *)
}

(** Queue a flushed-line snapshot on the calling thread's staging
    list; it persists at that thread's next [fence]. *)
val stage : t -> staged -> unit

(** Register a callback run by {!crash}. *)
val on_crash : t -> (crash_mode -> unit) -> unit

(** {2 Program-visible operations} *)

(** Store fence: drains the calling thread's staged flushes through
    the write-combining cost model and applies them to the media
    images.  Blocks (simulated) until the media writes complete. *)
val fence : t -> unit

(** Power-failure / SIGKILL: volatile state (CPU caches, staged
    flushes, device buffers, DRAM pools) is lost; each pool's cache
    image is reset to its media image per [crash_mode]. *)
val crash : t -> crash_mode -> unit
