let xpline_size = 256

type t = {
  profile : Config.profile;
  protocol : Config.protocol;
  numa : int;
  channels : float array; (* absolute time each channel becomes free *)
  read_buf : int array; (* direct-mapped XPLine buffer; -1 = empty *)
  mutable last_fetched : int; (* previous XPLine miss, for the prefetcher *)
  owners : (int, int) Hashtbl.t; (* xpline -> owning NUMA domain *)
  stats : Stats.t;
}

let create profile ~protocol ~numa =
  {
    profile;
    protocol;
    numa;
    channels = Array.make profile.Config.channels 0.0;
    read_buf = Array.make profile.Config.read_buffer_slots (-1);
    last_fetched = min_int;
    owners = Hashtbl.create 4096;
    stats = Stats.create ();
  }

let numa t = t.numa

let stats t = t.stats

(* Knuth multiplicative hash keeps adjacent XPLines in distinct slots. *)
let buf_slot t xpline = xpline * 0x9E3779B1 land max_int mod Array.length t.read_buf

let buf_mem t xpline = t.read_buf.(buf_slot t xpline) = xpline

let buf_insert t xpline = t.read_buf.(buf_slot t xpline) <- xpline

(* Occupy the earliest-free channel for [cost] seconds starting no
   earlier than [now]; returns the completion time. *)
let channel_service t ~now cost =
  let best = ref 0 in
  for i = 1 to Array.length t.channels - 1 do
    if t.channels.(i) < t.channels.(!best) then best := i
  done;
  let start = Float.max now t.channels.(!best) in
  let finish = start +. cost in
  t.channels.(!best) <- finish;
  finish

(* Directory coherence (FH5): accessing an XPLine from a NUMA domain
   other than its recorded owner updates the directory state, which
   lives on the 3D-Xpoint media, i.e. it is a media write (itself a
   partial-line RMW).  Snoop mode keeps no on-media state. *)
let coherence_update t ~now ~xpline ~from_numa =
  match t.protocol with
  | Config.Snoop -> now
  | Config.Directory ->
      (* Lines start out owned by their home socket (they were zeroed /
         initialised locally), so purely local workloads cause no
         directory traffic. *)
      let owner = try Hashtbl.find t.owners xpline with Not_found -> t.numa in
      if owner = from_numa then now
      else begin
        Hashtbl.replace t.owners xpline from_numa;
        let p = t.profile in
        let s = t.stats in
        s.Stats.dir_writes <- s.Stats.dir_writes + 1;
        (* 64B directory entry write -> 256B RMW on the media. *)
        s.Stats.dir_write_bytes <- s.Stats.dir_write_bytes + xpline_size;
        s.Stats.rmw_reads <- s.Stats.rmw_reads + 1;
        s.Stats.rmw_read_bytes <- s.Stats.rmw_read_bytes + xpline_size;
        let cost =
          p.Config.write_latency
          +. (float_of_int xpline_size
             *. (p.Config.write_byte_cost +. p.Config.read_byte_cost))
        in
        channel_service t ~now cost
      end

let remote_adder t ~from_numa =
  if from_numa = t.numa then 0.0
  else begin
    t.stats.Stats.remote_accesses <- t.stats.Stats.remote_accesses + 1;
    t.profile.Config.remote_latency
  end

let read t ~now ~xpline ~from_numa =
  let p = t.profile in
  let s = t.stats in
  let remote = remote_adder t ~from_numa in
  if buf_mem t xpline then begin
    s.Stats.buffer_hits <- s.Stats.buffer_hits + 1;
    (* Keep a detected sequential stream running: when the hit is on
       the line the prefetcher just brought in, fetch the next one in
       the background. *)
    if p.Config.prefetch && xpline = t.last_fetched + 1 then begin
      if not (buf_mem t (xpline + 1)) then begin
        s.Stats.prefetches <- s.Stats.prefetches + 1;
        s.Stats.media_reads <- s.Stats.media_reads + 1;
        s.Stats.media_read_bytes <- s.Stats.media_read_bytes + xpline_size;
        let cost =
          p.Config.read_latency
          +. (float_of_int xpline_size *. p.Config.read_byte_cost)
        in
        let (_ : float) = channel_service t ~now cost in
        buf_insert t (xpline + 1)
      end;
      t.last_fetched <- xpline
    end;
    now +. p.Config.buffer_hit_latency +. remote
  end
  else begin
    s.Stats.media_reads <- s.Stats.media_reads + 1;
    s.Stats.media_read_bytes <- s.Stats.media_read_bytes + xpline_size;
    let cost =
      p.Config.read_latency +. (float_of_int xpline_size *. p.Config.read_byte_cost)
    in
    let fetch_done = channel_service t ~now cost in
    buf_insert t xpline;
    (* Sequential prefetch: a second consecutive miss triggers a
       background fetch of the next XPLine, consuming channel time but
       not blocking the requester. *)
    if p.Config.prefetch && xpline = t.last_fetched + 1 && not (buf_mem t (xpline + 1))
    then begin
      s.Stats.prefetches <- s.Stats.prefetches + 1;
      s.Stats.media_reads <- s.Stats.media_reads + 1;
      s.Stats.media_read_bytes <- s.Stats.media_read_bytes + xpline_size;
      let (_ : float) = channel_service t ~now:fetch_done cost in
      buf_insert t (xpline + 1)
    end;
    t.last_fetched <- xpline;
    let after_coherence = coherence_update t ~now:fetch_done ~xpline ~from_numa in
    after_coherence +. remote
  end

(* Returns [(accepted, completed)]: [accepted] is when the write
   enters the WPQ (the ADR persistent domain — what an sfence waits
   for), [completed] is when the media transfer finishes (what bounds
   throughput via channel occupancy). *)
let write t ~now ~xpline ~bytes ~from_numa =
  assert (bytes > 0 && bytes <= xpline_size);
  let p = t.profile in
  let s = t.stats in
  let remote = remote_adder t ~from_numa in
  s.Stats.media_writes <- s.Stats.media_writes + 1;
  s.Stats.media_write_bytes <- s.Stats.media_write_bytes + xpline_size;
  let rmw_cost =
    if bytes < xpline_size then begin
      (* Partial XPLine update: the controller must first read the
         line (write amplification, FH1). *)
      s.Stats.rmw_reads <- s.Stats.rmw_reads + 1;
      s.Stats.rmw_read_bytes <- s.Stats.rmw_read_bytes + xpline_size;
      float_of_int xpline_size *. p.Config.read_byte_cost
    end
    else 0.0
  in
  let cost =
    p.Config.write_latency
    +. (float_of_int xpline_size *. p.Config.write_byte_cost)
    +. rmw_cost
  in
  let write_done = channel_service t ~now cost in
  let after_coherence = coherence_update t ~now:write_done ~xpline ~from_numa in
  let completed = after_coherence +. remote in
  (* WPQ acceptance: fast when channels are free; back-pressured to
     the service start when the device is saturated. *)
  let accepted = write_done -. cost +. p.Config.write_latency +. remote in
  (accepted, completed)

let dram_access t ~now ~bytes =
  let p = t.profile in
  now +. p.Config.dram_latency +. (float_of_int bytes *. 0.01e-9)

let reset_buffers t =
  Array.fill t.read_buf 0 (Array.length t.read_buf) (-1);
  Array.fill t.channels 0 (Array.length t.channels) 0.0;
  t.last_fetched <- min_int;
  Hashtbl.reset t.owners
