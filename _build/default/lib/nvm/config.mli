(** Performance-model parameters of the simulated NVM machine.

    A {!profile} bundles every tunable constant: media latencies,
    per-channel transfer costs, buffer sizes and CPU-side costs.  Two
    presets mirror the paper's evaluation platforms: the default
    2-socket DCPMM server (§6) and the low-bandwidth machine of §6.2.

    All times are in seconds, all sizes in bytes. *)

(** Inter-socket cache coherence protocol (paper §3.1.1, FH5).
    [Directory] stores coherence state on the NVM media, so remote
    reads generate media {e writes}; [Snoop] does not. *)
type protocol = Snoop | Directory

type profile = {
  channels : int;  (** parallel media channels per NUMA device *)
  read_latency : float;  (** setup cost of a 256B XPLine fetch *)
  read_byte_cost : float;  (** per-byte channel occupancy for reads *)
  write_latency : float;  (** setup cost of a media write *)
  write_byte_cost : float;  (** per-byte channel occupancy for writes *)
  buffer_hit_latency : float;  (** XPBuffer / read-buffer hit *)
  read_buffer_slots : int;  (** XPLine read/prefetch buffer entries *)
  prefetch : bool;  (** enable the XPPrefetcher model *)
  cache_hit_cost : float;  (** CPU cache hit *)
  cache_slots_log2 : int;  (** log2 of CPU cache model slots (64B each) *)
  clwb_cpu_cost : float;  (** CPU-side cost of issuing clwb *)
  fence_base_cost : float;  (** CPU-side cost of sfence *)
  remote_latency : float;  (** interconnect adder for cross-NUMA access *)
  dram_latency : float;  (** DRAM miss latency (volatile pools) *)
  op_overhead : float;  (** fixed CPU work charged per index operation *)
  eadr : bool;
      (** enhanced-ADR (§3.5): CPU caches are persistent — flushes and
          fences are free no-ops, a crash preserves all stores, and
          media writes drain in the background (still consuming
          bandwidth) *)
}

(** The default evaluation platform: 2-socket, high-bandwidth DCPMM
    (paper §6, Figures 9-15). *)
val dcpmm : profile

(** The low-bandwidth machine of §6.2: roughly 3x less cumulative NVM
    bandwidth. *)
val dcpmm_low_bw : profile

(** eADR mode (§3.5): persistent CPU caches. *)
val dcpmm_eadr : profile

(** Aggregate read bandwidth of one device under [p], bytes/second. *)
val read_bandwidth : profile -> float

(** Aggregate write bandwidth of one device under [p], bytes/second. *)
val write_bandwidth : profile -> float

val pp_protocol : Format.formatter -> protocol -> unit
