(** One NVM media device (one NUMA domain's DIMMs behind its iMC).

    Models the parts of Optane DCPMM the paper's findings depend on:

    - finite bandwidth via a fixed set of parallel channels; a request
      occupies the earliest-free channel for [latency + bytes * cost];
    - 256-byte XPLine access granularity with read-modify-write
      amplification for partial writes (FH1/FH2);
    - an XPLine read buffer plus sequential prefetcher, which makes
      sequential reads much cheaper than random ones (FH3);
    - directory coherence state stored on the media: a media access
      from a different NUMA domain than the current owner generates a
      directory {e write} under the [Directory] protocol (FH5).

    The device is a pure cost model: it returns completion times as a
    function of [now] and never touches the scheduler, so callers
    decide whether to block. *)

type t

val create : Config.profile -> protocol:Config.protocol -> numa:int -> t

val numa : t -> int

val stats : t -> Stats.t

(** [read t ~now ~xpline ~from_numa] models fetching XPLine [xpline]
    and returns the absolute completion time.  A buffer hit bypasses
    the channels.  Directory maintenance traffic is added when
    [from_numa] differs from the line's current owner. *)
val read : t -> now:float -> xpline:int -> from_numa:int -> float

(** [write t ~now ~xpline ~bytes ~from_numa] models persisting [bytes]
    (<= 256) of XPLine [xpline].  Partial writes charge an extra 256B
    RMW read.  Returns [(accepted, completed)]: when the write enters
    the WPQ (ADR persistent domain — what a fence waits for) and when
    the media transfer finishes (channel occupancy / bandwidth). *)
val write : t -> now:float -> xpline:int -> bytes:int -> from_numa:int -> float * float

(** [dram_access t ~now ~bytes] models a volatile (DRAM) memory access
    on this NUMA domain; no persistence, no directory traffic. *)
val dram_access : t -> now:float -> bytes:int -> float

(** Drop buffered XPLines and coherence state (used on crash). *)
val reset_buffers : t -> unit
