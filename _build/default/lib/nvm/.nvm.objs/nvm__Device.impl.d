lib/nvm/device.ml: Array Config Float Hashtbl Stats
