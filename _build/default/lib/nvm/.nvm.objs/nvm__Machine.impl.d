lib/nvm/machine.ml: Array Config Des Device Hashtbl List Stats
