lib/nvm/config.ml: Format
