lib/nvm/config.mli: Format
