lib/nvm/device.mli: Config Stats
