lib/nvm/pool.ml: Bytes Char Config Des Device Int32 Int64 Machine Printf Stats String
