lib/nvm/pool.mli: Machine
