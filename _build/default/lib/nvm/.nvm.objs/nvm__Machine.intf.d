lib/nvm/machine.mli: Config Des Device Stats
