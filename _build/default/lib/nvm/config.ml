type protocol = Snoop | Directory

type profile = {
  channels : int;
  read_latency : float;
  read_byte_cost : float;
  write_latency : float;
  write_byte_cost : float;
  buffer_hit_latency : float;
  read_buffer_slots : int;
  prefetch : bool;
  cache_hit_cost : float;
  cache_slots_log2 : int;
  clwb_cpu_cost : float;
  fence_base_cost : float;
  remote_latency : float;
  dram_latency : float;
  op_overhead : float;
  eadr : bool;
}

(* Calibrated against published DCPMM measurements (Yang et al.,
   FAST'20): random 256B read ~300ns, clwb+sfence ~500-800ns, per-NUMA
   read bandwidth ~30GB/s, write bandwidth 3-5x lower, sequential reads
   3-5x faster than random via prefetch. *)
let dcpmm =
  {
    channels = 16;
    read_latency = 150e-9;
    read_byte_cost = 0.55e-9;
    write_latency = 120e-9;
    write_byte_cost = 2.1e-9;
    buffer_hit_latency = 95e-9;
    read_buffer_slots = 64; (* the 16KB XPBuffer: 64 XPLines *)
    prefetch = true;
    cache_hit_cost = 6e-9;
    (* Scaled with the benchmark datasets: the paper's 64M-key indexes
       exceed the testbed's LLC by ~2 orders of magnitude; the reduced
       simulation scale keeps the same dataset:cache ratio so indexes
       stay NVM-bound, which is the regime the paper studies. *)
    cache_slots_log2 = 12;
    clwb_cpu_cost = 15e-9;
    fence_base_cost = 30e-9;
    remote_latency = 60e-9;
    dram_latency = 90e-9;
    op_overhead = 120e-9;
    eadr = false;
  }

(* §6.2: 16 physical cores and 2x128GB NVM per socket; cumulative
   bandwidth about 3x lower than the default platform. *)
let dcpmm_low_bw = { dcpmm with channels = 5 }

(* §3.5: eADR mode — CPU caches join the persistent domain, so
   explicit flushes/fences are unnecessary (and free), every store is
   durable on power failure, but the media bandwidth still bounds
   sustained write throughput (dirty lines must eventually drain). *)
let dcpmm_eadr = { dcpmm with eadr = true }

let read_bandwidth p = float_of_int p.channels /. p.read_byte_cost

let write_bandwidth p = float_of_int p.channels /. p.write_byte_cost

let pp_protocol ppf = function
  | Snoop -> Format.pp_print_string ppf "snoop"
  | Directory -> Format.pp_print_string ppf "directory"
