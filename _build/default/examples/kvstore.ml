(* A small persistent session store built on PACTree, exercising
   string keys, concurrent simulated clients, the asynchronous SMO
   updater, and crash recovery with a flaky (partial-persist) power
   failure.

     dune exec examples/kvstore.exe *)

module Tree = Pactree.Tree
module Key = Pactree.Key
module Machine = Nvm.Machine

(* Sessions are "sess:<user>" -> last-active timestamp. *)
let session_key user = Key.of_string (Printf.sprintf "sess:%08d" user)

let () =
  let machine = Machine.create ~numa_count:2 () in
  let cfg =
    {
      Tree.default_config with
      key_inline = 32 (* string keys *);
      data_capacity = 1 lsl 24;
      search_capacity = 1 lsl 22;
    }
  in
  let store = Tree.create machine ~cfg () in

  (* Phase 1: concurrent clients create and touch sessions, with the
     background updater keeping the search layer in sync. *)
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"updater" (fun () -> Tree.updater_loop store);
  let clients = 8 and sessions_per_client = 2_000 in
  let live = ref clients in
  for c = 0 to clients - 1 do
    Des.Sched.spawn sched ~numa:(c mod 2) ~name:(Printf.sprintf "client%d" c)
      (fun () ->
        for s = 0 to sessions_per_client - 1 do
          let user = (s * clients) + c in
          Tree.insert store (session_key user) (1000 + s)
        done;
        decr live;
        if !live = 0 then Tree.request_shutdown store)
  done;
  Des.Sched.run sched;
  Printf.printf "loaded %d sessions in %.2f simulated ms\n"
    (clients * sessions_per_client)
    (Des.Sched.now sched *. 1e3);
  let stats = Tree.stats store in
  Printf.printf "data-node splits: %d (all handled off the critical path)\n"
    stats.Tree.splits;

  (* Range query: all sessions of users 100..104. *)
  let r = Tree.scan store (session_key 100) 5 in
  Printf.printf "scan from user 100: ";
  List.iter (fun (k, v) -> Printf.printf "%s=%d " k v) r;
  print_newline ();

  (* Phase 2: power failure where every unflushed cache line
     independently survives with probability 0.5 — the adversarial
     crash model.  Durable linearizability: every acknowledged insert
     must still be there. *)
  let rng = Des.Rng.create ~seed:2024L in
  Machine.crash machine (Machine.Flaky (0.5, rng));
  let repaired = Tree.recover store in
  Printf.printf "crashed (flaky) and recovered; %d SMO log entries repaired\n" repaired;

  let missing = ref 0 in
  for user = 0 to (clients * sessions_per_client) - 1 do
    if Tree.lookup store (session_key user) = None then incr missing
  done;
  Printf.printf "missing sessions after recovery: %d\n" !missing;
  ignore (Tree.check_invariants store);
  print_endline "store invariants hold";

  (* Phase 3: the store remains fully usable. *)
  Tree.insert store (session_key 999_999) 42;
  assert (Tree.lookup store (session_key 999_999) = Some 42);
  print_endline "post-recovery writes OK"
