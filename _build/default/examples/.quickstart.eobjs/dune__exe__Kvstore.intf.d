examples/kvstore.mli:
