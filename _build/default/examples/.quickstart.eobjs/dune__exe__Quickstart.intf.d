examples/quickstart.mli:
