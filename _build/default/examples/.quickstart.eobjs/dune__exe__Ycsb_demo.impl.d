examples/ycsb_demo.ml: Experiments Format List Nvm Printf Workload
