examples/numa_coherence.mli:
