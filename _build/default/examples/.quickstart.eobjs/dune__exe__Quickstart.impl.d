examples/quickstart.ml: List Nvm Option Pactree Printf
