examples/kvstore.ml: Des List Nvm Pactree Printf
