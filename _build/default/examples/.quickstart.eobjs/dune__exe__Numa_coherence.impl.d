examples/numa_coherence.ml: Des Int64 List Nvm Printf
