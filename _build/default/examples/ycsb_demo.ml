(* Mini YCSB comparison: PACTree vs FastFair vs PDL-ART on workloads
   A and C, at 1 and 28 simulated threads — a taste of the full
   benchmark suite (bench/main.exe).

     dune exec examples/ycsb_demo.exe *)

let scale_keys = 20_000

let run sys mix threads =
  let machine = Nvm.Machine.create ~numa_count:2 () in
  let scale =
    Experiments.Scale.make ~keys:scale_keys ~ops:scale_keys ~thread_counts:[]
  in
  let index, service = Experiments.Factory.make machine ~scale sys in
  Workload.Runner.run ~machine ~index ?service ~mix ~kind:Workload.Keyset.Int_keys
    ~loaded:scale_keys ~ops:scale_keys ~threads ()

let () =
  let systems =
    [ Experiments.Factory.Pactree_sys; Experiments.Factory.Fastfair_sys;
      Experiments.Factory.Pdlart_sys ]
  in
  Printf.printf "YCSB demo: %d keys, %d ops, Zipfian 0.99 (simulated Mops/s)\n\n"
    scale_keys scale_keys;
  List.iter
    (fun mix ->
      Format.printf "-- %a --@." Workload.Ycsb.pp_mix mix;
      Format.printf "%10s %12s %12s@." "index" "1 thread" "28 threads";
      List.iter
        (fun sys ->
          let one = Workload.Runner.mops (run sys mix 1) in
          let many = Workload.Runner.mops (run sys mix 28) in
          Format.printf "%10s %12.2f %12.2f@." (Experiments.Factory.name sys) one many)
        systems;
      Format.printf "@.")
    [ Workload.Ycsb.Workload_c; Workload.Ycsb.Workload_a ]
