(* Quickstart: create a PACTree on a simulated NVM machine, do basic
   operations, crash it, and recover.

     dune exec examples/quickstart.exe *)

module Tree = Pactree.Tree
module Key = Pactree.Key
module Machine = Nvm.Machine

let () =
  (* A 2-socket simulated DCPMM machine. *)
  let machine = Machine.create ~numa_count:2 () in
  let cfg =
    { Tree.default_config with data_capacity = 1 lsl 22; search_capacity = 1 lsl 21 }
  in
  let tree = Tree.create machine ~cfg () in

  (* Point operations.  Keys are order-preserving byte strings; use
     Key.of_int / Key.of_string to build them. *)
  Tree.insert tree (Key.of_int 4201) 4200;
  Tree.insert tree (Key.of_int 7) 700;
  Tree.insert tree (Key.of_int 1001) 10000;
  (match Tree.lookup tree (Key.of_int 4201) with
  | Some v -> Printf.printf "lookup 4201 -> %d\n" v
  | None -> assert false);

  (* Upsert and delete. *)
  Tree.insert tree (Key.of_int 4201) 4242;
  Printf.printf "after upsert: %d\n" (Option.get (Tree.lookup tree (Key.of_int 4201)));
  ignore (Tree.delete tree (Key.of_int 7));
  Printf.printf "7 deleted: %b\n" (Tree.lookup tree (Key.of_int 7) = None);

  (* Range scan: up to n pairs with key >= the start key. *)
  for i = 0 to 99 do
    Tree.insert tree (Key.of_int (i * 2)) i
  done;
  let range = Tree.scan tree (Key.of_int 10) 5 in
  Printf.printf "scan from 10: ";
  List.iter (fun (k, v) -> Printf.printf "(%d -> %d) " (Key.to_int k) v) range;
  print_newline ();

  (* Crash the machine: only explicitly persisted data survives —
     which, because every completed operation is durably linearizable,
     is everything acknowledged above. *)
  Machine.crash machine Machine.Strict;
  let repaired = Tree.recover tree in
  Printf.printf "recovered (repaired %d interrupted SMOs)\n" repaired;
  Printf.printf "post-crash lookup 4201 -> %d\n"
    (Option.get (Tree.lookup tree (Key.of_int 4201)));
  Printf.printf "post-crash key count: %d\n" (Tree.cardinal tree);
  ignore (Tree.check_invariants tree);
  print_endline "all invariants hold"
