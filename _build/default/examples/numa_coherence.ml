(* Using the NVM substrate directly: reproduce the paper's FH5 finding
   that remote reads under the directory cache-coherence protocol
   generate media *writes* (the directory state lives on the 3D-Xpoint
   media), melting down cross-NUMA read bandwidth.

     dune exec examples/numa_coherence.exe *)

module Machine = Nvm.Machine
module Pool = Nvm.Pool

let readers = 16

let reads_per_thread = 20_000

let experiment protocol =
  let machine = Machine.create ~protocol ~numa_count:2 () in
  (* A pool homed on NUMA 0... *)
  let pool = Pool.create machine ~name:"data" ~numa:0 ~capacity:(1 lsl 26) () in
  let lines = Pool.capacity pool / 64 in
  let sched = Des.Sched.create () in
  (* ...hammered by random readers pinned to NUMA 1. *)
  for i = 0 to readers - 1 do
    Des.Sched.spawn sched ~numa:1 ~name:(Printf.sprintf "reader%d" i) (fun () ->
        let rng = Des.Rng.create ~seed:(Int64.of_int (i + 1)) in
        for _ = 1 to reads_per_thread do
          ignore (Pool.read_int pool (Des.Rng.int rng lines * 64))
        done)
  done;
  Des.Sched.run sched;
  let elapsed = Des.Sched.now sched in
  let stats = Nvm.Device.stats (Machine.device machine 0) in
  let read_gb = float_of_int (Nvm.Stats.total_read_bytes stats) /. 1e9 in
  let write_gb = float_of_int (Nvm.Stats.total_write_bytes stats) /. 1e9 in
  let bw = read_gb /. elapsed in
  (read_gb, write_gb, bw)

let () =
  Printf.printf "%d remote readers x %d random 8B reads on a NUMA-0 pool\n\n" readers
    reads_per_thread;
  Printf.printf "%-10s %12s %12s %16s\n" "protocol" "read (GB)" "write (GB)"
    "read BW (GB/s)";
  List.iter
    (fun (name, protocol) ->
      let r, w, bw = experiment protocol in
      Printf.printf "%-10s %12.3f %12.3f %16.2f\n" name r w bw)
    [ ("snoop", Nvm.Config.Snoop); ("directory", Nvm.Config.Directory) ];
  print_newline ();
  print_endline
    "Under the directory protocol every remote read that changes ownership";
  print_endline
    "writes directory state back to the media: reads generate write traffic";
  print_endline "and read bandwidth collapses (paper finding FH5, Figure 2)."
