(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 3 for the index).

   Usage:
     dune exec bench/main.exe                 # all figures, quick scale
     dune exec bench/main.exe -- --full       # paper-like scale (slow)
     dune exec bench/main.exe -- fig9 fig13   # a subset
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks

   Throughputs are simulated Mops/s on the modelled DCPMM machine;
   shapes (ordering, ratios, crossovers), not absolute numbers, are
   the comparison target against the paper. *)

let microbench () =
  (* Bechamel micro-benchmarks: host-side cost of one simulated
     operation per index (single-threaded, small working set).  One
     Test.make per measured system. *)
  let open Bechamel in
  let scale = Experiments.Scale.tiny in
  let make_op sys =
    let machine = Nvm.Machine.create ~numa_count:2 () in
    let index, _service = Experiments.Factory.make machine ~scale sys in
    for i = 0 to 4_095 do
      Baselines.Index_intf.insert index (Pactree.Key.of_int i) i
    done;
    let counter = ref 0 in
    Staged.stage (fun () ->
        counter := (!counter + 7919) land 0xFFF;
        ignore (Baselines.Index_intf.lookup index (Pactree.Key.of_int !counter)))
  in
  let test_of sys = Test.make ~name:(Experiments.Factory.name sys) (make_op sys) in
  let test =
    Test.make_grouped ~name:"lookup-4k" (List.map test_of Experiments.Factory.all)
  in
  let benchmark () =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  Format.printf "@.=== micro: host-side cost per simulated lookup ===@.";
  let results = analyze (benchmark ()) in
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Format.printf "%-24s %10.0f ns/op@." name est
      | Some _ | None -> Format.printf "%-24s (no estimate)@." name)
    results

(* Bounded crash-state model-checking sweep (lib/crashmc): not a
   paper figure, but the strongest correctness evidence in the suite —
   every enumerated crash image of a mixed single-writer trace must
   recover to a durably-linearizable state, on every index. *)
let crashmc scale =
  let quick = scale.Experiments.Scale.keys < 1_000_000 in
  let ops = if quick then 40 else 90 in
  let budget = if quick then 24 else 48 in
  let seed = Int64.to_int (Des.Rng.env_seed ~default:1L) in
  Format.printf "@.=== crashmc: durable-linearizability crash sweep ===@.";
  List.iter
    (fun kind ->
      let sut = Crashmc.Sut.make kind in
      let r =
        Crashmc.Harness.run ~budget_per_point:budget ~max_states:10_000 ~seed ~sut
          ~ops:(Crashmc.Harness.mixed_workload ~seed ops)
          ()
      in
      Format.printf "%a@." Crashmc.Harness.pp_report r;
      if not (Crashmc.Harness.ok r) then
        Format.printf "  seed %d (override with PACTREE_SEED)@." seed)
    Crashmc.Sut.all

(* Instrumented run in the BENCH_pactree.json shape: per-phase time
   attribution + per-op persistence costs for PACTree and the two
   closest baselines.  (The canonical file is emitted by
   `pactree_bench stats`; this target prints the same rows and
   validates them in-memory.) *)
let stats scale =
  Format.printf "@.=== stats: phase attribution + per-op persistence costs ===@.";
  let mix = Workload.Ycsb.Workload_a in
  let threads = 28 in
  let entries =
    List.map
      (fun sys ->
        let entry, obs = Experiments.Obs_run.bench_entry ~scale ~mix ~threads sys in
        Format.printf "%a@." Obs.Report.pp_entry entry;
        Format.printf "%a@." Obs.Span.pp_table obs.Obs.Recorder.span;
        entry)
      [
        Experiments.Factory.Pactree_sys;
        Experiments.Factory.Pdlart_sys;
        Experiments.Factory.Fastfair_sys;
      ]
  in
  let json =
    Obs.Report.to_json ~keys:scale.Experiments.Scale.keys
      ~ops:scale.Experiments.Scale.ops ~threads
      ~mix:(Format.asprintf "%a" Workload.Ycsb.pp_mix mix)
      ~entries
  in
  match Obs.Report.validate json with
  | Ok () -> Format.printf "(rows conform to schema %s)@." Obs.Report.schema_version
  | Error msg -> failwith ("stats: malformed bench output: " ^ msg)

(* Sharded KV service saturation curves (lib/svc): open-loop sweep
   across the knee for PACTree and FastFair-backed stores, validated
   in-memory against the pactree-svc/v1 shape checks.  (The canonical
   JSON is emitted by `pactree_bench service`.) *)
let service scale =
  let quick = scale.Experiments.Scale.keys < 1_000_000 in
  Format.printf "@.=== service: sharded store saturation sweep ===@.";
  List.iter
    (fun sys ->
      let cfg = Experiments.Svc_run.default ~quick sys in
      let points = Experiments.Svc_run.sweep cfg in
      Format.printf "--- %s (%d shards, batch %d) ---@." (Experiments.Factory.name sys)
        cfg.Experiments.Svc_run.shards cfg.Experiments.Svc_run.max_batch;
      Format.printf
        " offered   achieved    rej    q-p50us    q-p99us    s-p99us    t-p99us  imbal \
         w/batch@.";
      List.iter
        (fun (_, r) ->
          Format.printf "%a@." Obs.Svc_report.pp_point
            (Experiments.Svc_run.point_of_result r))
        points;
      (match Experiments.Svc_run.check_sweep points with
      | Ok () -> Format.printf "(sweep shape OK: monotone, knee, queueing delay)@."
      | Error msg -> failwith ("service sweep: " ^ msg));
      match Obs.Svc_report.validate (Experiments.Svc_run.report cfg points) with
      | Ok () ->
          Format.printf "(points conform to schema %s)@." Obs.Svc_report.schema_version
      | Error msg -> failwith ("service: malformed report: " ^ msg))
    [ Experiments.Factory.Pactree_sys; Experiments.Factory.Fastfair_sys ]

let all_figures =
  [
    ("fig2", Experiments.Figures.fig2);
    ("fig3", Experiments.Figures.fig3);
    ("fig4", Experiments.Figures.fig4);
    ("fig5", Experiments.Figures.fig5);
    ("fig6", Experiments.Figures.fig6);
    ("fig9", Experiments.Figures.fig9);
    ("fig10", Experiments.Figures.fig10);
    ("fig11", Experiments.Figures.fig11);
    ("fig12", Experiments.Figures.fig12);
    ("fig13", Experiments.Figures.fig13);
    ("fig14", Experiments.Figures.fig14);
    ("fig15", Experiments.Figures.fig15);
    ("eadr", Experiments.Figures.eadr);
    ("fh5", Experiments.Figures.fh5);
    ("sec6_7", Experiments.Figures.sec6_7);
    ("sec6_8", Experiments.Figures.sec6_8);
    ("crashmc", crashmc);
    ("stats", stats);
    ("service", service);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let scale = if full then Experiments.Scale.full else Experiments.Scale.quick in
  let selected = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let wants name = selected = [] || List.mem name selected in
  Format.printf "PACTree benchmark suite (%s scale: %d keys, %d ops)@."
    (if full then "full" else "quick")
    scale.Experiments.Scale.keys scale.Experiments.Scale.ops;
  List.iter
    (fun (name, f) ->
      if wants name then begin
        let t0 = Unix.gettimeofday () in
        f scale;
        Format.printf "[%s took %.1fs host time]@." name (Unix.gettimeofday () -. t0)
      end)
    all_figures;
  if wants "micro" then microbench ()
