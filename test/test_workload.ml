(* Tests for the YCSB workload substrate and the benchmark runner. *)

module Key = Pactree.Key

let test_zipf_bounds () =
  let rng = Des.Rng.create ~seed:1L in
  let z = Workload.Zipf.create ~n:1000 ~theta:0.99 rng in
  for _ = 1 to 10_000 do
    let v = Workload.Zipf.next z in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 1000)
  done

let test_zipf_skew () =
  (* higher theta concentrates mass on fewer distinct items *)
  let distinct theta =
    let rng = Des.Rng.create ~seed:2L in
    let z = Workload.Zipf.create ~scramble:false ~n:10_000 ~theta rng in
    let seen = Hashtbl.create 64 in
    for _ = 1 to 10_000 do
      Hashtbl.replace seen (Workload.Zipf.next z) ()
    done;
    Hashtbl.length seen
  in
  let low = distinct 0.5 and high = distinct 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "0.99 hits fewer distinct keys (%d) than 0.5 (%d)" high low)
    true (high < low)

let test_zipf_hottest_rank_zero () =
  let rng = Des.Rng.create ~seed:3L in
  let z = Workload.Zipf.create ~scramble:false ~n:1000 ~theta:0.9 rng in
  let counts = Array.make 1000 0 in
  for _ = 1 to 50_000 do
    let v = Workload.Zipf.next z in
    counts.(v) <- counts.(v) + 1
  done;
  let max_idx = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!max_idx) then max_idx := i) counts;
  Alcotest.(check int) "rank 0 hottest" 0 !max_idx

let test_zipf_uniform_theta0 () =
  let rng = Des.Rng.create ~seed:4L in
  let z = Workload.Zipf.create ~n:100 ~theta:0.0 rng in
  let counts = Array.make 100 0 in
  for _ = 1 to 100_000 do
    counts.(Workload.Zipf.next z) <- counts.(Workload.Zipf.next z) + 1
  done;
  let min_c = Array.fold_left min max_int counts in
  let max_c = Array.fold_left max 0 counts in
  Alcotest.(check bool)
    (Printf.sprintf "roughly uniform (%d..%d)" min_c max_c)
    true
    (float_of_int max_c < 2.0 *. float_of_int min_c)

let test_keyset_unique_and_sized () =
  let seen = Hashtbl.create 1024 in
  for i = 0 to 9_999 do
    let k = Workload.Keyset.key Workload.Keyset.Int_keys i in
    Alcotest.(check int) "int key size" 8 (String.length k);
    if Hashtbl.mem seen k then Alcotest.failf "duplicate int key at %d" i;
    Hashtbl.add seen k ()
  done;
  let k = Workload.Keyset.key Workload.Keyset.String_keys 123 in
  Alcotest.(check int) "string key size (23B, paper)" 23 (String.length k)

let test_latency_percentiles () =
  let rec_ = Workload.Latency.create ~sample_rate:1.0 (Des.Rng.create ~seed:5L) in
  for i = 1 to 100 do
    Workload.Latency.record rec_ (float_of_int i)
  done;
  Alcotest.(check (float 1.0)) "p50" 50.0 (Workload.Latency.percentile rec_ 50.0);
  Alcotest.(check (float 1.0)) "p99" 99.0 (Workload.Latency.percentile rec_ 99.0);
  Alcotest.(check (float 1.0)) "p100" 100.0 (Workload.Latency.percentile rec_ 100.0)

let test_ycsb_mix_ratios () =
  let count_ops mix =
    let s =
      Workload.Ycsb.create ~mix ~kind:Workload.Keyset.Int_keys ~loaded:1000 ~theta:0.5
        ~seed:6L ~thread:0 ~threads:1
    in
    let lookups = ref 0 and upserts = ref 0 and inserts = ref 0 and scans = ref 0 in
    for _ = 1 to 10_000 do
      match Workload.Ycsb.next s with
      | Workload.Ycsb.Lookup _ -> incr lookups
      | Workload.Ycsb.Upsert _ -> incr upserts
      | Workload.Ycsb.Insert_new _ -> incr inserts
      | Workload.Ycsb.Scan _ -> incr scans
    done;
    (!lookups, !upserts, !inserts, !scans)
  in
  let l, _, i, _ = count_ops Workload.Ycsb.Workload_a in
  Alcotest.(check bool) "A is ~50/50 lookup/insert" true (abs (l - i) < 600);
  let l, _, i, _ = count_ops Workload.Ycsb.Workload_b in
  Alcotest.(check bool) "B is ~95/5" true (l > 9_200 && i < 800);
  let l, u, _, _ = count_ops Workload.Ycsb.Skew_update in
  Alcotest.(check bool) "skew-update is ~50/50 lookup/update" true (abs (l - u) < 600);
  let l, _, _, _ = count_ops Workload.Ycsb.Workload_c in
  Alcotest.(check int) "C is read-only" 10_000 l;
  let _, _, i, s = count_ops Workload.Ycsb.Workload_e in
  Alcotest.(check bool) "E is ~95 scan/5 insert" true (s > 9_200 && i < 800)

let test_ycsb_deterministic () =
  let stream () =
    let s =
      Workload.Ycsb.create ~mix:Workload.Ycsb.Workload_a ~kind:Workload.Keyset.Int_keys
        ~loaded:100 ~theta:0.9 ~seed:7L ~thread:3 ~threads:8
    in
    List.init 100 (fun _ -> Workload.Ycsb.next s)
  in
  Alcotest.(check bool) "same stream twice" true (stream () = stream ())

let test_ycsb_fresh_keys_disjoint () =
  let keys_of thread =
    let s =
      Workload.Ycsb.create ~mix:Workload.Ycsb.Load_a ~kind:Workload.Keyset.Int_keys
        ~loaded:0 ~theta:0.0 ~seed:8L ~thread ~threads:4
    in
    List.init 50 (fun _ ->
        match Workload.Ycsb.next s with
        | Workload.Ycsb.Insert_new (k, _) -> k
        | _ -> Alcotest.fail "load should only insert")
  in
  let all = List.concat_map keys_of [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "disjoint across threads" (List.length all)
    (List.length (List.sort_uniq compare all))

(* ---------- end-to-end runner smoke tests ---------- *)

let small_tree machine =
  let cfg =
    {
      Pactree.Tree.default_config with
      data_capacity = 1 lsl 23;
      search_capacity = 1 lsl 22;
    }
  in
  Pactree.Tree.create machine ~cfg ()

let pactree_service t =
  {
    Workload.Runner.body =
      (fun () ->
        Pactree.Tree.reset_shutdown t;
        Pactree.Tree.updater_loop t);
    shutdown = (fun () -> Pactree.Tree.request_shutdown t);
  }

let test_runner_pactree_ycsb_a () =
  let machine = Nvm.Machine.create ~numa_count:2 () in
  let t = small_tree machine in
  let index = Baselines.Pactree_index.wrap t in
  let r =
    Workload.Runner.run ~machine ~index ~service:(pactree_service t)
      ~mix:Workload.Ycsb.Workload_a ~kind:Workload.Keyset.Int_keys ~loaded:5_000
      ~ops:5_000 ~threads:8 ()
  in
  Alcotest.(check bool) "positive throughput" true (r.Workload.Runner.throughput > 0.0);
  Alcotest.(check bool) "simulated time advanced" true (r.Workload.Runner.elapsed > 0.0);
  Alcotest.(check bool) "latency sampled" true (Workload.Latency.count r.Workload.Runner.latency > 100);
  Alcotest.(check bool) "nvm traffic recorded" true
    (Nvm.Stats.total_read_bytes r.Workload.Runner.nvm > 0);
  (* the index is intact afterwards *)
  Pactree.Tree.reset_shutdown t;
  Pactree.Tree.drain_smo t;
  ignore (Pactree.Tree.check_invariants t)

let test_runner_all_indexes_agree_on_c () =
  (* All five indexes, loaded identically, must return identical
     counters for a read-only workload (they index the same data). *)
  let loaded = 2_000 and ops = 1_000 in
  let run_index make =
    let machine = Nvm.Machine.create ~numa_count:2 () in
    let index, service = make machine in
    let r =
      Workload.Runner.run ~machine ~index ?service ~mix:Workload.Ycsb.Workload_c
        ~kind:Workload.Keyset.Int_keys ~loaded ~ops ~threads:4 ()
    in
    Alcotest.(check bool) "ran" true (r.Workload.Runner.throughput > 0.0)
  in
  run_index (fun m ->
      let t = small_tree m in
      (Baselines.Pactree_index.wrap t, Some (pactree_service t)));
  run_index (fun m ->
      let t = Baselines.Fastfair.create m ~capacity:(1 lsl 23) () in
      (Baselines.Index_intf.Index ((module Baselines.Fastfair.Index), t), None));
  run_index (fun m ->
      let t = Baselines.Bztree.create m ~capacity:(1 lsl 23) () in
      (Baselines.Index_intf.Index ((module Baselines.Bztree.Index), t), None));
  run_index (fun m ->
      let t = Baselines.Fptree.create m ~capacity:(1 lsl 23) () in
      (Baselines.Index_intf.Index ((module Baselines.Fptree.Index), t), None));
  run_index (fun m ->
      let t = Baselines.Pdlart.create m ~capacity:(1 lsl 23) () in
      (Baselines.Index_intf.Index ((module Baselines.Pdlart.Index), t), None))

let test_runner_scaling_shape () =
  (* More threads must not reduce total work done per simulated second
     for a read-mostly workload at small thread counts. *)
  let tput threads =
    let machine = Nvm.Machine.create ~numa_count:2 () in
    let t = small_tree machine in
    let index = Baselines.Pactree_index.wrap t in
    let r =
      Workload.Runner.run ~machine ~index ~service:(pactree_service t)
        ~mix:Workload.Ycsb.Workload_c ~kind:Workload.Keyset.Int_keys ~loaded:4_000
        ~ops:4_000 ~threads ()
    in
    r.Workload.Runner.throughput
  in
  let t1 = tput 1 and t8 = tput 8 in
  Alcotest.(check bool)
    (Printf.sprintf "8 threads faster than 1 (%.2f vs %.2f Mops)" (t8 /. 1e6) (t1 /. 1e6))
    true (t8 > t1 *. 2.0)

(* ---------- qcheck properties for the Zipf generator ---------- *)

let zipf_counts ~scramble ~n ~theta ~seed ~draws =
  let rng = Des.Rng.create ~seed:(Int64.of_int seed) in
  let z = Workload.Zipf.create ~scramble ~n ~theta rng in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let v = Workload.Zipf.next z in
    if v < 0 || v >= n then QCheck.Test.fail_reportf "out of range: %d (n=%d)" v n;
    counts.(v) <- counts.(v) + 1
  done;
  counts

(* Unscrambled rank frequencies are monotone non-increasing in rank,
   up to multinomial noise (5-sigma one-sided slack per adjacent
   pair, so a genuine inversion of the underlying distribution fails
   while sampling jitter between near-equal ranks does not). *)
let test_zipf_prop_monotone =
  QCheck.Test.make ~name:"zipf: rank frequencies monotone (unscrambled)" ~count:25
    QCheck.(triple (int_range 2 40) (int_range 20 99) small_nat)
    (fun (n, theta_pct, seed) ->
      let theta = float_of_int theta_pct /. 100.0 in
      let counts = zipf_counts ~scramble:false ~n ~theta ~seed ~draws:20_000 in
      Array.iteri
        (fun i c ->
          if i + 1 < n then begin
            let next = counts.(i + 1) in
            let slack = (5.0 *. sqrt (float_of_int (c + next + 1))) +. 10.0 in
            if float_of_int next > float_of_int c +. slack then
              QCheck.Test.fail_reportf
                "rank %d drawn %d times but rank %d drawn %d (n=%d theta=%.2f)" i c
                (i + 1) next n theta
          end)
        counts;
      true)

(* theta = 0 degenerates to uniform: a chi-square statistic over the
   item counts stays within 5 sigma of its df = n-1 expectation. *)
let test_zipf_prop_theta0_uniform =
  QCheck.Test.make ~name:"zipf: theta=0 is uniform (chi-square)" ~count:25
    QCheck.(triple (int_range 2 100) bool small_nat)
    (fun (n, scramble, seed) ->
      let draws = 50 * n in
      let counts = zipf_counts ~scramble ~n ~theta:0.0 ~seed ~draws in
      let expected = float_of_int draws /. float_of_int n in
      let chi2 =
        Array.fold_left
          (fun acc c ->
            let d = float_of_int c -. expected in
            acc +. (d *. d /. expected))
          0.0 counts
      in
      let df = float_of_int (n - 1) in
      let bound = df +. (5.0 *. sqrt (2.0 *. df)) +. 10.0 in
      if chi2 > bound then
        QCheck.Test.fail_reportf "chi2 %.1f > %.1f (n=%d, scramble=%b)" chi2 bound n
          scramble;
      true)

(* Draws stay in [0, n) at the size boundaries: n = 1 (only 0), n = 2,
   and a key-space much larger than the sample count. *)
let test_zipf_prop_boundary_sizes =
  QCheck.Test.make ~name:"zipf: in range at size boundaries" ~count:25
    QCheck.(triple bool (int_range 20 99) small_nat)
    (fun (scramble, theta_pct, seed) ->
      let theta = float_of_int theta_pct /. 100.0 in
      let one = zipf_counts ~scramble ~n:1 ~theta ~seed ~draws:500 in
      if one.(0) <> 500 then QCheck.Test.fail_reportf "n=1 must always draw 0";
      ignore (zipf_counts ~scramble ~n:2 ~theta ~seed ~draws:500 : int array);
      let rng = Des.Rng.create ~seed:(Int64.of_int seed) in
      let z = Workload.Zipf.create ~scramble ~n:1_000_000 ~theta rng in
      for _ = 1 to 2_000 do
        let v = Workload.Zipf.next z in
        if v < 0 || v >= 1_000_000 then
          QCheck.Test.fail_reportf "out of range at n=1e6: %d" v
      done;
      true)

let suite =
  [
    Alcotest.test_case "zipf: bounds" `Quick test_zipf_bounds;
    Alcotest.test_case "zipf: skew ordering" `Quick test_zipf_skew;
    Alcotest.test_case "zipf: rank 0 hottest" `Quick test_zipf_hottest_rank_zero;
    Alcotest.test_case "zipf: theta=0 uniform" `Quick test_zipf_uniform_theta0;
    Alcotest.test_case "keyset: unique, right sizes" `Quick test_keyset_unique_and_sized;
    Alcotest.test_case "latency: percentiles" `Quick test_latency_percentiles;
    Alcotest.test_case "ycsb: mix ratios" `Quick test_ycsb_mix_ratios;
    Alcotest.test_case "ycsb: deterministic" `Quick test_ycsb_deterministic;
    Alcotest.test_case "ycsb: fresh keys disjoint" `Quick test_ycsb_fresh_keys_disjoint;
    Alcotest.test_case "runner: PACTree YCSB-A end-to-end" `Quick test_runner_pactree_ycsb_a;
    Alcotest.test_case "runner: all five indexes run C" `Quick
      test_runner_all_indexes_agree_on_c;
    Alcotest.test_case "runner: thread scaling shape" `Quick test_runner_scaling_shape;
    QCheck_alcotest.to_alcotest test_zipf_prop_monotone;
    QCheck_alcotest.to_alcotest test_zipf_prop_theta0_uniform;
    QCheck_alcotest.to_alcotest test_zipf_prop_boundary_sizes;
  ]
