(* Additional crash-consistency torture tests: interleaved crash
   points, flaky-mode sweeps, and cross-layer recovery interactions
   beyond the targeted cases in test_tree.ml. *)

module Machine = Nvm.Machine
module Key = Pactree.Key
module Tree = Pactree.Tree

let ik = Key.of_int

(* All stochastic choices below derive from this seed; export
   PACTREE_SEED to replay a printed failure exactly. *)
let base_seed = Des.Rng.env_seed ~default:0L

let seed_of n = Int64.add base_seed (Int64.of_int n)

let cfg =
  {
    Tree.default_config with
    Tree.data_capacity = 1 lsl 23;
    search_capacity = 1 lsl 22;
  }

(* Crash at a precise simulated instant during a single-writer run;
   sweep the crash time across the whole run.  Every acknowledged
   insert must survive; invariants must hold. *)
let test_crash_time_sweep () =
  List.iter
    (fun crash_at ->
      let machine = Machine.create ~numa_count:2 () in
      let t = Tree.create machine ~cfg () in
      let acked = ref [] in
      let sched = Des.Sched.create () in
      Des.Sched.spawn sched ~name:"updater" (fun () -> Tree.updater_loop t);
      Des.Sched.spawn sched ~name:"writer" (fun () ->
          for i = 0 to 2_999 do
            Tree.insert t (ik i) i;
            acked := i :: !acked
          done;
          Tree.request_shutdown t);
      Des.Sched.spawn sched ~name:"crasher" (fun () ->
          Des.Sched.delay crash_at;
          Des.Sched.abort_all sched;
          Machine.crash machine Machine.Strict);
      Des.Sched.run sched;
      ignore (Tree.recover t);
      ignore (Tree.check_invariants t);
      List.iter
        (fun i ->
          if Tree.lookup t (ik i) <> Some i then
            Alcotest.failf "crash at %.2e: acked key %d lost" crash_at i)
        !acked)
    [ 1e-6; 5e-6; 2e-5; 1e-4; 5e-4; 2e-3 ]

(* Flaky crashes with survival probabilities from 0 to 1: durability
   of acknowledged writes must not depend on luck. *)
let test_flaky_probability_sweep () =
  List.iteri
    (fun run p ->
      let machine = Machine.create ~numa_count:2 () in
      let t = Tree.create machine ~cfg () in
      for i = 0 to 1_999 do
        Tree.insert t (ik i) (i * 3)
      done;
      let rng = Des.Rng.create ~seed:(seed_of (run + 77)) in
      Machine.crash machine (Machine.Flaky (p, rng));
      ignore (Tree.recover t);
      ignore (Tree.check_invariants t);
      for i = 0 to 1_999 do
        if Tree.lookup t (ik i) <> Some (i * 3) then
          Alcotest.failf "flaky p=%.2f: key %d lost (base seed %Ld, PACTREE_SEED replays)"
            p i base_seed
      done)
    [ 0.0; 0.1; 0.3; 0.5; 0.7; 0.9; 1.0 ]

(* Crash while deletes/merges are in flight; deleted keys must stay
   deleted once acknowledged, survivors must survive. *)
let test_crash_during_merges () =
  let machine = Machine.create ~numa_count:2 () in
  let t = Tree.create machine ~cfg () in
  for i = 0 to 2_999 do
    Tree.insert t (ik i) i
  done;
  let deleted = ref [] in
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"updater" (fun () -> Tree.updater_loop t);
  Des.Sched.spawn sched ~name:"deleter" (fun () ->
      for i = 0 to 2_999 do
        if i mod 3 <> 0 then begin
          ignore (Tree.delete t (ik i));
          deleted := i :: !deleted
        end
      done;
      Tree.request_shutdown t);
  Des.Sched.spawn sched ~name:"crasher" (fun () ->
      Des.Sched.delay 3e-4;
      Des.Sched.abort_all sched;
      Machine.crash machine Machine.Strict);
  Des.Sched.run sched;
  ignore (Tree.recover t);
  ignore (Tree.check_invariants t);
  List.iter
    (fun i ->
      if Tree.lookup t (ik i) <> None then
        Alcotest.failf "acked delete of %d resurrected" i)
    !deleted

(* Crash DURING recovery (a second power failure), then recover again. *)
let test_crash_during_recovery () =
  let machine = Machine.create ~numa_count:2 () in
  let t = Tree.create machine ~cfg () in
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"writer" (fun () ->
      for i = 0 to 1_999 do
        Tree.insert t (ik i) i
      done);
  Des.Sched.spawn sched ~name:"crasher" (fun () ->
      Des.Sched.delay 2e-4;
      Des.Sched.abort_all sched;
      Machine.crash machine Machine.Strict);
  Des.Sched.run sched;
  (* run recovery inside a sim and crash it partway *)
  let sched2 = Des.Sched.create () in
  Des.Sched.spawn sched2 ~name:"recoverer" (fun () -> ignore (Tree.recover t));
  Des.Sched.spawn sched2 ~name:"crasher" (fun () ->
      Des.Sched.delay 2e-5;
      Des.Sched.abort_all sched2;
      Machine.crash machine Machine.Strict);
  Des.Sched.run sched2;
  (* final, uninterrupted recovery *)
  ignore (Tree.recover t);
  ignore (Tree.check_invariants t);
  (* all acknowledged (completed) inserts from before the first crash
     would have been tracked by the writer; here we just require a
     consistent, writable index *)
  Tree.insert t (ik 999_983) 1;
  Alcotest.(check (option int)) "writable after double crash" (Some 1)
    (Tree.lookup t (ik 999_983))

(* Scans immediately after recovery must be sorted and complete. *)
let test_scan_after_recovery () =
  let machine = Machine.create ~numa_count:2 () in
  let t = Tree.create machine ~cfg () in
  for i = 0 to 1_999 do
    Tree.insert t (ik (i * 2)) i
  done;
  Machine.crash machine Machine.Strict;
  ignore (Tree.recover t);
  let r = Tree.scan t (ik 0) 2_000 in
  Alcotest.(check int) "all pairs" 2_000 (List.length r);
  let keys = List.map (fun (k, _) -> Key.to_int k) r in
  Alcotest.(check bool) "sorted" true (keys = List.sort compare keys)

(* The PMDK heap itself must survive arbitrary crash/recover cycles
   interleaved with allocation and free. *)
let test_heap_crash_cycles () =
  let machine = Machine.create ~numa_count:1 () in
  let heap =
    Pmalloc.Heap.create machine ~kind:Pmalloc.Heap.Pmdk ~name:"torture" ~numa_pools:1
      ~capacity:(1 lsl 20) ()
  in
  let dest = Nvm.Pool.create machine ~name:"dest" ~numa:0 ~capacity:4096 () in
  Pmalloc.Registry.register dest;
  let rng = Des.Rng.create ~seed:(seed_of 55) in
  let live = ref [] in
  for round = 0 to 19 do
    for _ = 0 to 9 do
      if Des.Rng.bool rng || !live = [] then begin
        let size = 16 + Des.Rng.int rng 200 in
        let ptr = Pmalloc.Heap.alloc_to heap ~size ~dest_pool:dest ~dest_off:0 () in
        live := ptr :: !live
      end
      else begin
        match !live with
        | p :: rest ->
            Pmalloc.Heap.free heap p;
            live := rest
        | [] -> ()
      end
    done;
    Machine.crash machine Machine.Strict;
    Pmalloc.Heap.recover heap;
    ignore round
  done;
  (* allocations still work and produce distinct blocks *)
  let a = Pmalloc.Heap.alloc heap 64 and b = Pmalloc.Heap.alloc heap 64 in
  Alcotest.(check bool) "distinct after cycles" false (Pmalloc.Pptr.equal a b)

let suite =
  [
    Alcotest.test_case "crash-time sweep" `Quick test_crash_time_sweep;
    Alcotest.test_case "flaky probability sweep" `Quick test_flaky_probability_sweep;
    Alcotest.test_case "crash during merges" `Quick test_crash_during_merges;
    Alcotest.test_case "crash during recovery" `Quick test_crash_during_recovery;
    Alcotest.test_case "scan after recovery" `Quick test_scan_after_recovery;
    Alcotest.test_case "heap crash cycles" `Quick test_heap_crash_cycles;
  ]
