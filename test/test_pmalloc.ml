(* Tests for persistent pointers and the allocators (GS1/GS2). *)

module Machine = Nvm.Machine
module Pool = Nvm.Pool
module Heap = Pmalloc.Heap
module Pptr = Pmalloc.Pptr

let make_machine () = Machine.create ~numa_count:2 ()

let make_heap ?(kind = Heap.Pmdk) ?(numa_pools = 2) machine =
  Heap.create machine ~kind ~name:"heap" ~numa_pools ~capacity:(1 lsl 20) ()

let test_pptr_pack_unpack () =
  let p = Pptr.make ~pool:123 ~off:45678 in
  Alcotest.(check int) "pool" 123 (Pptr.pool p);
  Alcotest.(check int) "off" 45678 (Pptr.off p);
  Alcotest.(check bool) "not null" false (Pptr.is_null p);
  Alcotest.(check bool) "null is null" true (Pptr.is_null Pptr.null)

let test_pptr_tag () =
  let p = Pptr.make ~pool:7 ~off:1024 in
  let tagged = Pptr.tagged p in
  Alcotest.(check bool) "tagged" true (Pptr.is_tagged tagged);
  Alcotest.(check bool) "untagged original" false (Pptr.is_tagged p);
  Alcotest.(check bool) "untag restores" true (Pptr.equal p (Pptr.untag tagged));
  Alcotest.(check int) "off ignores tag" 1024 (Pptr.off tagged)

let test_pptr_qcheck_roundtrip =
  QCheck.Test.make ~name:"pptr: pack/unpack roundtrip" ~count:1000
    QCheck.(pair (int_bound ((1 lsl 22) - 1)) (int_bound ((1 lsl 30) - 1)))
    (fun (pool, raw_off) ->
      let off = raw_off land lnot 7 in
      let p = Pptr.make ~pool ~off in
      Pptr.pool p = pool && Pptr.off p = off
      && Pptr.pool (Pptr.tagged p) = pool
      && Pptr.off (Pptr.untag (Pptr.tagged p)) = off)

(* Offsets drawn right at the 40-bit field boundary: the largest
   aligned offsets must survive the pack, and the pool id must not
   bleed into them (an off-by-one in the shift would). *)
let test_pptr_qcheck_boundary =
  QCheck.Test.make ~name:"pptr: roundtrip at the 40-bit boundary" ~count:500
    QCheck.(pair (int_bound ((1 lsl 22) - 1)) (int_bound 4095))
    (fun (pool, slack) ->
      let off = ((1 lsl 40) - 1 - slack) land lnot 7 in
      let p = Pptr.make ~pool ~off in
      Pptr.pool p = pool && Pptr.off p = off
      && Pptr.off (Pptr.untag (Pptr.tagged p)) = off
      && Pptr.pool (Pptr.tagged p) = pool)

let test_pptr_make_raises () =
  let raises pool off =
    match Pptr.make ~pool ~off with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "pool = 2^22 rejected" true (raises (1 lsl 22) 0);
  Alcotest.(check bool) "negative pool rejected" true (raises (-1) 0);
  Alcotest.(check bool) "off = 2^40 rejected" true (raises 0 (1 lsl 40));
  Alcotest.(check bool) "negative off rejected" true (raises 0 (-8));
  Alcotest.(check bool) "max legal values accepted" false
    (raises ((1 lsl 22) - 1) ((1 lsl 40) - 8))

let test_alloc_returns_distinct () =
  let m = make_machine () in
  let h = make_heap m in
  let a = Heap.alloc h ~numa:0 64 in
  let b = Heap.alloc h ~numa:0 64 in
  Alcotest.(check bool) "distinct" false (Pptr.equal a b);
  Alcotest.(check bool) "aligned 64" true (Pptr.off a mod 64 = 0);
  Alcotest.(check bool) "aligned 64" true (Pptr.off b mod 64 = 0)

let test_alloc_numa_local () =
  let m = make_machine () in
  let h = make_heap m in
  let a = Heap.alloc h ~numa:0 64 and b = Heap.alloc h ~numa:1 64 in
  Alcotest.(check int) "numa 0 pool" 0 (Nvm.Pool.numa (Heap.pool h a));
  Alcotest.(check int) "numa 1 pool" 1 (Nvm.Pool.numa (Heap.pool h b))

let test_alloc_uses_thread_numa () =
  let m = make_machine () in
  let h = make_heap m in
  let ptrs = Array.make 2 Pptr.null in
  let sched = Des.Sched.create () in
  for numa = 0 to 1 do
    Des.Sched.spawn sched ~numa ~name:(Printf.sprintf "t%d" numa) (fun () ->
        ptrs.(numa) <- Heap.alloc h 64)
  done;
  Des.Sched.run sched;
  Alcotest.(check int) "thread on numa0" 0 (Nvm.Pool.numa (Heap.pool h ptrs.(0)));
  Alcotest.(check int) "thread on numa1" 1 (Nvm.Pool.numa (Heap.pool h ptrs.(1)))

let test_free_then_reuse () =
  let m = make_machine () in
  let h = make_heap m in
  let a = Heap.alloc h ~numa:0 128 in
  Heap.free h a;
  let b = Heap.alloc h ~numa:0 128 in
  Alcotest.(check bool) "freelist reuse" true (Pptr.equal a b)

let test_free_different_classes_no_mix () =
  let m = make_machine () in
  let h = make_heap m in
  let a = Heap.alloc h ~numa:0 128 in
  Heap.free h a;
  let b = Heap.alloc h ~numa:0 4096 in
  Alcotest.(check bool) "no cross-class reuse" false (Pptr.equal a b)

let test_volatile_heap_no_nvm_traffic () =
  (* GS1: the jemalloc-like allocator does no NVM metadata writes. *)
  let m = make_machine () in
  let h = make_heap ~kind:Heap.Volatile_meta m in
  let before = Nvm.Stats.snapshot (Machine.total_stats m) in
  for _ = 1 to 100 do
    ignore (Heap.alloc h ~numa:0 64)
  done;
  let d = Nvm.Stats.diff (Machine.total_stats m) before in
  Alcotest.(check int) "no flushes" 0 d.Nvm.Stats.flushes;
  Alcotest.(check int) "no fences" 0 d.Nvm.Stats.fences

let test_pmdk_heap_flushes () =
  let m = make_machine () in
  let h = make_heap ~kind:Heap.Pmdk m in
  let before = Nvm.Stats.snapshot (Machine.total_stats m) in
  let a = Heap.alloc h ~numa:0 64 in
  Heap.free h a;
  let d = Nvm.Stats.diff (Machine.total_stats m) before in
  (* The paper quotes ~6 flushes per alloc/free pair for PMDK. *)
  Alcotest.(check bool)
    (Printf.sprintf "several flushes per alloc/free pair (%d)" d.Nvm.Stats.flushes)
    true
    (d.Nvm.Stats.flushes >= 5);
  Alcotest.(check bool) "several fences" true (d.Nvm.Stats.fences >= 5)

let test_pmdk_slower_than_volatile () =
  let time kind =
    let m = make_machine () in
    let h = make_heap ~kind m in
    let sched = Des.Sched.create () in
    Des.Sched.spawn sched ~name:"alloc" (fun () ->
        for _ = 1 to 200 do
          ignore (Heap.alloc h 64)
        done);
    Des.Sched.run sched;
    Des.Sched.now sched
  in
  let pmdk = time Heap.Pmdk and volatile = time Heap.Volatile_meta in
  Alcotest.(check bool)
    (Printf.sprintf "pmdk (%.2e) much slower than jemalloc-like (%.2e)" pmdk volatile)
    true
    (pmdk > volatile *. 2.0)

let test_alloc_to_publishes_dest () =
  let m = make_machine () in
  let h = make_heap m in
  let dest = Pool.create m ~name:"dest" ~numa:0 ~capacity:4096 () in
  let ptr = Heap.alloc_to h ~numa:0 ~size:64 ~dest_pool:dest ~dest_off:128 () in
  Alcotest.(check bool) "dest holds pointer" true (Pool.read_int dest 128 = ptr);
  (* and it is already persistent: *)
  Machine.crash m Machine.Strict;
  Alcotest.(check bool) "dest persisted" true (Pool.read_int dest 128 = ptr)

let test_alloc_to_no_leak_on_crash () =
  (* Interrupt an allocation before its commit by crashing right after
     create; recovery must roll the bump pointer back. *)
  let m = make_machine () in
  let h = make_heap ~numa_pools:1 m in
  let dest = Pool.create m ~name:"dest" ~numa:0 ~capacity:4096 () in
  let p0 = Heap.pool_by_numa h 0 in
  let remaining_before = Heap.remaining h ~numa:0 in
  ignore p0;
  (* Simulate a crash in the middle of alloc_to: do the allocation,
     then crash *without* the dest write having persisted.  We emulate
     by crashing Strict right after a plain alloc (the commit record
     persists before return, so instead we check the invariant
     differently: a completed alloc_to survives, an uncommitted alloc
     is rolled back by recover).  Here: completed case. *)
  let ptr = Heap.alloc_to h ~size:64 ~dest_pool:dest ~dest_off:0 () in
  Machine.crash m Machine.Strict;
  Heap.recover h;
  Alcotest.(check bool) "completed alloc kept" true (Pool.read_int dest 0 = ptr);
  let remaining_after = Heap.remaining h ~numa:0 in
  Alcotest.(check bool) "space consumed" true (remaining_after < remaining_before)

let test_recover_rolls_back_torn_alloc () =
  (* Manually fabricate a torn allocation: persist an active log entry
     with a moved bump pointer, as if we crashed between step 1 and
     the commit, with no dest write. *)
  let m = make_machine () in
  let h = make_heap ~numa_pools:1 m in
  let p = Heap.pool_by_numa h 0 in
  let bump_before = Pool.read_int p 8 in
  (* Log entry: state=bump-alloc(1), class=4 (size 64), block, old. *)
  let block_off = bump_before + 64 in
  Pool.write_int p (64 + 8) 4;
  Pool.write_int p (64 + 16) (Pptr.make ~pool:(Pool.id p) ~off:block_off);
  Pool.write_int p (64 + 24) bump_before;
  Pool.write_int p (64 + 32) 0;
  Pool.write_int p 64 1;
  Pool.persist p 64 64;
  Pool.write_int p 8 (block_off + 64);
  Pool.persist p 8 8;
  Machine.crash m Machine.Strict;
  Heap.recover h;
  Alcotest.(check int) "bump rolled back" bump_before (Pool.read_int p 8);
  Alcotest.(check int) "log cleared" 0 (Pool.read_int p 64)

let test_volatile_recover_resets () =
  let m = make_machine () in
  let h = make_heap ~kind:Heap.Volatile_meta ~numa_pools:1 m in
  let a = Heap.alloc h ~numa:0 64 in
  Machine.crash m Machine.Strict;
  Heap.recover h;
  let b = Heap.alloc h ~numa:0 64 in
  (* Reset heap hands out the same space again: metadata was lost. *)
  Alcotest.(check bool) "metadata lost" true (Pptr.equal a b)

let test_stats_counting () =
  let m = make_machine () in
  let h = make_heap m in
  let a = Heap.alloc h ~numa:0 64 in
  ignore (Heap.alloc h ~numa:0 100);
  Heap.free h a;
  let s = Heap.stats h in
  Alcotest.(check int) "allocs" 2 s.Heap.allocs;
  Alcotest.(check int) "frees" 1 s.Heap.frees;
  Alcotest.(check int) "bytes rounded to classes" (64 + 128) s.Heap.alloc_bytes

let test_alloc_size_limit () =
  let m = make_machine () in
  let h = make_heap m in
  Alcotest.check_raises "too large"
    (Invalid_argument "Heap.alloc: size 100000 too large") (fun () ->
      ignore (Heap.alloc h 100000))

let test_concurrent_allocs_distinct =
  QCheck.Test.make ~name:"heap: concurrent allocations are distinct" ~count:20
    QCheck.(int_range 2 12)
    (fun threads ->
      let m = make_machine () in
      let h = make_heap ~numa_pools:1 m in
      let results = Array.make threads [] in
      let sched = Des.Sched.create () in
      for t = 0 to threads - 1 do
        Des.Sched.spawn sched ~name:(Printf.sprintf "t%d" t) (fun () ->
            for _ = 1 to 10 do
              results.(t) <- Heap.alloc h 64 :: results.(t)
            done)
      done;
      Des.Sched.run sched;
      let all = Array.to_list results |> List.concat in
      let uniq = List.sort_uniq compare all in
      List.length uniq = List.length all)

let suite =
  [
    Alcotest.test_case "pptr: pack/unpack" `Quick test_pptr_pack_unpack;
    Alcotest.test_case "pptr: tagging" `Quick test_pptr_tag;
    QCheck_alcotest.to_alcotest test_pptr_qcheck_roundtrip;
    QCheck_alcotest.to_alcotest test_pptr_qcheck_boundary;
    Alcotest.test_case "pptr: make rejects out-of-range" `Quick test_pptr_make_raises;
    Alcotest.test_case "heap: distinct allocations" `Quick test_alloc_returns_distinct;
    Alcotest.test_case "heap: NUMA-local pools (GS2)" `Quick test_alloc_numa_local;
    Alcotest.test_case "heap: thread NUMA default" `Quick test_alloc_uses_thread_numa;
    Alcotest.test_case "heap: free then reuse" `Quick test_free_then_reuse;
    Alcotest.test_case "heap: classes are segregated" `Quick
      test_free_different_classes_no_mix;
    Alcotest.test_case "heap: volatile kind does no NVM writes" `Quick
      test_volatile_heap_no_nvm_traffic;
    Alcotest.test_case "heap: pmdk kind flushes (GS1)" `Quick test_pmdk_heap_flushes;
    Alcotest.test_case "heap: pmdk slower than volatile (GS1)" `Quick
      test_pmdk_slower_than_volatile;
    Alcotest.test_case "heap: alloc_to publishes dest" `Quick test_alloc_to_publishes_dest;
    Alcotest.test_case "heap: alloc_to survives crash" `Quick test_alloc_to_no_leak_on_crash;
    Alcotest.test_case "heap: recovery rolls back torn alloc" `Quick
      test_recover_rolls_back_torn_alloc;
    Alcotest.test_case "heap: volatile recovery resets" `Quick test_volatile_recover_resets;
    Alcotest.test_case "heap: stats counting" `Quick test_stats_counting;
    Alcotest.test_case "heap: size limit" `Quick test_alloc_size_limit;
    QCheck_alcotest.to_alcotest test_concurrent_allocs_distinct;
  ]
