(* Systematic crash-state model checking (lib/crashmc) as a test
   suite: small bounded sweeps per index so the whole thing stays
   inside tier-1 runtime, plus a mutation check proving the oracle has
   teeth (a dropped clwb must be caught). *)

module Harness = Crashmc.Harness
module Sut = Crashmc.Sut
module Oracle = Crashmc.Oracle
module Key = Pactree.Key

let seed () = Int64.to_int (Des.Rng.env_seed ~default:1L)

let check_clean kind ~ops ~budget ~max_states =
  let sut = Sut.make kind in
  let r =
    Harness.run ~budget_per_point:budget ~max_states ~seed:(seed ()) ~sut ~ops ()
  in
  if not (Harness.ok r) then
    Alcotest.failf "%a@.seed %d (override with PACTREE_SEED)" Harness.pp_report r
      (seed ())

(* Mixed insert/delete trace on every index. *)
let test_mixed () =
  List.iter
    (fun kind ->
      check_clean kind
        ~ops:(Harness.mixed_workload ~seed:(seed ()) 32)
        ~budget:24 ~max_states:4_000)
    Sut.all

(* Split-heavy monotone inserts: exercises FastFair node splits,
   FPTree leaf splits + micro-log, PACTree data-node SMOs. *)
let test_splits () =
  List.iter
    (fun kind ->
      check_clean kind ~ops:(Harness.insert_workload 72) ~budget:16
        ~max_states:4_000)
    [ Sut.Pactree; Sut.Fastfair; Sut.Fptree ]

(* Teeth: injecting a dropped clwb into the recorded run must produce
   at least one durable-linearizability violation across a small
   mutant family.  If every mutant survives, the checker is
   vacuous. *)
let test_mutation_teeth kind () =
  let killed = ref 0 in
  List.iter
    (fun k ->
      if !killed = 0 then begin
        let sut = Sut.make kind in
        Nvm.Machine.set_flush_fault (Sut.machine sut) (Some k);
        let r =
          Harness.run ~budget_per_point:24 ~max_states:4_000 ~max_violations:1
            ~seed:(seed ()) ~sut
            ~ops:(Harness.mixed_workload ~seed:(seed ()) 32)
            ()
        in
        if not (Harness.ok r) then incr killed
      end)
    [ 1; 3; 9; 27; 81; 243 ];
  if !killed = 0 then
    Alcotest.failf "no dropped-clwb mutant caught on %s — checker has no teeth (seed %d)"
      (Sut.name kind) (seed ())

(* The in-flight window accepts exactly the in-order prefixes of the
   interrupted batch, jointly across keys: a state where a later batch
   member applied without an earlier one (replay skipping a hole) must
   be rejected even though each key's value is individually
   reachable. *)
let test_oracle_prefix_only () =
  let ka = Key.of_int 1 and kb = Key.of_int 2 and kc = Key.of_int 3 in
  let history =
    [
      (* completed before the crash window: decided *)
      { Oracle.op = Oracle.Insert (kc, 7); start_seq = 0; end_seq = 1 };
      (* a two-op batch sharing one trace window, in flight at [at=2] *)
      { Oracle.op = Oracle.Insert (ka, 1); start_seq = 1; end_seq = 3 };
      { Oracle.op = Oracle.Insert (kb, 2); start_seq = 1; end_seq = 3 };
    ]
  in
  let violations state =
    let state = List.sort (fun (a, _) (b, _) -> Key.compare a b) state in
    Oracle.check ~history ~at:2
      ~lookup:(fun k ->
        Option.map snd (List.find_opt (fun (k', _) -> Key.equal k k') state))
      ~scan:(fun k n ->
        List.filteri
          (fun i _ -> i < n)
          (List.filter (fun (k', _) -> Key.compare k' k >= 0) state))
      ~invariants:(fun () -> ())
  in
  List.iter
    (fun (label, state) ->
      Alcotest.(check (list string)) label [] (violations state))
    [
      ("prefix 0 accepted", [ (kc, 7) ]);
      ("prefix 1 accepted", [ (kc, 7); (ka, 1) ]);
      ("prefix 2 accepted", [ (kc, 7); (ka, 1); (kb, 2) ]);
    ];
  List.iter
    (fun (label, state) ->
      Alcotest.(check bool) label true (violations state <> []))
    [
      ("hole-skipping state rejected", [ (kc, 7); (kb, 2) ]);
      ("decided op lost rejected", [ (ka, 1); (kb, 2) ]);
      ("unreachable value rejected", [ (kc, 7); (ka, 99) ]);
    ]

let suite =
  [
    Alcotest.test_case "oracle: joint in-order-prefix check" `Quick
      test_oracle_prefix_only;
    Alcotest.test_case "mixed trace, all indexes" `Quick test_mixed;
    Alcotest.test_case "split-heavy trace" `Quick test_splits;
    Alcotest.test_case "mutation teeth (fastfair)" `Quick
      (test_mutation_teeth Sut.Fastfair);
    Alcotest.test_case "mutation teeth (pactree)" `Quick
      (test_mutation_teeth Sut.Pactree);
  ]
