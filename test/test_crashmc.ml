(* Systematic crash-state model checking (lib/crashmc) as a test
   suite: small bounded sweeps per index so the whole thing stays
   inside tier-1 runtime, plus a mutation check proving the oracle has
   teeth (a dropped clwb must be caught). *)

module Harness = Crashmc.Harness
module Sut = Crashmc.Sut

let seed () = Int64.to_int (Des.Rng.env_seed ~default:1L)

let check_clean kind ~ops ~budget ~max_states =
  let sut = Sut.make kind in
  let r =
    Harness.run ~budget_per_point:budget ~max_states ~seed:(seed ()) ~sut ~ops ()
  in
  if not (Harness.ok r) then
    Alcotest.failf "%a@.seed %d (override with PACTREE_SEED)" Harness.pp_report r
      (seed ())

(* Mixed insert/delete trace on every index. *)
let test_mixed () =
  List.iter
    (fun kind ->
      check_clean kind
        ~ops:(Harness.mixed_workload ~seed:(seed ()) 32)
        ~budget:24 ~max_states:4_000)
    Sut.all

(* Split-heavy monotone inserts: exercises FastFair node splits,
   FPTree leaf splits + micro-log, PACTree data-node SMOs. *)
let test_splits () =
  List.iter
    (fun kind ->
      check_clean kind ~ops:(Harness.insert_workload 72) ~budget:16
        ~max_states:4_000)
    [ Sut.Pactree; Sut.Fastfair; Sut.Fptree ]

(* Teeth: injecting a dropped clwb into the recorded run must produce
   at least one durable-linearizability violation across a small
   mutant family.  If every mutant survives, the checker is
   vacuous. *)
let test_mutation_teeth kind () =
  let killed = ref 0 in
  List.iter
    (fun k ->
      if !killed = 0 then begin
        let sut = Sut.make kind in
        Nvm.Machine.set_flush_fault (Sut.machine sut) (Some k);
        let r =
          Harness.run ~budget_per_point:24 ~max_states:4_000 ~max_violations:1
            ~seed:(seed ()) ~sut
            ~ops:(Harness.mixed_workload ~seed:(seed ()) 32)
            ()
        in
        if not (Harness.ok r) then incr killed
      end)
    [ 1; 3; 9; 27; 81; 243 ];
  if !killed = 0 then
    Alcotest.failf "no dropped-clwb mutant caught on %s — checker has no teeth (seed %d)"
      (Sut.name kind) (seed ())

let suite =
  [
    Alcotest.test_case "mixed trace, all indexes" `Quick test_mixed;
    Alcotest.test_case "split-heavy trace" `Quick test_splits;
    Alcotest.test_case "mutation teeth (fastfair)" `Quick
      (test_mutation_teeth Sut.Fastfair);
    Alcotest.test_case "mutation teeth (pactree)" `Quick
      (test_mutation_teeth Sut.Pactree);
  ]
