let () =
  Alcotest.run "pactree"
    [
      ("des", Test_des.suite);
      ("nvm", Test_nvm.suite);
      ("pmalloc", Test_pmalloc.suite);
      ("pobj", Test_pobj.suite);
      ("art", Test_art.suite);
      ("pdlart_props", Test_pdlart_props.suite);
      ("data_node", Test_data_node.suite);
      ("crash_torture", Test_crash_torture.suite);
      ("crashmc", Test_crashmc.suite);
      ("eadr", Test_eadr.suite);
      ("tree", Test_tree.suite);
      ("baselines", Test_baselines.suite);
      ("workload", Test_workload.suite);
      ("svc", Test_svc.suite);
      ("obs", Test_obs.suite);
    ]
