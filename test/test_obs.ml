(* Tests for lib/obs: metrics registry, span attribution under the
   DES, the time-series sampler and the BENCH report schema. *)

module Json = Obs.Json
module Metrics = Obs.Metrics
module Span = Obs.Span
module Sampler = Obs.Sampler
module Report = Obs.Report

let feq msg ?(eps = 1e-9) expected got =
  if Float.abs (expected -. got) > eps then
    Alcotest.failf "%s: expected %g, got %g" msg expected got

(* ---------- json ---------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a \"quoted\"\nline");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5e-3);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Obj [ ("x", Json.Float 0.25) ] ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok v' -> Alcotest.(check bool) "round trip" true (v = v')

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ "{"; "{\"a\":}"; "[1,]"; "nul"; "\"unterminated"; "{\"a\":1} trailing" ]

(* ---------- metrics ---------- *)

let test_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "ops" in
  Metrics.inc c;
  Metrics.add c 9;
  Metrics.set (Metrics.gauge m "bw") 3.5;
  Alcotest.(check int) "counter" 10 (Metrics.counter_value m "ops");
  feq "gauge" 3.5 (Metrics.gauge_value m "bw");
  (* handles are get-or-create: same name, same cell *)
  Metrics.inc (Metrics.counter m "ops");
  Alcotest.(check int) "shared cell" 11 (Metrics.counter_value m "ops")

let test_snapshot_diff_merge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "n" in
  let h = Metrics.histogram m "lat" in
  Metrics.add c 5;
  List.iter (Metrics.observe h) [ 1.0; 2.0; 4.0 ];
  let before = Metrics.snapshot m in
  Metrics.add c 7;
  List.iter (Metrics.observe h) [ 8.0; 16.0 ];
  let d = Metrics.diff m before in
  Alcotest.(check int) "diffed counter" 7 (Metrics.counter_value d "n");
  (match Metrics.find_histogram d "lat" with
  | None -> Alcotest.fail "diffed histogram missing"
  | Some dh -> Alcotest.(check int) "diffed hist count" 2 (Metrics.hist_count dh));
  (* before + diff = after, bucket-wise *)
  Metrics.merge ~dst:before ~src:d;
  Alcotest.(check int) "merged counter" 12 (Metrics.counter_value before "n");
  match (Metrics.find_histogram before "lat", Metrics.find_histogram m "lat") with
  | Some a, Some b ->
      Alcotest.(check int) "merged count" (Metrics.hist_count b) (Metrics.hist_count a);
      feq "merged p50" (Metrics.hist_percentile b 50.0) (Metrics.hist_percentile a 50.0);
      feq "merged sum" (Metrics.hist_sum b) (Metrics.hist_sum a)
  | _ -> Alcotest.fail "merged histogram missing"

let test_histogram_accuracy () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "v" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Metrics.hist_count h);
  feq "max" 1000.0 (Metrics.hist_max h);
  (* log-bucketed: within the geometric resolution of the true value *)
  let p50 = Metrics.hist_percentile h 50.0 in
  if p50 < 450.0 || p50 > 550.0 then Alcotest.failf "p50 %g too far from 500" p50;
  feq "empty percentile" 0.0 (Metrics.hist_percentile (Metrics.histogram m "none") 99.0);
  match Metrics.hist_percentile h 101.0 with
  | exception Invalid_argument _ -> ()
  | v -> Alcotest.failf "percentile 101 accepted: %g" v

let test_percentile_monotone =
  QCheck.Test.make ~name:"obs: histogram percentiles are monotone" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) pos_float)
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (values, (p, q)) ->
      QCheck.assume (List.for_all (fun v -> Float.is_finite v) values);
      let m = Metrics.create () in
      let h = Metrics.histogram m "x" in
      List.iter (Metrics.observe h) values;
      let p, q = if p <= q then (p, q) else (q, p) in
      Metrics.hist_percentile h p <= Metrics.hist_percentile h q)

(* ---------- spans under the DES ---------- *)

let test_span_nesting () =
  let span = Span.create () in
  Span.install span;
  Fun.protect ~finally:(fun () -> Span.uninstall span) @@ fun () ->
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"t" (fun () ->
      Span.with_phase Span.Smo (fun () ->
          Des.Sched.delay 10e-6;
          Span.with_phase Span.Alloc (fun () -> Des.Sched.delay 5e-6));
      (* costs accumulated via charge (no context switch) must also
         be seen by the span clock *)
      Span.with_phase Span.Trie_search (fun () -> Des.Sched.charge 3e-6);
      Des.Sched.delay 0.0);
  Des.Sched.run sched;
  let self phase =
    let row = List.find (fun r -> r.Span.r_phase = phase) (Span.rows span) in
    row.Span.r_seconds
  in
  feq "smo self excludes child" 10e-6 (self Span.Smo);
  feq "alloc child" 5e-6 (self Span.Alloc);
  feq "charged time attributed" 3e-6 (self Span.Trie_search);
  feq "attributed total" 18e-6 (Span.attributed_seconds span);
  let pct_sum = List.fold_left (fun a (_, p) -> a +. p) 0.0 (Span.percentages span) in
  feq "percentages sum to 100" ~eps:1e-6 100.0 pct_sum;
  let folded = Span.collapsed span in
  feq "collapsed root" 10e-6 (List.assoc "smo" folded);
  feq "collapsed nested path" 5e-6 (List.assoc "smo;alloc" folded)

let test_span_uninstalled_noop () =
  (* no recorder: with_phase must still run the thunk, nothing recorded *)
  let r = Span.with_phase Span.Smo (fun () -> 7) in
  Alcotest.(check int) "thunk result" 7 r;
  let span = Span.create () in
  feq "nothing attributed" 0.0 (Span.attributed_seconds span);
  let pct_sum = List.fold_left (fun a (_, p) -> a +. p) 0.0 (Span.percentages span) in
  feq "all-zero percentages when empty" 0.0 pct_sum

let test_span_exception_safe () =
  let span = Span.create () in
  Span.install span;
  Fun.protect ~finally:(fun () -> Span.uninstall span) @@ fun () ->
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"t" (fun () ->
      (try Span.with_phase Span.Smo (fun () -> Des.Sched.delay 2e-6; failwith "boom")
       with Failure _ -> ());
      (* the stack must have been popped: this lands at the root *)
      Span.with_phase Span.Alloc (fun () -> Des.Sched.delay 1e-6));
  Des.Sched.run sched;
  let folded = Span.collapsed span in
  Alcotest.(check bool) "alloc is a root span" true (List.mem_assoc "alloc" folded);
  Alcotest.(check bool) "no smo;alloc path" false (List.mem_assoc "smo;alloc" folded)

(* ---------- sampler ---------- *)

let test_sampler_series () =
  let machine = Nvm.Machine.create ~numa_count:1 () in
  let pool = Nvm.Pool.create machine ~name:"s" ~numa:0 ~capacity:(1 lsl 20) () in
  let sampler = Sampler.create ~machine ~interval:10e-6 () in
  let sched = Des.Sched.create () in
  Sampler.spawn sampler sched;
  Des.Sched.spawn sched ~name:"w" (fun () ->
      for i = 0 to 99 do
        Nvm.Pool.write_int pool (i * 64) i;
        Nvm.Pool.persist pool (i * 64) 8 (* clwb + drain: reaches media *);
        Des.Sched.delay 1e-6
      done;
      Sampler.stop sampler);
  Des.Sched.run sched;
  let n = List.length (Sampler.samples sampler) in
  Alcotest.(check bool) (Printf.sprintf "several samples (%d)" n) true (n > 5);
  let rates = Sampler.rates sampler in
  Alcotest.(check bool) "rates nonempty" true (rates <> []);
  Alcotest.(check bool) "some write bandwidth seen" true
    (List.exists (fun r -> r.Sampler.write_mbps > 0.0) rates);
  let csv = Sampler.csv sampler in
  Alcotest.(check bool) "csv has header" true
    (String.length csv > String.length Sampler.csv_header
    && String.sub csv 0 (String.length Sampler.csv_header) = Sampler.csv_header)

(* ---------- report schema ---------- *)

let sample_entry =
  {
    Report.e_index = "PACTree";
    e_mix = "W-A";
    e_threads = 8;
    e_keys = 1000;
    e_ops = 1000;
    e_elapsed_s = 0.01;
    e_throughput_mops = 0.1;
    e_p50_us = 1.0;
    e_p99_us = 2.0;
    e_p9999_us = 3.0;
    e_mean_us = 1.2;
    e_max_us = 4.0;
    e_phase_pct =
      (let share = 100.0 /. float_of_int (List.length Span.all_phases) in
       List.map (fun p -> (Span.phase_name p, share)) Span.all_phases);
    e_phase_us = List.map (fun p -> (Span.phase_name p, 10.0)) Span.all_phases;
    e_flushes_per_op = 2.0;
    e_flushes_elided_per_op = 0.5;
    e_fences_per_op = 1.0;
    e_media_read_bytes_per_op = 100.0;
    e_media_write_bytes_per_op = 50.0;
    e_read_amplification = 2.0;
    e_write_amplification = 3.0;
  }

let sample_report entries =
  Report.to_json ~keys:1000 ~ops:1000 ~threads:8 ~mix:"W-A" ~entries

let test_report_validates () =
  (match Report.validate (sample_report [ sample_entry ]) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "valid report rejected: %s" msg);
  (* survives a disk round trip *)
  let path = Filename.temp_file "bench" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Report.write_file path (sample_report [ sample_entry ]);
  match Report.validate_file path with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "file round trip rejected: %s" msg

let test_report_rejects_malformed () =
  let expect_error what json =
    match Report.validate json with
    | Ok () -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  expect_error "empty results" (sample_report []);
  expect_error "wrong schema"
    (Json.Obj [ ("schema", Json.String "nope/v0") ]);
  expect_error "phase_pct not summing to 100"
    (sample_report
       [
         {
           sample_entry with
           Report.e_phase_pct =
             List.map (fun p -> (Span.phase_name p, 5.0)) Span.all_phases;
         };
       ]);
  expect_error "non-monotone latency"
    (sample_report [ { sample_entry with Report.e_p99_us = 0.5 } ]);
  expect_error "negative per-op cost"
    (sample_report [ { sample_entry with Report.e_flushes_per_op = -1.0 } ])

(* ---------- end to end: a PACTree run has phases ---------- *)

let test_pactree_run_attributes_phases () =
  let scale = Experiments.Scale.tiny in
  let entry, obs =
    Experiments.Obs_run.bench_entry ~scale ~mix:Workload.Ycsb.Load_a ~threads:4
      Experiments.Factory.Pactree_sys
  in
  let pct name = List.assoc name entry.Report.e_phase_pct in
  Alcotest.(check bool) "trie_search time nonzero" true (pct "trie_search" > 0.0);
  Alcotest.(check bool) "smo time nonzero" true (pct "smo" > 0.0);
  let sum = List.fold_left (fun a (_, p) -> a +. p) 0.0 entry.Report.e_phase_pct in
  feq "phase percentages sum to 100" ~eps:0.5 100.0 sum;
  Alcotest.(check bool) "flushes per op nonzero" true
    (entry.Report.e_flushes_per_op > 0.0);
  (* the span recorder also attributed NVM traffic somewhere *)
  let traffic =
    List.exists
      (fun r -> not (Nvm.Stats.is_zero r.Span.r_nvm))
      (Span.rows obs.Obs.Recorder.span)
  in
  Alcotest.(check bool) "NVM traffic attributed to phases" true traffic;
  (* and the whole report validates *)
  match
    Report.validate
      (Report.to_json ~keys:scale.Experiments.Scale.keys
         ~ops:scale.Experiments.Scale.ops ~threads:4 ~mix:"load-a"
         ~entries:[ entry ])
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "end-to-end report invalid: %s" msg

(* ---------- satellite: latency + stats accessors ---------- *)

let test_latency_accessors () =
  let rng = Des.Rng.create ~seed:7L in
  let l = Workload.Latency.create ~sample_rate:1.0 rng in
  feq "empty percentile" 0.0 (Workload.Latency.percentile l 99.0);
  feq "empty mean" 0.0 (Workload.Latency.mean l);
  feq "empty max" 0.0 (Workload.Latency.max l);
  List.iter (Workload.Latency.record l) [ 3.0; 1.0; 2.0 ];
  feq "mean" 2.0 (Workload.Latency.mean l);
  feq "max" 3.0 (Workload.Latency.max l);
  feq "p0 after sort" 1.0 (Workload.Latency.percentile l 0.0);
  match Workload.Latency.percentile l 120.0 with
  | exception Invalid_argument _ -> ()
  | v -> Alcotest.failf "percentile 120 accepted: %g" v

let test_stats_is_zero_and_amplification () =
  let s = Nvm.Stats.create () in
  Alcotest.(check bool) "fresh stats are zero" true (Nvm.Stats.is_zero s);
  s.Nvm.Stats.media_read_bytes <- 256;
  Alcotest.(check bool) "traffic breaks is_zero" false (Nvm.Stats.is_zero s);
  feq "no logical reads: amplification 0" 0.0 (Nvm.Stats.read_amplification s);
  s.Nvm.Stats.logical_read_bytes <- 64;
  feq "read amplification" 4.0 (Nvm.Stats.read_amplification s)

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
    Alcotest.test_case "snapshot/diff/merge" `Quick test_snapshot_diff_merge;
    Alcotest.test_case "histogram accuracy" `Quick test_histogram_accuracy;
    QCheck_alcotest.to_alcotest test_percentile_monotone;
    Alcotest.test_case "span nesting + charge" `Quick test_span_nesting;
    Alcotest.test_case "span no-op when uninstalled" `Quick test_span_uninstalled_noop;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safe;
    Alcotest.test_case "sampler time series" `Quick test_sampler_series;
    Alcotest.test_case "report schema validates" `Quick test_report_validates;
    Alcotest.test_case "report rejects malformed" `Quick test_report_rejects_malformed;
    Alcotest.test_case "pactree run attributes phases" `Quick
      test_pactree_run_attributes_phases;
    Alcotest.test_case "latency accessors" `Quick test_latency_accessors;
    Alcotest.test_case "stats is_zero + amplification" `Quick
      test_stats_is_zero_and_amplification;
  ]
