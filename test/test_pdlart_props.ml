(* Property suite for PDL-ART's ordered-search primitives: lookup_le
   (the anchor-routing predecessor query PACTree's search layer leans
   on) and ordered iteration, both checked against a sorted-map oracle
   over random key sets with interleaved deletes. *)

module Machine = Nvm.Machine
module Pool = Nvm.Pool
module Heap = Pmalloc.Heap
module Pptr = Pmalloc.Pptr
module Key = Pactree.Key
module Art = Pactree.Art

module Imap = Map.Make (Int)

type ctx = { art : Art.t; kv_heap : Heap.t; kv_keys : (int, string) Hashtbl.t }

let make_art () =
  let machine = Machine.create ~numa_count:1 () in
  let heap =
    Heap.create machine ~kind:Heap.Pmdk ~name:"art" ~numa_pools:1 ~capacity:(1 lsl 22) ()
  in
  let kv_heap =
    Heap.create machine ~kind:Heap.Pmdk ~name:"kv" ~numa_pools:1 ~capacity:(1 lsl 22) ()
  in
  let meta = Pool.create machine ~name:"meta" ~numa:0 ~capacity:(Art.meta_size + 4096) () in
  Pmalloc.Registry.register meta;
  let kv_keys = Hashtbl.create 256 in
  let key_of_leaf ptr =
    match Hashtbl.find_opt kv_keys (Pptr.off ptr) with
    | Some k -> k
    | None -> Alcotest.fail "unknown leaf payload"
  in
  let epoch = Pactree.Epoch.create () in
  let art = Art.create ~heap ~meta ~epoch ~key_of_leaf in
  { art; kv_heap; kv_keys }

let insert_key ctx k =
  let rkey = Key.to_radix (Key.of_int k) in
  let ptr = Heap.alloc ctx.kv_heap ~numa:0 64 in
  Hashtbl.replace ctx.kv_keys (Pptr.off ptr) rkey;
  ignore (Art.insert ctx.art rkey ptr : Art.insert_outcome);
  ptr

let key_of ctx p = Key.to_int (Key.of_radix (Hashtbl.find ctx.kv_keys (Pptr.off p)))

(* Replay random (key, insert?) ops against both the trie and an int
   map; return the context and the surviving model. *)
let build ops =
  let ctx = make_art () in
  let model =
    List.fold_left
      (fun model (k, ins) ->
        if ins then Imap.add k (insert_key ctx k) model
        else begin
          ignore (Art.delete ctx.art (Key.to_radix (Key.of_int k)));
          Imap.remove k model
        end)
      Imap.empty ops
  in
  (ctx, model)

let ops_gen = QCheck.(list_of_size Gen.(int_range 1 120) (pair (int_bound 400) bool))

(* lookup_le = the model's floor query, at every interesting probe
   point: each live key, its two neighbours, and the extremes. *)
let test_lookup_le_floor =
  QCheck.Test.make ~name:"pdlart: lookup_le agrees with map floor" ~count:60 ops_gen
    (fun ops ->
      let ctx, model = build ops in
      let probes =
        0 :: 401
        :: Imap.fold (fun k _ acc -> (k - 1) :: k :: (k + 1) :: acc) model []
      in
      List.for_all
        (fun q ->
          if q < 0 then true
          else
            let expect = Option.map fst (Imap.find_last_opt (fun k -> k <= q) model) in
            let got =
              Option.map (key_of ctx)
                (Art.lookup_le ctx.art (Key.to_radix (Key.of_int q)))
            in
            got = expect)
        probes)

(* Ordered iteration from an arbitrary start key yields exactly the
   model's sorted tail. *)
let test_iter_sorted_tail =
  QCheck.Test.make ~name:"pdlart: iteration is the sorted tail" ~count:60
    QCheck.(pair ops_gen (int_bound 400))
    (fun (ops, start) ->
      let ctx, model = build ops in
      let collected = ref [] in
      Art.iter_from ctx.art (Key.to_radix (Key.of_int start)) (fun p ->
          collected := key_of ctx p :: !collected;
          true);
      let got = List.rev !collected in
      let expect =
        Imap.fold (fun k _ acc -> if k >= start then k :: acc else acc) model []
        |> List.rev
      in
      got = expect)

let suite =
  [
    QCheck_alcotest.to_alcotest test_lookup_le_floor;
    QCheck_alcotest.to_alcotest test_iter_sorted_tail;
  ]
