(* Tests for the sharded KV service layer (lib/svc): routing and
   cross-shard scans against a single-map oracle, group-commit
   durability (fence accounting, ring wrap, crash + replay),
   determinism of both the closed-loop runner and the open-loop
   engine, saturation-sweep shape, and crashmc sweeps driven through
   the store — including batched commits where a crash mid-batch may
   lose only the unacked tail. *)

module Key = Pactree.Key
module Store = Svc.Store
module Engine = Svc.Engine
module Index = Baselines.Index_intf
module Kmap = Map.Make (struct
  type t = Key.t

  let compare = Key.compare
end)

let fastfair_backend machine ~capacity () : Store.backend =
  let t = Baselines.Fastfair.create machine ~capacity () in
  {
    Store.b_index = Index.Index ((module Baselines.Fastfair.Index), t);
    b_recover = (fun () -> Baselines.Fastfair.recover t);
    b_invariants = (fun () -> ignore (Baselines.Fastfair.check_invariants t : int));
    b_quiesce = ignore;
    b_service = None;
  }

(* [span]-keyspace store with equi-spaced boundaries. *)
let make_store ?(numa = 2) ?(shards = 3) ?(span = 1000) ?(log_entries = 64)
    ?(capacity = 1 lsl 18) () =
  let machine = Nvm.Machine.create ~numa_count:numa () in
  let boundaries =
    Array.init (shards - 1) (fun i -> Key.of_int ((i + 1) * span / shards))
  in
  Store.create ~machine ~boundaries
    ~make_backend:(fun ~shard:_ ~numa:_ -> fastfair_backend machine ~capacity ())
    ~log_entries ()

(* ---------- routing + direct ops vs a map oracle ---------- *)

let test_store_ops_vs_oracle () =
  let store = make_store () in
  let rng = Des.Rng.create ~seed:11L in
  let model = ref Kmap.empty in
  for _ = 1 to 800 do
    let k = Key.of_int (Des.Rng.int rng 1000) in
    match Des.Rng.int rng 4 with
    | 0 ->
        let v = Des.Rng.int rng 1_000_000 in
        Store.insert store k v;
        model := Kmap.add k v !model
    | 1 ->
        let v = Des.Rng.int rng 1_000_000 in
        let updated = Store.update store k v in
        Alcotest.(check bool) "update hit agrees" (Kmap.mem k !model) updated;
        if updated then model := Kmap.add k v !model
    | 2 ->
        let deleted = Store.delete store k in
        Alcotest.(check bool) "delete hit agrees" (Kmap.mem k !model) deleted;
        model := Kmap.remove k !model
    | _ ->
        Alcotest.(check (option int))
          "lookup agrees" (Kmap.find_opt k !model) (Store.lookup store k)
  done;
  Kmap.iter
    (fun k v ->
      Alcotest.(check (option int))
        "surviving binding" (Some v) (Store.lookup store k))
    !model;
  (* routing actually spread the keys: every shard owns part of the map *)
  let per_shard = Array.make (Store.shard_count store) 0 in
  Kmap.iter
    (fun k _ ->
      let s = Store.shard_of_key store k in
      per_shard.(s) <- per_shard.(s) + 1)
    !model;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool) (Printf.sprintf "shard %d non-empty" i) true (c > 0))
    per_shard

let test_cross_shard_scan () =
  let store = make_store () in
  let rng = Des.Rng.create ~seed:12L in
  let model = ref Kmap.empty in
  for _ = 1 to 700 do
    let k = Key.of_int (Des.Rng.int rng 1000) in
    let v = Des.Rng.int rng 1_000_000 in
    Store.insert store k v;
    model := Kmap.add k v !model
  done;
  let oracle_scan k n =
    Kmap.to_seq !model
    |> Seq.filter (fun (k', _) -> Key.compare k' k >= 0)
    |> Seq.take n |> List.of_seq
  in
  let kv = Alcotest.(pair string int) in
  (* starts in every shard; counts that straddle one and both
     boundaries (333 and 666), and one spanning the whole store *)
  List.iter
    (fun (start, n) ->
      let k = Key.of_int start in
      Alcotest.(check (list kv))
        (Printf.sprintf "scan(%d, %d)" start n)
        (oracle_scan k n) (Store.scan store k n))
    [
      (0, 10); (0, 1000); (300, 60); (300, 500); (650, 40); (900, 200); (999, 5);
      (500, 0);
    ]

(* ---------- group commit: durability, fences, ring wrap ---------- *)

let commit_all store writes ~batch =
  (* route writes like the engine does: group per shard, preserve order *)
  let per = Array.make (Store.shard_count store) [] in
  List.iter
    (fun w ->
      let k = match w with Store.Put (k, _) -> k | Store.Del k -> k in
      let s = Store.shard_of_key store k in
      per.(s) <- w :: per.(s))
    writes;
  Array.iteri
    (fun s ws ->
      let rec go = function
        | [] -> ()
        | ws ->
            let n = min batch (List.length ws) in
            let head = List.filteri (fun i _ -> i < n) ws in
            let tail = List.filteri (fun i _ -> i >= n) ws in
            Store.commit_batch store ~shard:s head;
            go tail
      in
      go (List.rev ws))
    per

let test_group_commit_crash_recovery () =
  let store = make_store ~numa:1 ~log_entries:16 () in
  let writes =
    List.init 200 (fun i ->
        if i mod 7 = 3 then Store.Del (Key.of_int (i - 1))
        else Store.Put (Key.of_int i, i * 10))
  in
  let acked = ref 0 in
  (* small ring (16) with 200 writes: exercises the ring-reuse
     checkpoint guard many times over *)
  List.iter
    (fun w ->
      let shard =
        Store.shard_of_key store (match w with Store.Put (k, _) | Store.Del k -> k)
      in
      Store.commit_batch store ~shard ~on_durable:(fun () -> incr acked) [ w ])
    (List.filteri (fun i _ -> i < 100) writes);
  commit_all store (List.filteri (fun i _ -> i >= 100) writes) ~batch:4;
  Alcotest.(check int) "every single-write batch acked" 100 !acked;
  Alcotest.(check bool) "ring wrap forced checkpoints" true
    (Store.checkpoint_fences store > 0);
  (* model of the final state *)
  let model =
    List.fold_left
      (fun m -> function
        | Store.Put (k, v) -> Kmap.add k v m
        | Store.Del k -> Kmap.remove k m)
      Kmap.empty writes
  in
  Nvm.Machine.crash (Store.machine store) Nvm.Machine.Strict;
  Store.recover store;
  Store.invariants store;
  Kmap.iter
    (fun k v ->
      Alcotest.(check (option int))
        (Printf.sprintf "key %d after crash" (Key.to_int k))
        (Some v) (Store.lookup store k))
    model;
  List.iter
    (function
      | Store.Del k when not (Kmap.mem k model) ->
          Alcotest.(check (option int))
            (Printf.sprintf "deleted key %d stays gone" (Key.to_int k))
            None (Store.lookup store k)
      | _ -> ())
    writes

let test_group_commit_fewer_fences () =
  let fences_with ~batch =
    let store = make_store ~numa:1 () in
    let writes = List.init 128 (fun i -> Store.Put (Key.of_int i, i)) in
    let before = Nvm.Stats.snapshot (Nvm.Machine.total_stats (Store.machine store)) in
    commit_all store writes ~batch;
    (Nvm.Stats.diff (Nvm.Machine.total_stats (Store.machine store)) before)
      .Nvm.Stats.fences
  in
  let f1 = fences_with ~batch:1 and f8 = fences_with ~batch:8 in
  Alcotest.(check bool)
    (Printf.sprintf "batch=8 fences (%d) < batch=1 fences (%d)" f8 f1)
    true (f8 < f1);
  (* the log's own fences drop by the batching factor: at batch=1 each
     write pays a log fence, at batch=8 every eighth does.  Index-
     internal fences are identical across the two runs, so the total
     must shrink by at least 128 - 128/8 - (checkpoint slack). *)
  Alcotest.(check bool)
    (Printf.sprintf "saves at least 100 fences (saved %d)" (f1 - f8))
    true (f1 - f8 >= 100)

(* ---------- determinism ---------- *)

let check_latency_eq what l1 l2 =
  Alcotest.(check int) (what ^ ": sample count") (Workload.Latency.count l1)
    (Workload.Latency.count l2);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s: p%g" what q)
        (Workload.Latency.percentile l1 q)
        (Workload.Latency.percentile l2 q))
    [ 50.0; 99.0; 99.99 ]

let runner_once sys =
  let machine = Nvm.Machine.create ~numa_count:2 () in
  let scale = Experiments.Scale.make ~keys:2_000 ~ops:1_500 ~thread_counts:[] in
  let index, service = Experiments.Factory.make machine ~scale sys in
  Workload.Runner.run ~machine ~index ?service ~mix:Workload.Ycsb.Workload_a
    ~kind:Workload.Keyset.Int_keys ~loaded:2_000 ~ops:1_500 ~threads:4 ()

let test_runner_deterministic sys () =
  let r1 = runner_once sys and r2 = runner_once sys in
  Alcotest.(check (float 0.0)) "throughput" r1.Workload.Runner.throughput
    r2.Workload.Runner.throughput;
  Alcotest.(check (float 0.0)) "elapsed" r1.Workload.Runner.elapsed
    r2.Workload.Runner.elapsed;
  check_latency_eq "latency" r1.Workload.Runner.latency r2.Workload.Runner.latency;
  Alcotest.(check bool) "identical NVM traffic" true
    (Nvm.Stats.is_zero (Nvm.Stats.diff r1.Workload.Runner.nvm r2.Workload.Runner.nvm))

let svc_cfg sys =
  let d = Experiments.Svc_run.default ~quick:true sys in
  { d with Experiments.Svc_run.shards = 2; keys = 2_000; ops = 1_200 }

let test_engine_deterministic sys () =
  let once () = Experiments.Svc_run.run_point (svc_cfg sys) ~rate:1e6 in
  let r1 = once () and r2 = once () in
  Alcotest.(check int) "generated" r1.Engine.r_generated r2.Engine.r_generated;
  Alcotest.(check int) "completed" r1.Engine.r_completed r2.Engine.r_completed;
  Alcotest.(check int) "rejected" r1.Engine.r_rejected r2.Engine.r_rejected;
  Alcotest.(check (float 0.0)) "elapsed" r1.Engine.r_elapsed r2.Engine.r_elapsed;
  Alcotest.(check (float 0.0)) "throughput" r1.Engine.r_throughput
    r2.Engine.r_throughput;
  Alcotest.(check (array int)) "per-shard completions" r1.Engine.r_shard_completed
    r2.Engine.r_shard_completed;
  Alcotest.(check int) "batches" r1.Engine.r_batches r2.Engine.r_batches;
  Alcotest.(check int) "batched writes" r1.Engine.r_batched_writes
    r2.Engine.r_batched_writes;
  check_latency_eq "queue" r1.Engine.r_queue_lat r2.Engine.r_queue_lat;
  check_latency_eq "service" r1.Engine.r_service_lat r2.Engine.r_service_lat;
  check_latency_eq "total" r1.Engine.r_total_lat r2.Engine.r_total_lat;
  Alcotest.(check bool) "identical NVM traffic" true
    (Nvm.Stats.is_zero (Nvm.Stats.diff r1.Engine.r_nvm r2.Engine.r_nvm))

(* ---------- closed loop + saturation sweep shape ---------- *)

let test_closed_loop () =
  let cfg = svc_cfg Experiments.Factory.Fastfair_sys in
  let store = Experiments.Svc_run.make_store cfg in
  let start =
    Engine.load ~store ~kind:cfg.Experiments.Svc_run.kind
      ~keys:cfg.Experiments.Svc_run.keys ()
  in
  let config =
    {
      (Experiments.Svc_run.engine_config cfg ~rate:1e6) with
      Engine.mode = Engine.Closed_loop { clients = 8 };
    }
  in
  let r = Engine.run ~store ~config ~start () in
  Alcotest.(check int) "all generated" cfg.Experiments.Svc_run.ops
    r.Engine.r_generated;
  Alcotest.(check int) "closed loop rejects nothing" 0 r.Engine.r_rejected;
  Alcotest.(check int) "all completed" r.Engine.r_generated r.Engine.r_completed;
  Alcotest.(check bool) "made progress" true (r.Engine.r_throughput > 0.0)

let test_sweep_shape () =
  let cfg = svc_cfg Experiments.Factory.Fastfair_sys in
  let points = Experiments.Svc_run.sweep cfg in
  (match Experiments.Svc_run.check_sweep points with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "sweep shape: %s" msg);
  match Obs.Svc_report.validate (Experiments.Svc_run.report cfg points) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "report schema: %s" msg

(* ---------- crashmc over the sharded store ---------- *)

let crashmc_store () =
  (* tiny pools: every materialised crash state blits every pool *)
  make_store ~numa:1 ~shards:2 ~span:1000 ~log_entries:16 ~capacity:(1 lsl 18) ()

let crashmc_sut store =
  Crashmc.Sut.custom ~name:"svc-store[fastfair x2]" ~machine:(Store.machine store)
    ~index:(Store.as_index store)
    ~recover:(fun () -> Store.recover store)
    ~invariants:(fun () -> Store.invariants store)
    ~quiesce:(fun () -> Store.quiesce store)
    ()

let seed () = Int64.to_int (Des.Rng.env_seed ~default:1L)

let run_crashmc ?batch ?apply store =
  let sut = crashmc_sut store in
  let r =
    Crashmc.Harness.run ~budget_per_point:16 ~max_states:2_500 ~seed:(seed ()) ?batch
      ?apply ~sut
      ~ops:(Crashmc.Harness.mixed_workload ~seed:(seed ()) 24)
      ()
  in
  if not (Crashmc.Harness.ok r) then
    Alcotest.failf "%a@.seed %d (override with PACTREE_SEED)" Crashmc.Harness.pp_report
      r (seed ())

let test_crashmc_direct () = run_crashmc (crashmc_store ())

(* Route a chunk of oracle ops through [commit_batch], grouped per
   shard in program order — the engine's batching, minus the DES. *)
let commit_ops_batched store chunk =
  let per = Array.make (Store.shard_count store) [] in
  List.iter
    (fun op ->
      let s = Store.shard_of_key store (Crashmc.Oracle.op_key op) in
      per.(s) <- op :: per.(s))
    chunk;
  Array.iteri
    (fun s ops ->
      match List.rev ops with
      | [] -> ()
      | ops ->
          Store.commit_batch store ~shard:s
            (List.map
               (function
                 | Crashmc.Oracle.Insert (k, v) -> Store.Put (k, v)
                 | Crashmc.Oracle.Delete k -> Store.Del k)
               ops))
    per

let test_crashmc_batched () =
  let store = crashmc_store () in
  run_crashmc ~batch:4 ~apply:(commit_ops_batched store) store

(* Double crash: log-entry lines of an interrupted batch persist
   independently (clwb, one fence per batch), so a crash image can
   hold entry seq N+k without N — past the replay truncation point.
   Recovery must scrub such ghosts: their seq is exactly one a future
   committed write will use, and an unscrubbed ghost would be replayed
   after a second crash, resurrecting an unacknowledged op over
   acknowledged state.

   The trace covers only the final batch, so the crash point before
   its log fence has exactly the four entry lines pending and a large
   budget sweeps their survivor combinations exhaustively — including
   every hole-then-survivor (ghost) pattern.  For each image: recover,
   snapshot, commit [j] fresh acknowledged writes, crash again,
   recover, and require the state to be exactly snapshot + the fresh
   writes.  [j] runs over 1..3 because a ghost at distance [d] past
   the replay tail is only reached by replay when exactly [d - 1]
   committed seqs precede it (fewer: replay stops at the hole; more:
   the ghost slot is overwritten). *)
let test_double_crash_no_ghost () =
  let store = make_store ~numa:1 ~shards:2 ~span:1000 ~log_entries:32 () in
  let machine = Store.machine store in
  let prior =
    List.init 24 (fun i -> Store.Put (Key.of_int (i * 41 mod 1000), i))
  in
  List.iter
    (fun w ->
      let k = match w with Store.Put (k, _) -> k | Store.Del k -> k in
      Store.commit_batch store ~shard:(Store.shard_of_key store k) [ w ])
    prior;
  (* final batch: 4 writes, all owned by shard 1 *)
  let batch_keys = List.map Key.of_int [ 600; 610; 620; 630 ] in
  let trace = Crashmc.Trace.start machine in
  Store.commit_batch store ~shard:1
    (List.mapi (fun i k -> Store.Put (k, 9000 + i)) batch_keys);
  Crashmc.Trace.stop trace;
  let history_keys =
    List.sort_uniq Key.compare
      (batch_keys
      @ List.map (function Store.Put (k, _) -> k | Store.Del k -> k) prior)
  in
  let fresh_keys = List.map Key.of_int [ 601; 611; 621 ] in
  let checked = ref 0 in
  ignore
    (Crashmc.Enum.iter ~budget_per_point:4096
       ~seed:(Int64.of_int (seed ()))
       ~trace
       ~f:(fun st ->
         incr checked;
         for j = 1 to 3 do
           st.Crashmc.Enum.restore ();
           Store.recover store;
           let snap = List.map (fun k -> (k, Store.lookup store k)) history_keys in
           List.iteri
             (fun i k ->
               if i < j then
                 Store.commit_batch store ~shard:1
                   [ Store.Put (k, 1_000_000 + (j * 10) + i) ])
             fresh_keys;
           Nvm.Machine.crash machine Nvm.Machine.Strict;
           Store.recover store;
           Store.invariants store;
           List.iteri
             (fun i k ->
               if i < j then
                 Alcotest.(check (option int))
                   (Printf.sprintf
                      "[at=%d %s j=%d] acked post-recovery write %d survives"
                      st.Crashmc.Enum.at st.Crashmc.Enum.label j (Key.to_int k))
                   (Some (1_000_000 + (j * 10) + i))
                   (Store.lookup store k))
             fresh_keys;
           List.iter
             (fun (k, v) ->
               Alcotest.(check (option int))
                 (Printf.sprintf "[at=%d %s j=%d] key %d unchanged by second crash"
                    st.Crashmc.Enum.at st.Crashmc.Enum.label j (Key.to_int k))
                 v (Store.lookup store k))
             snap
         done;
         if !checked >= 1600 then raise Crashmc.Enum.Stop)
       ()
      : Crashmc.Enum.stats);
  Alcotest.(check bool) "swept enough crash states" true (!checked >= 200)

let suite =
  [
    Alcotest.test_case "store: routed ops vs map oracle" `Quick
      test_store_ops_vs_oracle;
    Alcotest.test_case "store: cross-shard ordered scan" `Quick test_cross_shard_scan;
    Alcotest.test_case "store: group commit survives crash (ring wrap)" `Quick
      test_group_commit_crash_recovery;
    Alcotest.test_case "store: group commit reduces fences" `Quick
      test_group_commit_fewer_fences;
    Alcotest.test_case "runner: deterministic (pactree)" `Quick
      (test_runner_deterministic Experiments.Factory.Pactree_sys);
    Alcotest.test_case "runner: deterministic (fastfair)" `Quick
      (test_runner_deterministic Experiments.Factory.Fastfair_sys);
    Alcotest.test_case "engine: deterministic (pactree)" `Quick
      (test_engine_deterministic Experiments.Factory.Pactree_sys);
    Alcotest.test_case "engine: deterministic (fastfair)" `Quick
      (test_engine_deterministic Experiments.Factory.Fastfair_sys);
    Alcotest.test_case "engine: closed loop completes everything" `Quick
      test_closed_loop;
    Alcotest.test_case "engine: saturation sweep shape" `Quick test_sweep_shape;
    Alcotest.test_case "crashmc: sharded store, direct ops" `Quick test_crashmc_direct;
    Alcotest.test_case "crashmc: sharded store, batched commits" `Quick
      test_crashmc_batched;
    Alcotest.test_case "crashmc: double crash replays no ghost entries" `Quick
      test_double_crash_no_ghost;
  ]
