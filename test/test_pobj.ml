(* Tests for the typed persistent-object layer: declarative layouts,
   typed accessors, and the persist-order sanitizer. *)

module Machine = Nvm.Machine
module Pool = Nvm.Pool
module Layout = Pobj.Layout
module Sanitizer = Pobj.Sanitizer

let make_machine () = Machine.create ~numa_count:1 ()

let make_pool machine = Pool.create machine ~name:"pobj-test" ~numa:0 ~capacity:(1 lsl 16) ()

let raises_invalid f =
  match f () with exception Invalid_argument _ -> true | _ -> false

(* ---------- Layout ---------- *)

let test_layout_offsets () =
  let l = Layout.create "node" in
  let a = Layout.u8 l "a" in
  let b = Layout.u16 l "b" in
  let c = Layout.word l "c" in
  let d = Layout.bytes l "d" 5 in
  let e = Layout.u32 l "e" in
  let size = Layout.seal l in
  Alcotest.(check int) "u8 first" 0 (Layout.off a);
  Alcotest.(check int) "u16 2-aligned" 2 (Layout.off b);
  Alcotest.(check int) "word 8-aligned" 8 (Layout.off c);
  Alcotest.(check int) "bytes 8-aligned" 16 (Layout.off d);
  Alcotest.(check int) "u32 4-aligned after 5B region" 24 (Layout.off e);
  Alcotest.(check int) "sealed size rounds to 8" 32 size;
  Alcotest.(check int) "size accessor" 32 (Layout.size l)

let test_layout_pinned_and_slots () =
  let l = Layout.create "leaf" in
  let lock = Layout.word ~transient:true l "lock" in
  let bitmap = Layout.i64 ~at:8 l "bitmap" in
  let recs = Layout.slots ~at:64 l "recs" ~stride:16 ~count:4 in
  let size = Layout.seal ~size:192 l in
  Alcotest.(check int) "padded size respected" 192 size;
  Alcotest.(check bool) "transient flag" true (Layout.is_transient lock);
  Alcotest.(check bool) "persistent by default" false (Layout.is_transient bitmap);
  Alcotest.(check int) "slot 0" 64 (Layout.slot recs 0);
  Alcotest.(check int) "slot 3" 112 (Layout.slot recs 3);
  Alcotest.(check int) "stride" 16 (Layout.stride recs);
  Alcotest.(check bool) "slot -1 rejected" true (raises_invalid (fun () -> Layout.slot recs (-1)));
  Alcotest.(check bool) "slot 4 rejected" true (raises_invalid (fun () -> Layout.slot recs 4))

let test_layout_misuse_rejected () =
  let l = Layout.create "bad" in
  let _a = Layout.word l "a" in
  Alcotest.(check bool) "duplicate name" true
    (raises_invalid (fun () -> Layout.word l "a"));
  Alcotest.(check bool) "pinned overlap" true
    (raises_invalid (fun () -> Layout.i64 ~at:4 l "b"));
  let _ = Layout.seal l in
  Alcotest.(check bool) "field after seal" true
    (raises_invalid (fun () -> Layout.word l "c"));
  Alcotest.(check bool) "undersized pad rejected" true
    (raises_invalid
       (fun () ->
         let l2 = Layout.create "bad2" in
         let _ = Layout.bytes l2 "blob" 64 in
         Layout.seal ~size:32 l2))

(* ---------- Typed accessors ---------- *)

let test_typed_accessors () =
  let m = make_machine () in
  let p = make_pool m in
  let l = Layout.create "rec" in
  let f_w = Layout.word l "w" in
  let f_i = Layout.i64 l "i" in
  let f_b = Layout.u8 l "b" in
  let f_s = Layout.u16 l "s" in
  let f_u = Layout.u32 l "u" in
  let size = Layout.seal l in
  let o = Pobj.make p 128 in
  Pobj.set_int o f_w 123456;
  Pobj.set_i64 o f_i (-7L);
  Pobj.set_u8 o f_b 0xAB;
  Pobj.set_u16 o f_s 0xBEEF;
  Pobj.set_u32 o f_u 0xDEADBEE;
  Alcotest.(check int) "word" 123456 (Pobj.get_int o f_w);
  Alcotest.(check int64) "i64" (-7L) (Pobj.get_i64 o f_i);
  Alcotest.(check int) "u8" 0xAB (Pobj.get_u8 o f_b);
  Alcotest.(check int) "u16" 0xBEEF (Pobj.get_u16 o f_s);
  Alcotest.(check int) "u32" 0xDEADBEE (Pobj.get_u32 o f_u);
  (* Base-relative raw access sees the same bytes as the pool. *)
  Alcotest.(check int) "raw = pool view" (Pool.read_int p (128 + Layout.off f_w))
    (Pobj.read_int o (Layout.off f_w));
  Alcotest.(check bool) "cas succeeds" true
    (Pobj.cas_field o f_w ~expected:123456 789);
  Alcotest.(check int) "cas wrote" 789 (Pobj.get_int o f_w);
  Alcotest.(check bool) "stale cas fails" false
    (Pobj.cas_field o f_w ~expected:123456 0);
  Pobj.persist_obj o l;
  Machine.crash m Machine.Strict;
  Alcotest.(check int) "whole object durable" 789 (Pobj.get_int o f_w);
  ignore size

let test_shift_and_strings () =
  let m = make_machine () in
  let p = make_pool m in
  let o = Pobj.make p 256 in
  let s = Pobj.shift o 64 in
  Alcotest.(check int) "shift adds to base" 320 (Pobj.base s);
  Pobj.write_string s 0 "anchor-key";
  Alcotest.(check string) "string roundtrip" "anchor-key" (Pobj.read_string s 0 10);
  Alcotest.(check int) "compare equal" 0 (Pobj.compare_string s 0 10 "anchor-key");
  Alcotest.(check bool) "compare less" true (Pobj.compare_string s 0 10 "anchor-kez" < 0);
  Pobj.fill_zero s 0 10;
  Alcotest.(check string) "filled" "\000\000" (Pobj.read_string s 0 2)

(* ---------- Sanitizer ---------- *)

(* Run [f] on a simulated thread so stores/fences carry a real tid. *)
let on_thread f =
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~name:"t0" (fun () -> f ());
  Des.Sched.run sched

let test_sanitizer_flags_unflushed_store () =
  let m = make_machine () in
  let p = make_pool m in
  Sanitizer.enable m;
  on_thread (fun () ->
      Pool.write_int p 0 42;
      (* no clwb *)
      Pool.fence p);
  Alcotest.(check bool) "hazard reported" true (Sanitizer.total () > 0);
  (match Sanitizer.reports () with
  | r :: _ ->
      Alcotest.(check int) "line 0" 0 r.Sanitizer.r_line;
      Alcotest.(check int) "one occurrence" 1 r.Sanitizer.r_count
  | [] -> Alcotest.fail "expected a report");
  Sanitizer.disable m

let test_sanitizer_clwb_discharges () =
  let m = make_machine () in
  let p = make_pool m in
  Sanitizer.enable m;
  on_thread (fun () ->
      Pool.write_int p 0 42;
      Pool.persist p 0 8;
      (* and a redundant re-flush must not re-open anything *)
      Pool.persist p 0 8);
  Alcotest.(check int) "clean" 0 (Sanitizer.total ());
  Sanitizer.disable m

let test_sanitizer_suppression () =
  let m = make_machine () in
  let p = make_pool m in
  let l = Layout.create "vlock" in
  let f_lock = Layout.word ~transient:true l "lock" in
  let f_data = Layout.word l "data" in
  let _ = Layout.seal l in
  Sanitizer.enable m;
  on_thread (fun () ->
      let o = Pobj.make p 0 in
      (* transient field store + explicit suppression: both exempt *)
      Pobj.set_int o f_lock 1;
      Sanitizer.with_suppressed (fun () -> Pool.write_int p 512 7);
      Pobj.set_int o f_data 9;
      Pobj.persist_field o f_data;
      Pool.fence p);
  Alcotest.(check int) "no false positives" 0 (Sanitizer.total ());
  Sanitizer.disable m

let test_sanitizer_cross_thread_flush_counts () =
  let m = make_machine () in
  let p = make_pool m in
  Sanitizer.enable m;
  let sched = Des.Sched.create () in
  let wq = Des.Sched.Waitq.create () in
  let stored = ref false in
  Des.Sched.spawn sched ~name:"storer" (fun () ->
      Pool.write_int p 0 1;
      stored := true;
      (match Des.Sched.self () with
      | Some s -> Des.Sched.Waitq.signal_all s wq
      | None -> ());
      Des.Sched.delay 1e-6;
      (* flusher's clwb discharged the obligation; our fence is clean *)
      Pool.fence p);
  Des.Sched.spawn sched ~name:"flusher" (fun () ->
      if not !stored then Des.Sched.Waitq.wait wq;
      Pool.clwb p 0;
      Pool.fence p);
  Des.Sched.run sched;
  Alcotest.(check int) "any thread's clwb discharges" 0 (Sanitizer.total ());
  Sanitizer.disable m

let test_sanitizer_disable_detaches () =
  let m = make_machine () in
  let p = make_pool m in
  Sanitizer.enable m;
  Sanitizer.disable m;
  on_thread (fun () ->
      Pool.write_int p 0 42;
      Pool.fence p);
  Alcotest.(check bool) "inactive" false (Sanitizer.active ())

let suite =
  [
    Alcotest.test_case "layout: sequential offsets" `Quick test_layout_offsets;
    Alcotest.test_case "layout: pinned fields and slots" `Quick test_layout_pinned_and_slots;
    Alcotest.test_case "layout: misuse rejected" `Quick test_layout_misuse_rejected;
    Alcotest.test_case "pobj: typed accessors" `Quick test_typed_accessors;
    Alcotest.test_case "pobj: shift and strings" `Quick test_shift_and_strings;
    Alcotest.test_case "sanitizer: unflushed store flagged" `Quick
      test_sanitizer_flags_unflushed_store;
    Alcotest.test_case "sanitizer: clwb discharges" `Quick test_sanitizer_clwb_discharges;
    Alcotest.test_case "sanitizer: transient + suppressed exempt" `Quick
      test_sanitizer_suppression;
    Alcotest.test_case "sanitizer: cross-thread clwb" `Quick
      test_sanitizer_cross_thread_flush_counts;
    Alcotest.test_case "sanitizer: disable detaches" `Quick test_sanitizer_disable_detaches;
  ]
