(* Tests for the simulated NVM: persistence semantics, crash model,
   cost-model behaviours the paper's findings rely on (FH1-FH5). *)

module Machine = Nvm.Machine
module Pool = Nvm.Pool
module Stats = Nvm.Stats

let make_machine ?protocol () = Machine.create ?protocol ~numa_count:2 ()

let make_pool ?(capacity = 1 lsl 20) ?volatile machine =
  Pool.create machine ?volatile ~name:"test" ~numa:0 ~capacity ()

let test_rw_roundtrip () =
  let m = make_machine () in
  let p = make_pool m in
  Pool.write_u8 p 3 0xAB;
  Pool.write_u16 p 10 0xBEEF;
  Pool.write_u32 p 20 0xDEADBEE;
  Pool.write_int p 32 123456789;
  Pool.write_int64 p 40 (-1L);
  Pool.write_string p 100 "hello nvm";
  Alcotest.(check int) "u8" 0xAB (Pool.read_u8 p 3);
  Alcotest.(check int) "u16" 0xBEEF (Pool.read_u16 p 10);
  Alcotest.(check int) "u32" 0xDEADBEE (Pool.read_u32 p 20);
  Alcotest.(check int) "int" 123456789 (Pool.read_int p 32);
  Alcotest.(check int64) "int64" (-1L) (Pool.read_int64 p 40);
  Alcotest.(check string) "string" "hello nvm" (Pool.read_string p 100 9)

let test_compare_string () =
  let m = make_machine () in
  let p = make_pool m in
  Pool.write_string p 0 "abcdef";
  Alcotest.(check int) "equal" 0 (Pool.compare_string p 0 6 "abcdef");
  Alcotest.(check bool) "less" true (Pool.compare_string p 0 6 "abcdeg" < 0);
  Alcotest.(check bool) "greater" true (Pool.compare_string p 0 6 "abcdee" > 0);
  Alcotest.(check bool) "prefix shorter" true (Pool.compare_string p 0 6 "abcdefg" < 0);
  Alcotest.(check bool) "prefix longer" true (Pool.compare_string p 0 6 "abc" > 0)

let test_persist_survives_strict_crash () =
  let m = make_machine () in
  let p = make_pool m in
  Pool.write_int p 0 42;
  Pool.persist p 0 8;
  Pool.write_int p 64 99 (* dirty, never flushed *);
  Machine.crash m Machine.Strict;
  Alcotest.(check int) "persisted survives" 42 (Pool.read_int p 0);
  Alcotest.(check int) "unflushed lost" 0 (Pool.read_int p 64)

let test_clwb_without_fence_lost_strict () =
  let m = make_machine () in
  let p = make_pool m in
  Pool.write_int p 0 42;
  Pool.clwb p 0;
  (* no fence *)
  Machine.crash m Machine.Strict;
  Alcotest.(check int) "clwb without fence not durable" 0 (Pool.read_int p 0)

let test_flaky_crash_probabilistic () =
  let m = make_machine () in
  let p = make_pool m in
  for i = 0 to 99 do
    Pool.write_int p (i * 64) (i + 1)
  done;
  let rng = Des.Rng.create ~seed:5L in
  Machine.crash m (Machine.Flaky (0.5, rng));
  let survived = ref 0 in
  for i = 0 to 99 do
    if Pool.read_int p (i * 64) = i + 1 then incr survived
  done;
  Alcotest.(check bool) "some survived" true (!survived > 10);
  Alcotest.(check bool) "some lost" true (!survived < 90)

(* A persist whose byte range straddles a 64B line boundary must flush
   both lines — an off-by-one in the first/last line computation would
   leave the tail line volatile. *)
let test_persist_straddles_line () =
  let m = make_machine () in
  let p = make_pool m in
  Pool.write_string p 56 "straddles-a-line";
  let before = (Machine.stats m).Stats.flushes in
  Pool.persist p 56 16;
  Alcotest.(check int) "two lines flushed" 2 ((Machine.stats m).Stats.flushes - before);
  Machine.crash m Machine.Strict;
  Alcotest.(check string) "straddling value survives" "straddles-a-line"
    (Pool.read_string p 56 16)

let test_flush_range_zero_len () =
  let m = make_machine () in
  let p = make_pool m in
  Pool.write_int p 0 9;
  let before = (Machine.stats m).Stats.flushes in
  Pool.flush_range p 0 0;
  Pool.persist p 0 0;
  Alcotest.(check int) "zero-length flushes nothing" 0
    ((Machine.stats m).Stats.flushes - before);
  Machine.crash m Machine.Strict;
  Alcotest.(check int) "zero-length persists nothing" 0 (Pool.read_int p 0)

let test_persist_end_of_pool () =
  let capacity = 1 lsl 16 in
  let m = make_machine () in
  let p = make_pool ~capacity m in
  Pool.write_int p (capacity - 8) 4242;
  Pool.persist p (capacity - 8) 8 (* last 8 bytes: must not run past the pool *);
  Pool.flush_range p (capacity - 64) 64;
  Machine.crash m Machine.Strict;
  Alcotest.(check int) "last line survives" 4242 (Pool.read_int p (capacity - 8))

(* One line flushed twice in a row with no intervening store: the
   second clwb is redundant and must be counted as elidable — and with
   elision off (the default) still executed. *)
let test_flush_tracking_counts_redundant () =
  let m = make_machine () in
  let p = make_pool m in
  Pool.write_int p 0 1;
  Pool.persist p 0 8;
  let s = Machine.stats m in
  let flushes = s.Stats.flushes and elided = s.Stats.flushes_elided in
  Pool.persist p 0 8;
  Alcotest.(check int) "redundant clwb counted as elidable" (elided + 1)
    s.Stats.flushes_elided;
  Alcotest.(check int) "still executed with elision off" (flushes + 1) s.Stats.flushes;
  Machine.set_flush_elision m true;
  Pool.persist p 0 8;
  Alcotest.(check int) "skipped with elision on" (flushes + 1) s.Stats.flushes;
  Alcotest.(check int) "and still counted" (elided + 2) s.Stats.flushes_elided;
  (* After a fresh store the line is genuinely dirty again. *)
  Pool.write_int p 0 2;
  Pool.persist p 0 8;
  Alcotest.(check int) "dirty line not elided" (flushes + 2) s.Stats.flushes;
  Machine.crash m Machine.Strict;
  Alcotest.(check int) "value durable throughout" 2 (Pool.read_int p 0)

let test_flaky_p1_persists_all_dirty () =
  let m = make_machine () in
  let p = make_pool m in
  Pool.write_int p 0 7;
  let rng = Des.Rng.create ~seed:5L in
  Machine.crash m (Machine.Flaky (1.0, rng));
  Alcotest.(check int) "dirty line evicted to media" 7 (Pool.read_int p 0)

let test_overwrite_after_clwb () =
  (* The clwb snapshot is what the fence persists; later stores to the
     same line need their own flush. *)
  let m = make_machine () in
  let p = make_pool m in
  Pool.write_int p 0 1;
  Pool.clwb p 0;
  Pool.write_int p 0 2;
  Pool.fence p;
  Machine.crash m Machine.Strict;
  Alcotest.(check int) "snapshot value persisted" 1 (Pool.read_int p 0)

let test_volatile_pool_lost_on_crash () =
  let m = make_machine () in
  let p = make_pool ~volatile:true m in
  Pool.write_int p 0 42;
  Pool.persist p 0 8 (* no-op flush on DRAM *);
  Machine.crash m Machine.Strict;
  Alcotest.(check int) "dram wiped" 0 (Pool.read_int p 0)

let test_media_read_int () =
  let m = make_machine () in
  let p = make_pool m in
  Pool.write_int p 0 42;
  Alcotest.(check int) "not yet in media" 0 (Pool.media_read_int p 0);
  Alcotest.(check bool) "line dirty" true (Pool.line_is_dirty p 0);
  Pool.persist p 0 8;
  Alcotest.(check int) "in media after persist" 42 (Pool.media_read_int p 0);
  Alcotest.(check bool) "line clean" false (Pool.line_is_dirty p 0)

let test_flush_counts () =
  let m = make_machine () in
  let p = make_pool m in
  let before = Stats.snapshot (Machine.stats m) in
  Pool.write_int p 0 1;
  Pool.persist p 0 8;
  let d = Stats.diff (Machine.stats m) before in
  Alcotest.(check int) "one clwb" 1 d.Stats.flushes;
  Alcotest.(check int) "one sfence" 1 d.Stats.fences

let test_write_combining_groups_xpline () =
  (* Flushing 4 lines of one XPLine then fencing must produce a single
     full (non-RMW) media write; a single line flush is a partial RMW
     write (FH1 write amplification). *)
  let m = make_machine () in
  let p = make_pool m in
  let dev_stats = Nvm.Device.stats (Machine.device m 0) in
  let before = Stats.snapshot dev_stats in
  for line = 0 to 3 do
    Pool.write_int p (line * 64) 1;
    Pool.clwb p (line * 64)
  done;
  Pool.fence p;
  let d = Stats.diff dev_stats before in
  Alcotest.(check int) "one media write" 1 d.Stats.media_writes;
  Alcotest.(check int) "no rmw read" 0 d.Stats.rmw_reads;
  let before = Stats.snapshot dev_stats in
  Pool.write_int p 1024 1;
  Pool.persist p 1024 8;
  let d = Stats.diff dev_stats before in
  Alcotest.(check int) "partial write" 1 d.Stats.media_writes;
  Alcotest.(check int) "rmw amplification" 1 d.Stats.rmw_reads

let run_in_sim f =
  let sched = Des.Sched.create () in
  let result = ref None in
  Des.Sched.spawn sched ~name:"t" (fun () -> result := Some (f sched));
  Des.Sched.run sched;
  Option.get !result

let test_sequential_read_faster_than_random () =
  (* FH3: sequential reads exploit the read buffer and prefetcher.
     Both patterns touch 4096 (mostly) distinct lines; the random one
     draws from a 16MB region so CPU cache reuse is negligible. *)
  let time_pattern sequential =
    run_in_sim (fun sched ->
        let m = make_machine () in
        let p = make_pool ~capacity:(1 lsl 24) m in
        let rng = Des.Rng.create ~seed:3L in
        let start = Des.Sched.now sched in
        for i = 0 to 4095 do
          let off =
            if sequential then i * 64 else Des.Rng.int rng (1 lsl 18) * 64
          in
          ignore (Pool.read_int p off)
        done;
        Des.Sched.delay 0.0;
        Des.Sched.now sched -. start)
  in
  let seq = time_pattern true and rand = time_pattern false in
  Alcotest.(check bool)
    (Printf.sprintf "sequential (%.2e) at least 2x faster than random (%.2e)" seq rand)
    true
    (seq *. 2.0 < rand)

let test_cache_hits_are_cheap () =
  let first, second =
    run_in_sim (fun sched ->
        let m = make_machine () in
        let p = make_pool m in
        let t0 = Des.Sched.now sched in
        ignore (Pool.read_int p 0);
        Des.Sched.delay 0.0;
        let t1 = Des.Sched.now sched in
        ignore (Pool.read_int p 0);
        Des.Sched.delay 0.0;
        let t2 = Des.Sched.now sched in
        (t1 -. t0, t2 -. t1))
  in
  Alcotest.(check bool) "second access is a cache hit" true (second *. 5.0 < first)

let test_directory_protocol_generates_writes () =
  (* FH5: under the directory protocol, remote reads write directory
     state to the media; under snoop they do not. *)
  let remote_reads protocol =
    run_in_sim (fun _sched ->
        let m = make_machine ~protocol () in
        let p = make_pool m in
        ignore p;
        (* Thread on NUMA 1 reads pool on NUMA 0. *)
        m)
    |> ignore
  in
  ignore remote_reads;
  let run protocol =
    let m = Machine.create ~protocol ~numa_count:2 () in
    let p = Pool.create m ~name:"remote" ~numa:0 ~capacity:(1 lsl 20) () in
    let sched = Des.Sched.create () in
    Des.Sched.spawn sched ~numa:1 ~name:"remote-reader" (fun () ->
        let rng = Des.Rng.create ~seed:11L in
        for _ = 1 to 2048 do
          ignore (Pool.read_int p (Des.Rng.int rng (1 lsl 14) * 64))
        done);
    Des.Sched.run sched;
    Nvm.Device.stats (Machine.device m 0)
  in
  let dir = run Nvm.Config.Directory and snoop = run Nvm.Config.Snoop in
  Alcotest.(check bool) "directory writes present" true (dir.Stats.dir_writes > 1000);
  Alcotest.(check int) "snoop: none" 0 snoop.Stats.dir_writes;
  Alcotest.(check bool) "dir write traffic comparable to reads" true
    (Stats.total_write_bytes dir * 2 > Stats.total_read_bytes dir / 2)

let test_local_reads_no_directory_writes () =
  let m = Machine.create ~protocol:Nvm.Config.Directory ~numa_count:2 () in
  let p = Pool.create m ~name:"local" ~numa:0 ~capacity:(1 lsl 20) () in
  let sched = Des.Sched.create () in
  Des.Sched.spawn sched ~numa:0 ~name:"local-reader" (fun () ->
      for i = 0 to 1023 do
        ignore (Pool.read_int p (i * 64))
      done);
  Des.Sched.run sched;
  let stats = Nvm.Device.stats (Machine.device m 0) in
  Alcotest.(check int) "no directory writes for local reads" 0 stats.Stats.dir_writes

let test_bandwidth_saturation () =
  (* GC1: aggregate throughput saturates as readers contend for the
     device channels. *)
  let elapsed_with threads =
    let m = make_machine () in
    let p = Pool.create m ~name:"bw" ~numa:0 ~capacity:(1 lsl 22) () in
    let sched = Des.Sched.create () in
    for t = 0 to threads - 1 do
      Des.Sched.spawn sched ~numa:0 ~name:(Printf.sprintf "r%d" t) (fun () ->
          let rng = Des.Rng.create ~seed:(Int64.of_int (t + 1)) in
          for _ = 1 to 2048 do
            ignore (Pool.read_int p (Des.Rng.int rng (1 lsl 16) * 64))
          done)
    done;
    Des.Sched.run sched;
    Des.Sched.now sched
  in
  let t1 = elapsed_with 1 and t64 = elapsed_with 64 in
  (* 64 threads do 64x the work; with ~16 channels the elapsed time
     must grow (bandwidth bound), but far less than 64x. *)
  Alcotest.(check bool) "more threads take longer" true (t64 > t1 *. 1.5);
  Alcotest.(check bool) "but scale via parallel channels" true (t64 < t1 *. 32.0)

let test_read_write_asymmetry () =
  (* FH2: writes are slower than reads. *)
  let m = make_machine () in
  let p = make_pool m in
  let read_time =
    run_in_sim (fun sched ->
        let start = Des.Sched.now sched in
        ignore (Pool.read_int p (1 lsl 16));
        Des.Sched.delay 0.0;
        Des.Sched.now sched -. start)
  in
  let write_time =
    run_in_sim (fun sched ->
        let start = Des.Sched.now sched in
        Pool.write_int p (1 lsl 17) 1;
        Pool.persist p (1 lsl 17) 8;
        Des.Sched.now sched -. start)
  in
  Alcotest.(check bool)
    (Printf.sprintf "persist (%.2e) slower than read (%.2e)" write_time read_time)
    true
    (write_time > read_time *. 1.5)

let test_stats_roundtrip () =
  let s = Stats.create () in
  s.Stats.media_reads <- 10;
  s.Stats.media_read_bytes <- 2560;
  let snap = Stats.snapshot s in
  s.Stats.media_reads <- 15;
  let d = Stats.diff s snap in
  Alcotest.(check int) "diff" 5 d.Stats.media_reads;
  Stats.add snap d;
  Alcotest.(check int) "add" 15 snap.Stats.media_reads;
  Stats.reset s;
  Alcotest.(check int) "reset" 0 s.Stats.media_reads

let test_config_bandwidths () =
  let open Nvm.Config in
  Alcotest.(check bool) "default read bw ~ tens of GB/s" true
    (read_bandwidth dcpmm > 10e9 && read_bandwidth dcpmm < 100e9);
  Alcotest.(check bool) "write bw below read bw" true
    (write_bandwidth dcpmm < read_bandwidth dcpmm);
  Alcotest.(check bool) "low-bw machine ~3x lower" true
    (read_bandwidth dcpmm_low_bw *. 2.5 < read_bandwidth dcpmm)

let suite =
  [
    Alcotest.test_case "pool: typed read/write roundtrip" `Quick test_rw_roundtrip;
    Alcotest.test_case "pool: compare_string" `Quick test_compare_string;
    Alcotest.test_case "crash: persist survives strict" `Quick
      test_persist_survives_strict_crash;
    Alcotest.test_case "crash: clwb without fence lost" `Quick
      test_clwb_without_fence_lost_strict;
    Alcotest.test_case "crash: flaky is probabilistic" `Quick
      test_flaky_crash_probabilistic;
    Alcotest.test_case "crash: flaky p=1 evicts dirty" `Quick
      test_flaky_p1_persists_all_dirty;
    Alcotest.test_case "crash: clwb snapshots its line" `Quick test_overwrite_after_clwb;
    Alcotest.test_case "persist: straddles a 64B line" `Quick test_persist_straddles_line;
    Alcotest.test_case "persist: zero-length is a no-op" `Quick test_flush_range_zero_len;
    Alcotest.test_case "persist: end of pool" `Quick test_persist_end_of_pool;
    Alcotest.test_case "flush tracking: redundant clwbs" `Quick
      test_flush_tracking_counts_redundant;
    Alcotest.test_case "crash: volatile pool wiped" `Quick test_volatile_pool_lost_on_crash;
    Alcotest.test_case "pool: media image inspection" `Quick test_media_read_int;
    Alcotest.test_case "stats: flush/fence counts" `Quick test_flush_counts;
    Alcotest.test_case "device: write combining (FH3)" `Quick
      test_write_combining_groups_xpline;
    Alcotest.test_case "device: sequential beats random (FH3)" `Quick
      test_sequential_read_faster_than_random;
    Alcotest.test_case "machine: cpu cache hits cheap" `Quick test_cache_hits_are_cheap;
    Alcotest.test_case "device: directory coherence writes (FH5)" `Quick
      test_directory_protocol_generates_writes;
    Alcotest.test_case "device: local reads have no dir writes" `Quick
      test_local_reads_no_directory_writes;
    Alcotest.test_case "device: bandwidth saturation (GC1)" `Quick
      test_bandwidth_saturation;
    Alcotest.test_case "device: read/write asymmetry (FH2)" `Quick
      test_read_write_asymmetry;
    Alcotest.test_case "stats: snapshot/diff/add/reset" `Quick test_stats_roundtrip;
    Alcotest.test_case "config: bandwidth presets" `Quick test_config_bandwidths;
  ]
