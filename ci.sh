#!/bin/sh
# Continuous-integration entry point: build, full test suite, quick
# bench smoke (fig2 + sec6_8), a bounded crashmc sweep, and the
# instrumented stats bench (`pactree_bench stats --quick`, whose
# BENCH_pactree.json output is schema-validated along with the
# committed baseline), via the dune @ci alias (see the root dune
# file).  Any failure fails the run.
set -eu
cd "$(dirname "$0")"
exec dune build @ci "$@"
