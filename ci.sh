#!/bin/sh
# Continuous-integration entry point: build, full test suite, quick
# bench smoke (fig2 + sec6_8) and a bounded crashmc sweep, via the
# dune @ci alias (see the root dune file).  Any failure fails the run.
set -eu
cd "$(dirname "$0")"
exec dune build @ci "$@"
