(** Declarative persistent-struct layouts.

    A layout is built once per node/record type by appending named
    fields; offsets are computed by the builder (natural alignment:
    8 for words and byte regions, the value size for u8/u16/u32)
    instead of being hand-numbered at every call site.  [?at] pins a
    field to an explicit offset (for line-aligned regions or
    compatibility with an existing on-media format); [seal] fixes the
    object size.

    Fields marked [~transient:true] document stores that are
    {e deliberately} never flushed (version-lock words, selectively
    persisted arrays): {!Pobj} accessors suppress sanitizer tracking
    for them. *)

type kind =
  | Word  (** 8B OCaml int, 8-aligned — also pointer ({!Pmalloc.Pptr.t}) words *)
  | I64
  | U8
  | U16
  | U32
  | Bytes of int  (** opaque byte region *)
  | Slots of { stride : int; count : int }  (** fixed-stride element array *)

type field

type t

val create : string -> t

val tag : t -> string

val word : ?at:int -> ?transient:bool -> t -> string -> field

val i64 : ?at:int -> ?transient:bool -> t -> string -> field

val u8 : ?at:int -> ?transient:bool -> t -> string -> field

val u16 : ?at:int -> ?transient:bool -> t -> string -> field

val u32 : ?at:int -> ?transient:bool -> t -> string -> field

val bytes : ?at:int -> ?transient:bool -> t -> string -> int -> field

val slots : ?at:int -> ?transient:bool -> t -> string -> stride:int -> count:int -> field

(** Round the cursor up to an [n]-byte boundary. *)
val align : t -> int -> unit

(** Fix the object size (default: cursor rounded up to 8) and forbid
    further fields.  Returns the size. *)
val seal : ?size:int -> t -> int

(** Sealed size; raises if the layout is not sealed. *)
val size : t -> int

val fields : t -> field list

val off : field -> int

val field_size : field -> int

val is_transient : field -> bool

(** [slot f i] is the offset of element [i] of a [Slots] field
    (bounds-checked). *)
val slot : field -> int -> int

val stride : field -> int

val pp : Format.formatter -> t -> unit

val pp_field : Format.formatter -> field -> unit
