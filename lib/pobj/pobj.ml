module Layout = Layout
module Sanitizer = Sanitizer
module Pool = Nvm.Pool

type obj = { pool : Nvm.Pool.t; off : int }

let make pool off = { pool; off }

let pool o = o.pool

let base o = o.off

let shift o delta = { o with off = o.off + delta }

let equal a b = a.pool == b.pool && a.off = b.off

let pp ppf o = Format.fprintf ppf "%s+%d" (Pool.name o.pool) o.off

(* {2 Raw accessors} — offsets relative to the object base.  These are
   the escape hatch for variable-length regions (keys, values, anchor
   bytes) that a static layout can't name per element. *)

let read_int o rel = Pool.read_int o.pool (o.off + rel)

let write_int o rel v = Pool.write_int o.pool (o.off + rel) v

let read_i64 o rel = Pool.read_int64 o.pool (o.off + rel)

let write_i64 o rel v = Pool.write_int64 o.pool (o.off + rel) v

let read_u8 o rel = Pool.read_u8 o.pool (o.off + rel)

let write_u8 o rel v = Pool.write_u8 o.pool (o.off + rel) v

let read_u16 o rel = Pool.read_u16 o.pool (o.off + rel)

let write_u16 o rel v = Pool.write_u16 o.pool (o.off + rel) v

let read_u32 o rel = Pool.read_u32 o.pool (o.off + rel)

let write_u32 o rel v = Pool.write_u32 o.pool (o.off + rel) v

let read_string o rel len = Pool.read_string o.pool (o.off + rel) len

let write_string o rel s = Pool.write_string o.pool (o.off + rel) s

let blit_to_bytes o rel buf pos len = Pool.blit_to_bytes o.pool (o.off + rel) buf pos len

let compare_string o rel len s = Pool.compare_string o.pool (o.off + rel) len s

let fill_zero o rel len = Pool.fill_zero o.pool (o.off + rel) len

let cas o rel ~expected v = Pool.cas_int o.pool (o.off + rel) ~expected v

(* {2 Typed field accessors} *)

let suppress_if_transient f write =
  if Layout.is_transient f then Sanitizer.with_suppressed write else write ()

let get_int o f = read_int o (Layout.off f)

let set_int o f v = suppress_if_transient f (fun () -> write_int o (Layout.off f) v)

let get_i64 o f = read_i64 o (Layout.off f)

let set_i64 o f v = suppress_if_transient f (fun () -> write_i64 o (Layout.off f) v)

let get_u8 o f = read_u8 o (Layout.off f)

let set_u8 o f v = suppress_if_transient f (fun () -> write_u8 o (Layout.off f) v)

let get_u16 o f = read_u16 o (Layout.off f)

let set_u16 o f v = suppress_if_transient f (fun () -> write_u16 o (Layout.off f) v)

let get_u32 o f = read_u32 o (Layout.off f)

let set_u32 o f v = suppress_if_transient f (fun () -> write_u32 o (Layout.off f) v)

let cas_field o f ~expected v =
  suppress_if_transient f (fun () -> cas o (Layout.off f) ~expected v)

(* {2 Persistence} *)

let clwb o rel = Pool.clwb o.pool (o.off + rel)

let flush o rel len = Pool.flush_range o.pool (o.off + rel) len

let fence o = Pool.fence o.pool

let persist o rel len = Pool.persist o.pool (o.off + rel) len

let flush_field o f = flush o (Layout.off f) (Layout.field_size f)

let persist_field o f =
  flush_field o f;
  fence o

let flush_obj o layout = flush o 0 (Layout.size layout)

let persist_obj o layout =
  flush_obj o layout;
  fence o

(* Ordered-store primitives: write-and-flush without the trailing
   fence, so several can share one ordering point. *)

let p_store o f v =
  set_int o f v;
  flush_field o f

let p_cas o f ~expected v =
  let ok = cas_field o f ~expected v in
  if ok then flush_field o f;
  ok

(* {2 Transient stores} — deliberately never flushed (version-lock
   words, selectively persisted regions); exempt from the sanitizer. *)

let transient_store o rel v = Sanitizer.with_suppressed (fun () -> write_int o rel v)

let transient_cas o rel ~expected v =
  Sanitizer.with_suppressed (fun () -> cas o rel ~expected v)
