type kind =
  | Word
  | I64
  | U8
  | U16
  | U32
  | Bytes of int
  | Slots of { stride : int; count : int }

type field = {
  owner : string;
  name : string;
  off : int;
  size : int;
  kind : kind;
  transient : bool;
}

type t = {
  tag : string;
  mutable cursor : int;
  mutable fields : field list; (* reversed *)
  mutable sealed : int option;
}

let create tag = { tag; cursor = 0; fields = []; sealed = None }

let tag t = t.tag

let round_up x align = (x + align - 1) / align * align

let natural_align = function
  | Word | I64 -> 8
  | U8 -> 1
  | U16 -> 2
  | U32 -> 4
  | Bytes _ | Slots _ -> 8

let kind_size = function
  | Word | I64 -> 8
  | U8 -> 1
  | U16 -> 2
  | U32 -> 4
  | Bytes n -> n
  | Slots { stride; count } -> stride * count

let add ?at ?(transient = false) t name kind =
  if t.sealed <> None then
    invalid_arg (Printf.sprintf "Layout %s: field %S added after seal" t.tag name);
  if List.exists (fun f -> f.name = name) t.fields then
    invalid_arg (Printf.sprintf "Layout %s: duplicate field %S" t.tag name);
  let off =
    match at with
    | None -> round_up t.cursor (natural_align kind)
    | Some off ->
        if off < t.cursor then
          invalid_arg
            (Printf.sprintf "Layout %s: field %S at %d overlaps cursor %d" t.tag name
               off t.cursor)
        else if off land (natural_align kind - 1) <> 0 then
          invalid_arg
            (Printf.sprintf "Layout %s: field %S at %d misaligned" t.tag name off)
        else off
  in
  let size = kind_size kind in
  let field = { owner = t.tag; name; off; size; kind; transient } in
  t.cursor <- off + size;
  t.fields <- field :: t.fields;
  field

let word ?at ?transient t name = add ?at ?transient t name Word

let i64 ?at ?transient t name = add ?at ?transient t name I64

let u8 ?at ?transient t name = add ?at ?transient t name U8

let u16 ?at ?transient t name = add ?at ?transient t name U16

let u32 ?at ?transient t name = add ?at ?transient t name U32

let bytes ?at ?transient t name n = add ?at ?transient t name (Bytes n)

let slots ?at ?transient t name ~stride ~count =
  if stride <= 0 || count <= 0 then
    invalid_arg (Printf.sprintf "Layout %s: field %S empty slots" t.tag name);
  add ?at ?transient t name (Slots { stride; count })

let align t n =
  if t.sealed <> None then invalid_arg (Printf.sprintf "Layout %s: align after seal" t.tag);
  t.cursor <- round_up t.cursor n

let seal ?size t =
  let final =
    match size with
    | None -> round_up t.cursor 8
    | Some s ->
        if s < t.cursor then
          invalid_arg
            (Printf.sprintf "Layout %s: seal size %d below cursor %d" t.tag s t.cursor)
        else s
  in
  t.sealed <- Some final;
  final

let size t =
  match t.sealed with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Layout %s: size before seal" t.tag)

let fields t = List.rev t.fields

let off f = f.off

let field_size f = f.size

let is_transient f = f.transient

let slot f i =
  match f.kind with
  | Slots { stride; count } ->
      if i < 0 || i >= count then
        invalid_arg
          (Printf.sprintf "Layout %s.%s: slot %d outside [0, %d)" f.owner f.name i count)
      else f.off + (i * stride)
  | _ -> invalid_arg (Printf.sprintf "Layout %s.%s: not a slots field" f.owner f.name)

let stride f =
  match f.kind with
  | Slots { stride; _ } -> stride
  | _ -> invalid_arg (Printf.sprintf "Layout %s.%s: not a slots field" f.owner f.name)

let pp_field ppf f =
  Format.fprintf ppf "%s@%d+%d%s" f.name f.off f.size (if f.transient then " (t)" else "")

let pp ppf t =
  Format.fprintf ppf "@[<v>layout %s (%s):@,%a@]" t.tag
    (match t.sealed with Some s -> Printf.sprintf "%dB" s | None -> "unsealed")
    (Format.pp_print_list pp_field)
    (fields t)
