(** Persist-order sanitizer: a dynamic lint for missing flushes.

    When enabled, every store to a non-volatile pool opens a per-line
    obligation on the storing thread; a [clwb] of the line (by any
    thread) discharges it.  If the storing thread reaches an ordering
    point — a fence, which is also every lock release / pointer
    publish that persists something — with the obligation still open,
    the store could be lost in an arbitrary crash-reordering: it is
    reported with the span-phase path active at the store.

    Deliberately transient stores (version-lock words, selectively
    persisted permutation arrays) are exempted via
    {!with_suppressed} / [~transient] layout fields.  eADR machines
    emit no fence events, so no reports arise there.  This is a
    lightweight lint — {!Crashmc} remains the exhaustive checker; the
    sanitizer's dropped-flush detection is cross-checked against
    crashmc's mutation mode in CI. *)

type report = {
  r_pool : int;
  r_line : int;  (** 64B line index within the pool *)
  r_tid : int;  (** thread whose fence passed the unflushed store *)
  r_stack : string option;  (** span path of the store, e.g. ["smo;alloc"] *)
  r_count : int;  (** occurrences of this (pool, line, stack) *)
}

(** Install on a machine (replacing any previous sanitizer), with
    empty state.  Uses {!Nvm.Machine.set_persist_observer}; only one
    sanitizer is active process-wide. *)
val enable : Nvm.Machine.t -> unit

(** Uninstall if [machine] is the active one. *)
val disable : Nvm.Machine.t -> unit

val active : unit -> bool

(** Reset pending obligations and reports (e.g. between bench runs). *)
val clear : unit -> unit

(** [with_suppressed f]: stores made by the calling thread during [f]
    open no obligations (transient-by-design data). *)
val with_suppressed : (unit -> 'a) -> 'a

(** Aggregated findings, most frequent first. *)
val reports : unit -> report list

(** Total flagged store-lines (sum of report counts). *)
val total : unit -> int

val pp_report : Format.formatter -> report -> unit
