module Machine = Nvm.Machine

(* A store to a non-volatile line makes the storing thread the line's
   "owner": it owes a clwb before its own next ordering point.  Any
   thread's clwb of the line discharges the obligation (the staged
   snapshot contains the store); an ordering point (fence) by the
   owner with the obligation still open is a persist-order hazard —
   exactly the pattern behind missing-flush crash bugs.  eADR machines
   emit no fence events, so the sanitizer is naturally silent there
   (stores are already durable). *)

type report = {
  r_pool : int;
  r_line : int;
  r_tid : int;
  r_stack : string option;  (* span path of the unflushed store *)
  r_count : int;
}

type pending = { p_tid : int; p_stack : string option }

type state = {
  machine : Machine.t;
  owner : (int * int, pending) Hashtbl.t; (* (pool, line) -> last storer *)
  by_tid : (int, (int * int, unit) Hashtbl.t) Hashtbl.t;
  suppress : (int, int) Hashtbl.t; (* tid -> depth *)
  found : (int * int * string option, int ref * int) Hashtbl.t;
      (* (pool, line, stack) -> (count, sample tid) *)
}

let current : state option ref = ref None

let active () = !current <> None

let suppressed st tid =
  match Hashtbl.find_opt st.suppress tid with Some d -> d > 0 | None -> false

let tid_set st tid =
  match Hashtbl.find_opt st.by_tid tid with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.add st.by_tid tid s;
      s

let drop_pending st key =
  match Hashtbl.find_opt st.owner key with
  | None -> ()
  | Some p ->
      Hashtbl.remove st.owner key;
      (match Hashtbl.find_opt st.by_tid p.p_tid with
      | Some s -> Hashtbl.remove s key
      | None -> ())

let on_event st = function
  | Machine.Pe_store { tid; pool; line } ->
      if not (suppressed st tid) then begin
        let key = (pool, line) in
        (match Hashtbl.find_opt st.owner key with
        | Some p when p.p_tid <> tid -> (
            match Hashtbl.find_opt st.by_tid p.p_tid with
            | Some s -> Hashtbl.remove s key
            | None -> ())
        | _ -> ());
        Hashtbl.replace st.owner key { p_tid = tid; p_stack = Obs.Span.current_stack () };
        Hashtbl.replace (tid_set st tid) key ()
      end
  | Machine.Pe_clwb { pool; line; _ } -> drop_pending st (pool, line)
  | Machine.Pe_fence { tid } -> (
      match Hashtbl.find_opt st.by_tid tid with
      | None -> ()
      | Some s ->
          let flagged = Hashtbl.fold (fun key () acc -> key :: acc) s [] in
          List.iter
            (fun ((pool, line) as key) ->
              let stack =
                match Hashtbl.find_opt st.owner key with
                | Some p -> p.p_stack
                | None -> None
              in
              (match Hashtbl.find_opt st.found (pool, line, stack) with
              | Some (count, _) -> incr count
              | None -> Hashtbl.add st.found (pool, line, stack) (ref 1, tid));
              Hashtbl.remove st.owner key)
            flagged;
          Hashtbl.reset s)

let enable machine =
  (match !current with
  | Some st -> Machine.set_persist_observer st.machine None
  | None -> ());
  let st =
    {
      machine;
      owner = Hashtbl.create 1024;
      by_tid = Hashtbl.create 64;
      suppress = Hashtbl.create 64;
      found = Hashtbl.create 64;
    }
  in
  current := Some st;
  Machine.set_persist_observer machine (Some (on_event st))

let disable machine =
  match !current with
  | Some st when st.machine == machine ->
      Machine.set_persist_observer machine None;
      current := None
  | _ -> ()

let clear () =
  match !current with
  | None -> ()
  | Some st ->
      Hashtbl.reset st.owner;
      Hashtbl.reset st.by_tid;
      Hashtbl.reset st.found

let with_suppressed f =
  match !current with
  | None -> f ()
  | Some st ->
      let tid = Des.Sched.current_id () in
      let depth = match Hashtbl.find_opt st.suppress tid with Some d -> d | None -> 0 in
      Hashtbl.replace st.suppress tid (depth + 1);
      Fun.protect ~finally:(fun () -> Hashtbl.replace st.suppress tid depth) f

let reports () =
  match !current with
  | None -> []
  | Some st ->
      Hashtbl.fold
        (fun (pool, line, stack) (count, tid) acc ->
          { r_pool = pool; r_line = line; r_tid = tid; r_stack = stack; r_count = !count }
          :: acc)
        st.found []
      |> List.sort (fun a b ->
             compare (b.r_count, a.r_pool, a.r_line) (a.r_count, b.r_pool, b.r_line))

let total () = List.fold_left (fun acc r -> acc + r.r_count) 0 (reports ())

let pp_report ppf r =
  Format.fprintf ppf "unflushed-at-fence: pool %d line %d (byte %d) thread %d in %s (x%d)"
    r.r_pool r.r_line (r.r_line * 64) r.r_tid
    (Option.value ~default:"<no span>" r.r_stack)
    r.r_count
