(** Typed persistent objects over {!Nvm.Pool}.

    An {!obj} is a (pool, base offset) handle; field positions come
    from a declarative {!Layout} built once per record type, instead
    of integer offsets hand-threaded through every call site.  The
    layer also owns the persistence idioms — [flush]/[persist] of
    fields and whole objects, fence-free ordered stores ([p_store],
    [p_cas]) — and the boundary between persistent and
    deliberately-transient state: layout fields marked [~transient]
    and the [transient_*] primitives write without opening
    {!Sanitizer} obligations.

    The record is exposed so persistent-structure handle types can be
    defined as [type t = Pobj.obj = { pool : Nvm.Pool.t; off : int }]
    and keep pattern-matching on their fields. *)

module Layout = Layout
module Sanitizer = Sanitizer

type obj = { pool : Nvm.Pool.t; off : int }

val make : Nvm.Pool.t -> int -> obj

val pool : obj -> Nvm.Pool.t

val base : obj -> int

(** [shift o d] is the object at [base o + d] (e.g. a slot within a
    node). *)
val shift : obj -> int -> obj

val equal : obj -> obj -> bool

val pp : Format.formatter -> obj -> unit

(** {2 Raw accessors}

    Offsets are relative to the object base.  Escape hatch for
    variable-length regions (keys, values, anchors) that a static
    layout cannot name per element. *)

val read_int : obj -> int -> int

val write_int : obj -> int -> int -> unit

val read_i64 : obj -> int -> int64

val write_i64 : obj -> int -> int64 -> unit

val read_u8 : obj -> int -> int

val write_u8 : obj -> int -> int -> unit

val read_u16 : obj -> int -> int

val write_u16 : obj -> int -> int -> unit

val read_u32 : obj -> int -> int

val write_u32 : obj -> int -> int -> unit

val read_string : obj -> int -> int -> string

val write_string : obj -> int -> string -> unit

val blit_to_bytes : obj -> int -> bytes -> int -> int -> unit

val compare_string : obj -> int -> int -> string -> int

val fill_zero : obj -> int -> int -> unit

(** 8-byte atomic compare-and-swap at a base-relative offset. *)
val cas : obj -> int -> expected:int -> int -> bool

(** {2 Typed field accessors}

    Writes through a [~transient] field are automatically exempt from
    sanitizer tracking. *)

val get_int : obj -> Layout.field -> int

val set_int : obj -> Layout.field -> int -> unit

val get_i64 : obj -> Layout.field -> int64

val set_i64 : obj -> Layout.field -> int64 -> unit

val get_u8 : obj -> Layout.field -> int

val set_u8 : obj -> Layout.field -> int -> unit

val get_u16 : obj -> Layout.field -> int

val set_u16 : obj -> Layout.field -> int -> unit

val get_u32 : obj -> Layout.field -> int

val set_u32 : obj -> Layout.field -> int -> unit

val cas_field : obj -> Layout.field -> expected:int -> int -> bool

(** {2 Persistence} *)

val clwb : obj -> int -> unit

(** [flush o rel len]: clwb every line of [\[rel, rel+len)] (no
    fence). *)
val flush : obj -> int -> int -> unit

val fence : obj -> unit

(** [flush] + [fence]. *)
val persist : obj -> int -> int -> unit

val flush_field : obj -> Layout.field -> unit

val persist_field : obj -> Layout.field -> unit

(** Flush the whole sealed layout footprint. *)
val flush_obj : obj -> Layout.t -> unit

val persist_obj : obj -> Layout.t -> unit

(** [p_store o f v]: store then flush, {e no} fence — several ordered
    stores can share one ordering point. *)
val p_store : obj -> Layout.field -> int -> unit

(** CAS then flush on success, no fence. *)
val p_cas : obj -> Layout.field -> expected:int -> int -> bool

(** {2 Transient stores}

    Deliberately never flushed (version-lock words, selectively
    persisted regions); exempt from sanitizer tracking. *)

val transient_store : obj -> int -> int -> unit

val transient_cas : obj -> int -> expected:int -> int -> bool
