(** Persist-trace recorder.

    Hooks into {!Nvm.Machine}'s tracer and logs every store, [clwb],
    fence and eADR drain with its cache line and data, together with a
    snapshot of every pool's media image at recording start.  The
    resulting trace is a complete, self-contained description of the
    machine's persistence behaviour over a run: {!Enum} replays it to
    enumerate reachable crash images. *)

type t

(** Snapshot all pool media images and install the tracer.  Recording
    is per-machine; only one recorder should be active at a time. *)
val start : Nvm.Machine.t -> t

(** Detach the tracer.  The trace stays readable. *)
val stop : t -> unit

val machine : t -> Nvm.Machine.t

(** Events recorded so far — the op-boundary cursor used by the
    durable-linearizability oracle. *)
val seq : t -> int

val events : t -> Nvm.Machine.trace_event array

(** Media image of a pool at {!start} ([None]: created later, or
    volatile — both mean an all-zero base). *)
val base_media : t -> int -> Bytes.t option
