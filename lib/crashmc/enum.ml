module Machine = Nvm.Machine

let line_size = 64

type stats = {
  mutable crash_points : int;
  mutable states : int;
  mutable duplicates : int;
  mutable truncated_points : int;
}

type state = { at : int; label : string; restore : unit -> unit }

exception Stop

(* Per-line survivor choices at a crash point: [choices.(0)] is the
   fenced media content (what a pure-ADR crash leaves); the rest are
   snapshots the line took since its last fenced persist, newest
   first — any of them may have reached the media through a cache
   eviction or an un-fenced clwb draining from the WPQ. *)
type pending = { p_pool : int; p_line : int; choices : string array }

let iter ?(budget_per_point = 64) ?(seed = 0x5EEDL) ~trace ~f () =
  let machine = Trace.machine trace in
  let views = Machine.pool_views machine in
  let view_by_id = Hashtbl.create 16 in
  List.iter (fun pv -> Hashtbl.replace view_by_id pv.Machine.pv_id pv) views;
  (* Current fenced media image per persistent pool, evolved by replay. *)
  let media : (int, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  let media_of pool =
    match Hashtbl.find_opt media pool with
    | Some b -> b
    | None ->
        let b =
          match Trace.base_media trace pool with
          | Some base -> Bytes.copy base
          | None -> (
              match Hashtbl.find_opt view_by_id pool with
              | Some pv -> Bytes.make pv.Machine.pv_capacity '\000'
              | None -> invalid_arg "crashmc: trace names an unknown pool")
        in
        Hashtbl.replace media pool b;
        b
  in
  let evs = Trace.events trace in
  let n = Array.length evs in
  (* All lines ever named by the trace, sorted: the dedup-hash domain.
     Lines outside it are identical across every crash image. *)
  let touched =
    let tbl = Hashtbl.create 256 in
    Array.iter
      (fun ev ->
        match ev with
        | Machine.Ev_store { pool; line; _ }
        | Machine.Ev_clwb { pool; line; _ }
        | Machine.Ev_drain { pool; line; _ } ->
            Hashtbl.replace tbl (pool, line) ()
        | Machine.Ev_fence _ -> ())
      evs;
    let l = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] in
    Array.of_list (List.sort compare l)
  in
  (* Un-fenced snapshot candidates per line, newest first. *)
  let cand : (int * int, (int * string) list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_cand pool line seq data =
    match Hashtbl.find_opt cand (pool, line) with
    | Some r -> r := (seq, data) :: !r
    | None -> Hashtbl.add cand (pool, line) (ref [ (seq, data) ])
  in
  let prune pool line upto =
    match Hashtbl.find_opt cand (pool, line) with
    | None -> ()
    | Some r ->
        r := List.filter (fun (s, _) -> s > upto) !r;
        if !r = [] then Hashtbl.remove cand (pool, line)
  in
  let apply_media pool line data =
    Bytes.blit_string data 0 (media_of pool) (line * line_size) line_size
  in
  let staged : (int, (int * int * string * int) list ref) Hashtbl.t =
    Hashtbl.create 4
  in
  let stats = { crash_points = 0; states = 0; duplicates = 0; truncated_points = 0 } in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let rng = Des.Rng.create ~seed in
  let restore () =
    Machine.crash machine Machine.Strict;
    List.iter
      (fun pv ->
        if pv.Machine.pv_volatile then pv.Machine.pv_restore Bytes.empty
        else pv.Machine.pv_restore (media_of pv.Machine.pv_id))
      views
  in
  let state_key () =
    let buf = Buffer.create (Array.length touched * (line_size + 8)) in
    Array.iter
      (fun (pool, line) ->
        Buffer.add_string buf (string_of_int pool);
        Buffer.add_char buf ':';
        Buffer.add_string buf (string_of_int line);
        Buffer.add_subbytes buf (media_of pool) (line * line_size) line_size)
      touched;
    Digest.string (Buffer.contents buf)
  in
  (* Yield the current media (with any survivor overrides already
     blitted in) as one crash state, deduplicating by content hash. *)
  let yield at label =
    let key = state_key () in
    if Hashtbl.mem seen key then stats.duplicates <- stats.duplicates + 1
    else begin
      Hashtbl.replace seen key ();
      stats.states <- stats.states + 1;
      f { at; label; restore }
    end
  in
  let crash_point at =
    stats.crash_points <- stats.crash_points + 1;
    let pending =
      Hashtbl.fold
        (fun (pool, line) r acc ->
          let base =
            Bytes.sub_string (media_of pool) (line * line_size) line_size
          in
          let snaps =
            List.fold_left
              (fun acc (_, d) ->
                if d = base || List.mem d acc then acc else d :: acc)
              []
              (List.rev !r) (* oldest..newest; fold keeps newest last *)
          in
          match List.rev snaps (* newest first *) with
          | [] -> acc
          | snaps ->
              { p_pool = pool; p_line = line; choices = Array.of_list (base :: snaps) }
              :: acc)
        cand []
    in
    let pending =
      Array.of_list
        (List.sort (fun a b -> compare (a.p_pool, a.p_line) (b.p_pool, b.p_line)) pending)
    in
    let k = Array.length pending in
    if k = 0 then yield at "fenced image"
    else begin
      let with_vector vec label =
        Array.iteri
          (fun i c -> if c > 0 then apply_media pending.(i).p_pool pending.(i).p_line pending.(i).choices.(c))
          vec;
        Fun.protect
          ~finally:(fun () ->
            Array.iteri
              (fun i c ->
                if c > 0 then
                  apply_media pending.(i).p_pool pending.(i).p_line pending.(i).choices.(0))
              vec)
          (fun () -> yield at (label ()))
      in
      let describe vec () =
        let b = Buffer.create 64 in
        Buffer.add_string b "survivors";
        Array.iteri
          (fun i c ->
            if c > 0 then
              Buffer.add_string b
                (Printf.sprintf " p%d:L%d#%d" pending.(i).p_pool pending.(i).p_line c))
          vec;
        if Buffer.length b = String.length "survivors" then "fenced image"
        else Buffer.contents b
      in
      let total =
        Array.fold_left
          (fun acc p ->
            if acc > budget_per_point then acc
            else acc * Array.length p.choices)
          1 pending
      in
      if total <= budget_per_point then begin
        (* Exhaustive mixed-radix sweep; vector 0 = pure fenced image. *)
        let vec = Array.make k 0 in
        let rec next i =
          if i < 0 then false
          else if vec.(i) + 1 < Array.length pending.(i).choices then begin
            vec.(i) <- vec.(i) + 1;
            true
          end
          else begin
            vec.(i) <- 0;
            next (i - 1)
          end
        in
        let continue = ref true in
        while !continue do
          with_vector vec (describe vec);
          continue := next (k - 1)
        done
      end
      else begin
        stats.truncated_points <- stats.truncated_points + 1;
        let budget = ref budget_per_point in
        let emit vec =
          if !budget > 0 then begin
            decr budget;
            with_vector vec (describe vec)
          end
        in
        (* Always: the pure fenced image and the everything-newest image. *)
        emit (Array.make k 0);
        emit (Array.map (fun _ -> 1) pending);
        (* Each line surviving alone, at each of its snapshots. *)
        Array.iteri
          (fun i p ->
            for c = 1 to Array.length p.choices - 1 do
              let vec = Array.make k 0 in
              vec.(i) <- c;
              emit vec
            done)
          pending;
        (* Random combinations up to the budget. *)
        while !budget > 0 do
          let vec =
            Array.map (fun p -> Des.Rng.int rng (Array.length p.choices)) pending
          in
          emit vec
        done
      end
    end
  in
  (try
     for i = 0 to n - 1 do
       match evs.(i) with
       | Machine.Ev_store { pool; line; data } -> add_cand pool line i data
       | Machine.Ev_clwb { tid; pool; line; data } ->
           add_cand pool line i data;
           (match Hashtbl.find_opt staged tid with
           | Some r -> r := (pool, line, data, i) :: !r
           | None -> Hashtbl.add staged tid (ref [ (pool, line, data, i) ]))
       | Machine.Ev_drain { pool; line; data } ->
           apply_media pool line data;
           prune pool line i
       | Machine.Ev_fence { tid } ->
           crash_point i;
           (match Hashtbl.find_opt staged tid with
           | None -> ()
           | Some r ->
               List.iter
                 (fun (pool, line, data, seq) ->
                   apply_media pool line data;
                   prune pool line seq)
                 (List.rev !r);
               Hashtbl.remove staged tid)
     done;
     crash_point n
   with Stop -> ());
  stats
