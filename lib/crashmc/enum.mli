(** Crash-state enumeration.

    Replays a persist trace through the ADR state machine and
    generates every crash image consistent with it:

    - content persisted by a [clwb]+[sfence] pair ("fenced") must
      survive — it forms the base image at each crash point;
    - every snapshot a line took since its last fenced persist (one
      per store, plus staged clwb snapshots) may additionally survive,
      independently per line, modelling arbitrary cache evictions and
      un-fenced flushes draining from the WPQ.

    Crash points are placed just before every fence (where the
    un-fenced survivor set for that epoch is maximal — any mid-epoch
    crash image is one of the per-line snapshot combinations, so this
    placement loses no states) and at the end of the trace.  States
    are deduplicated by content hash over all trace-touched lines; a
    per-point budget bounds the combinatorial survivor space, always
    keeping the pure fenced image, the all-newest image, every
    single-line deviation, and seeded-random combinations. *)

type stats = {
  mutable crash_points : int;
  mutable states : int;  (** distinct states passed to [f] *)
  mutable duplicates : int;  (** hash-dedup suppressions *)
  mutable truncated_points : int;  (** points that hit the budget *)
}

type state = {
  at : int;  (** crash position: before trace event [at] *)
  label : string;  (** human-readable survivor-choice description *)
  restore : unit -> unit;
      (** materialize this image: volatile machine state is dropped
          ({!Nvm.Machine.crash} [Strict]) and every pool's media and
          cache are overwritten with the image.  Only valid while the
          callback runs. *)
}

(** Raise from the callback to abort enumeration early. *)
exception Stop

(** [iter ~trace ~f ()] yields every (deduplicated, budgeted) crash
    state.  The pools are only actually rewritten when the callback
    invokes [state.restore]. *)
val iter :
  ?budget_per_point:int ->
  ?seed:int64 ->
  trace:Trace.t ->
  f:(state -> unit) ->
  unit ->
  stats
