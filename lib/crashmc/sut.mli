(** Systems under test.

    Bundles each index with the machine it lives on and the three
    hooks the harness needs: [recover] (rebuild volatile state from a
    restored image), [invariants] (the index's own structural
    checker), and [quiesce] (run before enumeration: complete
    background work — SMO drain, epoch-deferred frees — so no stale
    closure from the recorded run fires on a restored image). *)

type kind = Pactree | Pdlart | Fastfair | Bztree | Fptree | Custom of string

(** The built-in index SUTs ({!Custom} systems are constructed with
    {!custom}, not listed here). *)
val all : kind list

val name : kind -> string

val of_string : string -> kind option

type t

(** [make kind] builds the index on a fresh single-socket machine.
    [capacity] is bytes per persistent pool — keep it small; every
    materialized crash state blits the full image. *)
val make : ?capacity:int -> kind -> t

(** [custom ~name ~machine ~index ~recover ()] wraps an arbitrary
    system (e.g. a sharded {e svc} store) for the harness.  The caller
    is responsible for keeping pool capacities small — every
    materialised crash state blits the full image of every pool on
    [machine]. *)
val custom :
  name:string ->
  machine:Nvm.Machine.t ->
  index:Baselines.Index_intf.index ->
  recover:(unit -> unit) ->
  ?invariants:(unit -> unit) ->
  ?quiesce:(unit -> unit) ->
  unit ->
  t

val kind : t -> kind

val machine : t -> Nvm.Machine.t

val index : t -> Baselines.Index_intf.index

val recover : t -> unit

val invariants : t -> unit

val quiesce : t -> unit
