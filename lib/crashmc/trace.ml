module Machine = Nvm.Machine

type t = {
  machine : Machine.t;
  mutable events_rev : Machine.trace_event list;
  mutable count : int;
  base : (int, Bytes.t) Hashtbl.t; (* pool id -> media image at [start] *)
  mutable active : bool;
  mutable cache : Machine.trace_event array option;
}

let start machine =
  let t =
    {
      machine;
      events_rev = [];
      count = 0;
      base = Hashtbl.create 8;
      active = true;
      cache = None;
    }
  in
  List.iter
    (fun pv ->
      if not pv.Machine.pv_volatile then
        Hashtbl.replace t.base pv.Machine.pv_id (pv.Machine.pv_media ()))
    (Machine.pool_views machine);
  Machine.set_tracer machine
    (Some
       (fun ev ->
         t.events_rev <- ev :: t.events_rev;
         t.count <- t.count + 1;
         t.cache <- None));
  t

let stop t =
  if t.active then begin
    Machine.set_tracer t.machine None;
    t.active <- false
  end

let machine t = t.machine

let seq t = t.count

let events t =
  match t.cache with
  | Some a -> a
  | None ->
      let a = Array.of_list (List.rev t.events_rev) in
      t.cache <- Some a;
      a

let base_media t pool_id = Hashtbl.find_opt t.base pool_id
