module Key = Pactree.Key
module Index = Baselines.Index_intf

type violation = { v_at : int; v_label : string; v_msg : string }

type report = {
  sut : Sut.kind;
  ops : int;
  trace_events : int;
  stats : Enum.stats;
  checked : int;
  violations : violation list;
}

let ok r = r.violations = []

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s: %d ops, %d trace events, %d crash points, %d states (%d dup-suppressed, %d budget-truncated), %d checked, %d violations@]"
    (Sut.name r.sut) r.ops r.trace_events r.stats.Enum.crash_points
    r.stats.Enum.states r.stats.Enum.duplicates r.stats.Enum.truncated_points
    r.checked (List.length r.violations);
  List.iteri
    (fun i v ->
      if i < 10 then
        Format.fprintf ppf "@,  [at=%d %s] %s" v.v_at v.v_label v.v_msg)
    r.violations;
  if List.length r.violations > 10 then
    Format.fprintf ppf "@,  ... and %d more" (List.length r.violations - 10)

(* ---------- workloads ---------- *)

(* Key construction is kept seed-deterministic: the point of a crashmc
   run is an exhaustive, reproducible state sweep, so workloads are
   generated up front from an explicit seed. *)
let insert_workload ?(base = 1000) n =
  List.init n (fun i -> Oracle.Insert (Key.of_int (base + (i * 7)), i))

let mixed_workload ~seed n =
  let rng = Des.Rng.create ~seed:(Int64.of_int seed) in
  let live = ref [] and nlive = ref 0 in
  List.init n (fun i ->
      if !nlive > 0 && Des.Rng.int rng 4 = 0 then begin
        let j = Des.Rng.int rng !nlive in
        let k = List.nth !live j in
        live := List.filteri (fun idx _ -> idx <> j) !live;
        decr nlive;
        Oracle.Delete k
      end
      else begin
        let k = Key.of_int (Des.Rng.int rng 10_000) in
        if not (List.exists (Key.equal k) !live) then begin
          live := k :: !live;
          incr nlive
        end;
        Oracle.Insert (k, i)
      end)

(* ---------- the checker ---------- *)

let chunk n l =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if k = 0 then go (List.rev cur :: acc) [ x ] (n - 1) rest
        else go acc (x :: cur) (k - 1) rest
  in
  go [] [] n l

let run ?(budget_per_point = 48) ?(max_states = 20_000) ?(max_violations = 20)
    ?(seed = 1) ?(batch = 1) ?apply ~sut ~ops () =
  let index = Sut.index sut in
  let apply =
    match apply with
    | Some f -> f
    | None -> fun chunk -> List.iter (Oracle.run_op index) chunk
  in
  let trace = Trace.start (Sut.machine sut) in
  let history =
    (* Each chunk of [batch] ops shares one trace window: a crash
       inside it puts every member in flight (the oracle then allows
       any in-order prefix to have applied — the group-commit
       contract). [batch = 1] degenerates to the single-writer case. *)
    List.concat_map
      (fun ops ->
        let start_seq = Trace.seq trace in
        apply ops;
        let end_seq = Trace.seq trace in
        List.map (fun op -> { Oracle.op; start_seq; end_seq }) ops)
      (chunk (max 1 batch) ops)
  in
  Trace.stop trace;
  (* Complete background work (SMO drain, epoch-deferred frees) so no
     closure from the recorded run fires while we materialise images. *)
  Sut.quiesce sut;
  let checked = ref 0 in
  let violations = ref [] in
  let stats =
    Enum.iter ~budget_per_point ~seed:(Int64.of_int seed) ~trace
      ~f:(fun st ->
        st.Enum.restore ();
        incr checked;
        let vs =
          match Sut.recover sut with
          | () ->
              Oracle.check ~history ~at:st.Enum.at
                ~lookup:(Index.lookup index)
                ~scan:(Index.scan index)
                ~invariants:(fun () -> Sut.invariants sut)
          | exception exn ->
              [ Printf.sprintf "recover raised %s" (Printexc.to_string exn) ]
        in
        List.iter
          (fun v_msg ->
            violations :=
              { v_at = st.Enum.at; v_label = st.Enum.label; v_msg } :: !violations)
          vs;
        if List.length !violations >= max_violations || !checked >= max_states
        then raise Enum.Stop)
      ()
  in
  {
    sut = Sut.kind sut;
    ops = List.length ops;
    trace_events = Trace.seq trace;
    stats;
    checked = !checked;
    violations = List.rev !violations;
  }
