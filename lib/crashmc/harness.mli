(** Recovery replay harness: record a persist trace of a single-writer
    op sequence, enumerate every (budgeted) crash image, materialise
    each one, run the index's recovery and check durable
    linearizability against the {!Oracle}. *)

type violation = { v_at : int; v_label : string; v_msg : string }

type report = {
  sut : Sut.kind;
  ops : int;
  trace_events : int;
  stats : Enum.stats;
  checked : int;  (** states materialised and checked *)
  violations : violation list;
}

val ok : report -> bool

val pp_report : Format.formatter -> report -> unit

(** [n] deterministic fresh-key inserts (drives node splits). *)
val insert_workload : ?base:int -> int -> Oracle.op list

(** Seed-deterministic insert/delete mix (~25% deletes of live keys). *)
val mixed_workload : seed:int -> int -> Oracle.op list

(** Drive [ops] against the SUT while recording, then sweep crash
    states.  Stops early after [max_violations] violations or
    [max_states] checked states.  The SUT is consumed: its pools end
    up holding the last materialised image.

    [batch] groups the ops into chunks sharing one trace window, for
    checking group-commit systems: a crash inside a chunk puts every
    chunk member in flight (the oracle accepts any in-order prefix of
    them).  [apply] overrides how a chunk is executed (default:
    sequential {!Oracle.run_op} against the SUT's index) — e.g. route
    it through a store's [commit_batch]. *)
val run :
  ?budget_per_point:int ->
  ?max_states:int ->
  ?max_violations:int ->
  ?seed:int ->
  ?batch:int ->
  ?apply:(Oracle.op list -> unit) ->
  sut:Sut.t ->
  ops:Oracle.op list ->
  unit ->
  report
