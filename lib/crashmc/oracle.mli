(** Durable-linearizability oracle for single-writer histories.

    Given the sequence of index operations that produced a persist
    trace — each tagged with the trace cursors at which it started and
    finished — and a crash position inside the trace, the oracle
    derives the set of states the recovered index is allowed to be in:

    - every operation that completed before the crash is acknowledged
      and its effect must survive recovery;
    - operations spanning the crash are {e in flight}: any in-order
      prefix of them may have taken effect, nothing else — checked
      jointly across keys, so a state where a later batch member
      applied without an earlier one is rejected.  A single-writer
      history has at most one; a group-commit batch puts every member
      of the interrupted batch in flight (the harness tags them with
      the batch's shared trace window);
    - no other key may appear, scans must be sorted, complete and
      phantom-free, and the index's own invariant checker must pass. *)

type op = Insert of Pactree.Key.t * int | Delete of Pactree.Key.t

type entry = {
  op : op;
  start_seq : int;  (** {!Trace.seq} just before issuing the op *)
  end_seq : int;  (** {!Trace.seq} just after it returned *)
}

type history = entry list

val op_key : op -> Pactree.Key.t

(** Execute an op against a live index. *)
val run_op : Baselines.Index_intf.index -> op -> unit

(** [check ~history ~at ~lookup ~scan ~invariants] validates a
    recovered index against the history truncated at trace position
    [at].  Exceptions raised by the probes are reported as violations,
    not propagated.  Returns violation descriptions; [[]] = legal. *)
val check :
  history:history ->
  at:int ->
  lookup:(Pactree.Key.t -> int option) ->
  scan:(Pactree.Key.t -> int -> (Pactree.Key.t * int) list) ->
  invariants:(unit -> unit) ->
  string list
