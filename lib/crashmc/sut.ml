module Machine = Nvm.Machine
module Tree = Pactree.Tree
module Index = Baselines.Index_intf

type kind = Pactree | Pdlart | Fastfair | Bztree | Fptree | Custom of string

let all = [ Pactree; Pdlart; Fastfair; Bztree; Fptree ]

let name = function
  | Pactree -> "pactree"
  | Pdlart -> "pdlart"
  | Fastfair -> "fastfair"
  | Bztree -> "bztree"
  | Fptree -> "fptree"
  | Custom s -> s

let of_string = function
  | "pactree" -> Some Pactree
  | "pdlart" | "pdl-art" -> Some Pdlart
  | "fastfair" -> Some Fastfair
  | "bztree" -> Some Bztree
  | "fptree" -> Some Fptree
  | _ -> None

type t = {
  kind : kind;
  machine : Machine.t;
  index : Index.index;
  recover : unit -> unit;
  invariants : unit -> unit;
  quiesce : unit -> unit;
}

let epoch_quiesce epoch =
  (* Run leftover deferred frees now: their closures capture volatile
     offsets from the recorded run and must not fire on a restored
     image. *)
  let budget = ref 8 in
  while Pactree.Epoch.pending epoch > 0 && !budget > 0 do
    Pactree.Epoch.try_advance epoch;
    decr budget
  done

let custom ~name ~machine ~index ~recover ?(invariants = ignore) ?(quiesce = ignore)
    () =
  { kind = Custom name; machine; index; recover; invariants; quiesce }

let make ?(capacity = 1 lsl 18) kind =
  let machine = Machine.create ~numa_count:1 () in
  match kind with
  | Custom _ -> invalid_arg "Sut.make: use Sut.custom for custom systems"
  | Pactree ->
      let cfg =
        {
          Tree.default_config with
          data_capacity = capacity;
          search_capacity = capacity;
        }
      in
      let t = Tree.create machine ~cfg () in
      {
        kind;
        machine;
        index = Baselines.Pactree_index.wrap t;
        recover = (fun () -> ignore (Tree.recover t : int));
        invariants = (fun () -> ignore (Tree.check_invariants t : int));
        quiesce =
          (fun () ->
            Tree.drain_smo t;
            epoch_quiesce (Tree.epoch t));
      }
  | Pdlart ->
      let t = Baselines.Pdlart.create machine ~capacity () in
      {
        kind;
        machine;
        index = Index.Index ((module Baselines.Pdlart.Index), t);
        recover = (fun () -> Baselines.Pdlart.recover t);
        invariants = ignore;
        quiesce = (fun () -> epoch_quiesce (Baselines.Pdlart.epoch t));
      }
  | Fastfair ->
      let t = Baselines.Fastfair.create machine ~capacity () in
      {
        kind;
        machine;
        index = Index.Index ((module Baselines.Fastfair.Index), t);
        recover = (fun () -> Baselines.Fastfair.recover t);
        invariants = (fun () -> ignore (Baselines.Fastfair.check_invariants t : int));
        quiesce = ignore;
      }
  | Bztree ->
      let t = Baselines.Bztree.create machine ~capacity () in
      {
        kind;
        machine;
        index = Index.Index ((module Baselines.Bztree.Index), t);
        recover = (fun () -> Baselines.Bztree.recover t);
        invariants = (fun () -> ignore (Baselines.Bztree.check_invariants t : int));
        quiesce = ignore;
      }
  | Fptree ->
      let t = Baselines.Fptree.create machine ~capacity () in
      {
        kind;
        machine;
        index = Index.Index ((module Baselines.Fptree.Index), t);
        recover = (fun () -> Baselines.Fptree.recover t);
        invariants = (fun () -> ignore (Baselines.Fptree.check_invariants t : int));
        quiesce = ignore;
      }

let kind t = t.kind

let machine t = t.machine

let index t = t.index

let recover t = t.recover ()

let invariants t = t.invariants ()

let quiesce t = t.quiesce ()
