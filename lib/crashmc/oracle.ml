module Key = Pactree.Key
module Index = Baselines.Index_intf

module KMap = Map.Make (struct
  type t = Key.t

  let compare = Key.compare
end)

type op = Insert of Key.t * int | Delete of Key.t

type entry = { op : op; start_seq : int; end_seq : int }

type history = entry list

let op_key = function Insert (k, _) -> k | Delete k -> k

let run_op index = function
  | Insert (k, v) -> Index.insert index k v
  | Delete k -> ignore (Index.delete index k)

let apply map = function
  | Insert (k, v) -> KMap.add k v map
  | Delete k -> KMap.remove k map

(* State of the acknowledged history at a crash before trace event
   [at]: ops whose last persistence event precedes the crash point are
   decided (their effect must survive — the persistent state is
   indistinguishable from one where the op returned and was
   acknowledged); ops spanning the point are in flight (each may or
   may not have taken effect, in program order — with group-commit
   batches every member of the interrupted batch shares the crash
   window); later ops never started.  The universe collects every key
   the history may have touched by [at]. *)
let split_at history ~at =
  let rec go decided inflight universe = function
    | [] -> (decided, List.rev inflight, universe)
    | e :: rest ->
        if e.end_seq <= at then
          go (apply decided e.op) inflight (KMap.add (op_key e.op) () universe) rest
        else if e.start_seq < at then
          go decided (e.op :: inflight) (KMap.add (op_key e.op) () universe) rest
        else (decided, List.rev inflight, universe)
  in
  go KMap.empty [] KMap.empty history

let pp_value = function Some v -> string_of_int v | None -> "absent"

let check ~history ~at ~lookup ~scan ~invariants =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (try invariants ()
   with exn -> fail "invariant check failed: %s" (Printexc.to_string exn));
  let decided, inflight, universe = split_at history ~at in
  (* Reachable states: the decided map plus some in-order prefix of
     the in-flight ops, applied jointly.  Recovery replays the
     interrupted batch up to its first hole, so e.g. the second batch
     member cannot have applied without the first — validating keys
     independently would accept exactly such hole-skipping states.
     [states.(i)] is the map after the length-[i] prefix. *)
  let nprefix = List.length inflight + 1 in
  let states = Array.make nprefix decided in
  List.iteri (fun i op -> states.(i + 1) <- apply states.(i) op) inflight;
  let value_at i k = KMap.find_opt k states.(i) in
  let all_prefixes = List.init nprefix Fun.id in
  let values_over prefixes k =
    List.sort_uniq compare (List.map (fun i -> value_at i k) prefixes)
  in
  let observed = ref [] and lookups_clean = ref true in
  let check_key k =
    match lookup k with
    | got ->
        observed := (k, got) :: !observed;
        let want = values_over all_prefixes k in
        if not (List.mem got want) then begin
          lookups_clean := false;
          fail "key %a: lookup %s, expected one of {%s}"
            (fun () k -> Format.asprintf "%a" Key.pp k)
            k (pp_value got)
            (String.concat ", " (List.map pp_value want))
        end
    | exception exn ->
        lookups_clean := false;
        fail "key %a: lookup raised %s"
          (fun () k -> Format.asprintf "%a" Key.pp k)
          k (Printexc.to_string exn)
  in
  KMap.iter (fun k () -> check_key k) universe;
  (* Joint consistency: one prefix must explain every lookup at once. *)
  let feasible =
    List.filter
      (fun i -> List.for_all (fun (k, got) -> value_at i k = got) !observed)
      all_prefixes
  in
  if feasible = [] && !lookups_clean then
    fail
      "state matches no in-order prefix of the %d in-flight ops: every key is \
       individually reachable but no single prefix explains all lookups jointly"
      (List.length inflight);
  (* Scans read the same recovered image as the lookups, so pin them
     to the lookup-feasible prefixes; if none survived, earlier
     violations already cover it — fall back to all prefixes rather
     than cascade noise. *)
  let prefixes = if feasible = [] then all_prefixes else feasible in
  let allowed k = values_over prefixes k in
  (* Range scan: complete, duplicate-free, sorted, no phantoms. *)
  let scan_from = Option.map fst (KMap.min_binding_opt universe) in
  (match scan_from with
  | None -> ()
  | Some from -> (
      let wanted = KMap.cardinal decided + List.length inflight + 2 in
      match scan from wanted with
      | results ->
          let rec sorted = function
            | (a, _) :: ((b, _) :: _ as rest) ->
                if Key.compare a b >= 0 then
                  fail "scan not strictly sorted at %a" (fun () k ->
                      Format.asprintf "%a" Key.pp k)
                    b;
                sorted rest
            | _ -> ()
          in
          sorted results;
          List.iter
            (fun (k, v) ->
              let want = allowed k in
              if not (List.exists (function Some _ as w -> w = Some v | None -> false) want)
              then
                if want = [ None ] then
                  fail "scan: phantom key %a" (fun () k ->
                      Format.asprintf "%a" Key.pp k)
                    k
                else
                  fail "scan: key %a has value %d, expected one of {%s}"
                    (fun () k -> Format.asprintf "%a" Key.pp k)
                    k v
                    (String.concat ", " (List.map pp_value want)))
            results;
          let seen = List.fold_left (fun m (k, _) -> KMap.add k () m) KMap.empty results in
          KMap.iter
            (fun k _ ->
              let may_be_absent = List.mem None (allowed k) in
              if (not may_be_absent) && not (KMap.mem k seen) then
                fail "scan: acknowledged key %a missing" (fun () k ->
                    Format.asprintf "%a" Key.pp k)
                  k)
            decided
      | exception exn -> fail "scan raised %s" (Printexc.to_string exn)));
  List.rev !violations
