module Key = Pactree.Key
module Index = Baselines.Index_intf

module KMap = Map.Make (struct
  type t = Key.t

  let compare = Key.compare
end)

type op = Insert of Key.t * int | Delete of Key.t

type entry = { op : op; start_seq : int; end_seq : int }

type history = entry list

let op_key = function Insert (k, _) -> k | Delete k -> k

let run_op index = function
  | Insert (k, v) -> Index.insert index k v
  | Delete k -> ignore (Index.delete index k)

let apply map = function
  | Insert (k, v) -> KMap.add k v map
  | Delete k -> KMap.remove k map

(* State of the acknowledged history at a crash before trace event
   [at]: ops whose last persistence event precedes the crash point are
   decided (their effect must survive — the persistent state is
   indistinguishable from one where the op returned and was
   acknowledged); ops spanning the point are in flight (each may or
   may not have taken effect, in program order — with group-commit
   batches every member of the interrupted batch shares the crash
   window); later ops never started.  The universe collects every key
   the history may have touched by [at]. *)
let split_at history ~at =
  let rec go decided inflight universe = function
    | [] -> (decided, List.rev inflight, universe)
    | e :: rest ->
        if e.end_seq <= at then
          go (apply decided e.op) inflight (KMap.add (op_key e.op) () universe) rest
        else if e.start_seq < at then
          go decided (e.op :: inflight) (KMap.add (op_key e.op) () universe) rest
        else (decided, List.rev inflight, universe)
  in
  go KMap.empty [] KMap.empty history

let pp_value = function Some v -> string_of_int v | None -> "absent"

let check ~history ~at ~lookup ~scan ~invariants =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (try invariants ()
   with exn -> fail "invariant check failed: %s" (Printexc.to_string exn));
  let decided, inflight, universe = split_at history ~at in
  let allowed k =
    let base = KMap.find_opt k decided in
    (* Applying any in-order prefix of the in-flight ops leaves [k] at
       [base] (no op on [k] applied yet) or at the effect of whichever
       op on [k] came last in that prefix — i.e. any single in-flight
       effect on [k] is reachable, since each op overwrites wholesale. *)
    base
    :: List.filter_map
         (function
           | Insert (k', v') when Key.equal k k' -> Some (Some v')
           | Delete k' when Key.equal k k' -> Some None
           | _ -> None)
         inflight
  in
  let check_key k =
    let want = allowed k in
    match lookup k with
    | got ->
        if not (List.mem got want) then
          fail "key %a: lookup %s, expected one of {%s}"
            (fun () k -> Format.asprintf "%a" Key.pp k)
            k (pp_value got)
            (String.concat ", " (List.map pp_value want))
    | exception exn ->
        fail "key %a: lookup raised %s"
          (fun () k -> Format.asprintf "%a" Key.pp k)
          k (Printexc.to_string exn)
  in
  KMap.iter (fun k () -> check_key k) universe;
  (* Range scan: complete, duplicate-free, sorted, no phantoms. *)
  let scan_from = Option.map fst (KMap.min_binding_opt universe) in
  (match scan_from with
  | None -> ()
  | Some from -> (
      let wanted = KMap.cardinal decided + List.length inflight + 2 in
      match scan from wanted with
      | results ->
          let rec sorted = function
            | (a, _) :: ((b, _) :: _ as rest) ->
                if Key.compare a b >= 0 then
                  fail "scan not strictly sorted at %a" (fun () k ->
                      Format.asprintf "%a" Key.pp k)
                    b;
                sorted rest
            | _ -> ()
          in
          sorted results;
          List.iter
            (fun (k, v) ->
              let want = allowed k in
              if not (List.exists (function Some _ as w -> w = Some v | None -> false) want)
              then
                if want = [ None ] then
                  fail "scan: phantom key %a" (fun () k ->
                      Format.asprintf "%a" Key.pp k)
                    k
                else
                  fail "scan: key %a has value %d, expected one of {%s}"
                    (fun () k -> Format.asprintf "%a" Key.pp k)
                    k v
                    (String.concat ", " (List.map pp_value want)))
            results;
          let seen = List.fold_left (fun m (k, _) -> KMap.add k () m) KMap.empty results in
          KMap.iter
            (fun k _ ->
              let may_be_absent =
                List.exists
                  (function Delete k' -> Key.equal k k' | _ -> false)
                  inflight
              in
              if (not may_be_absent) && not (KMap.mem k seen) then
                fail "scan: acknowledged key %a missing" (fun () k ->
                    Format.asprintf "%a" Key.pp k)
                  k)
            decided
      | exception exn -> fail "scan raised %s" (Printexc.to_string exn)));
  List.rev !violations
