module Key = Pactree.Key
module Index = Baselines.Index_intf

module KMap = Map.Make (struct
  type t = Key.t

  let compare = Key.compare
end)

type op = Insert of Key.t * int | Delete of Key.t

type entry = { op : op; start_seq : int; end_seq : int }

type history = entry list

let op_key = function Insert (k, _) -> k | Delete k -> k

let run_op index = function
  | Insert (k, v) -> Index.insert index k v
  | Delete k -> ignore (Index.delete index k)

let apply map = function
  | Insert (k, v) -> KMap.add k v map
  | Delete k -> KMap.remove k map

(* State of the acknowledged history at a crash before trace event
   [at]: ops whose last persistence event precedes the crash point are
   decided (their effect must survive — the persistent state is
   indistinguishable from one where the op returned and was
   acknowledged); at most one op spans the point and is in flight (it
   may or may not have taken effect); later ops never started. *)
let split_at history ~at =
  let rec go decided universe = function
    | [] -> (decided, None, universe)
    | e :: rest ->
        if e.end_seq <= at then
          go (apply decided e.op) (KMap.add (op_key e.op) () universe) rest
        else if e.start_seq < at then (decided, Some e.op, universe)
        else (decided, None, universe)
  in
  go KMap.empty KMap.empty history

let pp_value = function Some v -> string_of_int v | None -> "absent"

let check ~history ~at ~lookup ~scan ~invariants =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (try invariants ()
   with exn -> fail "invariant check failed: %s" (Printexc.to_string exn));
  let decided, inflight, universe = split_at history ~at in
  let allowed k =
    let base = KMap.find_opt k decided in
    match inflight with
    | Some (Insert (k', v')) when Key.equal k k' -> [ base; Some v' ]
    | Some (Delete k') when Key.equal k k' -> [ base; None ]
    | _ -> [ base ]
  in
  let check_key k =
    let want = allowed k in
    match lookup k with
    | got ->
        if not (List.mem got want) then
          fail "key %a: lookup %s, expected one of {%s}"
            (fun () k -> Format.asprintf "%a" Key.pp k)
            k (pp_value got)
            (String.concat ", " (List.map pp_value want))
    | exception exn ->
        fail "key %a: lookup raised %s"
          (fun () k -> Format.asprintf "%a" Key.pp k)
          k (Printexc.to_string exn)
  in
  KMap.iter (fun k () -> check_key k) universe;
  (match inflight with
  | Some op when not (KMap.mem (op_key op) universe) -> check_key (op_key op)
  | _ -> ());
  (* Range scan: complete, duplicate-free, sorted, no phantoms. *)
  let scan_from =
    match (KMap.min_binding_opt universe, inflight) with
    | Some (k, ()), Some op when Key.compare (op_key op) k < 0 -> Some (op_key op)
    | Some (k, ()), _ -> Some k
    | None, Some op -> Some (op_key op)
    | None, None -> None
  in
  (match scan_from with
  | None -> ()
  | Some from -> (
      let wanted = KMap.cardinal decided + 2 in
      match scan from wanted with
      | results ->
          let rec sorted = function
            | (a, _) :: ((b, _) :: _ as rest) ->
                if Key.compare a b >= 0 then
                  fail "scan not strictly sorted at %a" (fun () k ->
                      Format.asprintf "%a" Key.pp k)
                    b;
                sorted rest
            | _ -> ()
          in
          sorted results;
          List.iter
            (fun (k, v) ->
              let want = allowed k in
              if not (List.exists (function Some _ as w -> w = Some v | None -> false) want)
              then
                if want = [ None ] then
                  fail "scan: phantom key %a" (fun () k ->
                      Format.asprintf "%a" Key.pp k)
                    k
                else
                  fail "scan: key %a has value %d, expected one of {%s}"
                    (fun () k -> Format.asprintf "%a" Key.pp k)
                    k v
                    (String.concat ", " (List.map pp_value want)))
            results;
          let seen = List.fold_left (fun m (k, _) -> KMap.add k () m) KMap.empty results in
          KMap.iter
            (fun k _ ->
              let may_be_absent =
                match inflight with
                | Some (Delete k') -> Key.equal k k'
                | _ -> false
              in
              if (not may_be_absent) && not (KMap.mem k seen) then
                fail "scan: acknowledged key %a missing" (fun () k ->
                    Format.asprintf "%a" Key.pp k)
                  k)
            decided
      | exception exn -> fail "scan raised %s" (Printexc.to_string exn)));
  List.rev !violations
