type t = int

let null = 0

let is_null p = p land lnot 1 = 0

let make ~pool ~off =
  if pool < 0 || pool >= 1 lsl 22 then
    invalid_arg (Printf.sprintf "Pptr.make: pool id %d outside [0, 2^22)" pool);
  if off < 0 || off >= 1 lsl 40 then
    invalid_arg (Printf.sprintf "Pptr.make: offset %d outside [0, 2^40)" off);
  (pool lsl 40) lor off

let pool p = (p lsr 40) land 0x3FFFFF

let off p = p land ((1 lsl 40) - 1) land lnot 1

let tagged p = p lor 1

let untag p = p land lnot 1

let is_tagged p = p land 1 = 1

let equal = Int.equal

let pp ppf p =
  if is_null p then Format.pp_print_string ppf "null"
  else Format.fprintf ppf "%d:%#x%s" (pool p) (off p) (if is_tagged p then "+t" else "")
