module Pool = Nvm.Pool
module Layout = Pobj.Layout

type kind = Pmdk | Volatile_meta

type alloc_stats = {
  mutable allocs : int;
  mutable frees : int;
  mutable alloc_bytes : int;
}

let class_sizes =
  [|
    16; 24; 32; 48; 64; 96; 128; 192; 256; 384; 512; 768; 1024; 1536; 2048; 3072;
    4096; 6144; 8192;
  |]

(* On-pool metadata layout (Pmdk kind).  The whole undo/redo log fits
   in one 64-byte cache line so it persists atomically in the
   line-granularity crash model. *)
let hdr = Layout.create "pmalloc.hdr"

let f_magic = Layout.word hdr "magic"

let f_bump = Layout.word hdr "bump"

let f_lstate = Layout.word ~at:64 hdr "lstate"

let f_lclass = Layout.word hdr "lclass"

let f_lblock = Layout.word hdr "lblock"

let f_lold = Layout.word hdr "lold"

let f_ldest_pool = Layout.word hdr "ldest_pool"

let f_ldest_off = Layout.word hdr "ldest_off"

let f_heads =
  Layout.slots ~at:128 hdr "heads" ~stride:8 ~count:(Array.length class_sizes)

(* Data region starts past the heads (128 + 19*8 = 280), 64-aligned. *)
let data_start = Layout.seal ~size:384 hdr

let head_off cls = Layout.slot f_heads cls

let magic_value = 0x9AC7_0001

(* Log-state tags. *)
let l_none = 0

and l_bump = 1

and l_freelist = 2

and l_free = 3

let class_of size =
  let rec go i =
    if i >= Array.length class_sizes then
      invalid_arg (Printf.sprintf "Heap.alloc: size %d too large" size)
    else if class_sizes.(i) >= size then i
    else go (i + 1)
  in
  go 0

let align_of csize = if csize >= 64 then 64 else 8

let round_up x align = (x + align - 1) / align * align

type pool_state = {
  pool : Pool.t;
  hd : Pobj.obj; (* header object at offset 0, fields per [hdr] *)
  mutex : Des.Sync.Mutex.t;
  (* Volatile_meta bookkeeping (not crash consistent, by design). *)
  mutable vbump : int;
  vfree : int list array;
  vclass : (int, int) Hashtbl.t; (* offset -> size class *)
}

type t = {
  machine : Nvm.Machine.t;
  kind : kind;
  pools : pool_state array;
  stats : alloc_stats;
}

let init_pmdk_pool hd =
  Pobj.set_int hd f_magic magic_value;
  Pobj.set_int hd f_bump data_start;
  Pobj.persist hd 0 16

let create machine ?(volatile_pool = false) ~kind ~name ~numa_pools ~capacity () =
  assert (numa_pools >= 1);
  let make_pool i =
    let numa = i mod Nvm.Machine.numa_count machine in
    let pool =
      Pool.create machine ~volatile:volatile_pool
        ~name:(Printf.sprintf "%s.%d" name i)
        ~numa ~capacity ()
    in
    Registry.register pool;
    let hd = Pobj.make pool 0 in
    if kind = Pmdk then init_pmdk_pool hd;
    {
      pool;
      hd;
      mutex = Des.Sync.Mutex.create ();
      vbump = data_start;
      vfree = Array.make (Array.length class_sizes) [];
      vclass = Hashtbl.create 512;
    }
  in
  {
    machine;
    kind;
    pools = Array.init numa_pools make_pool;
    stats = { allocs = 0; frees = 0; alloc_bytes = 0 };
  }

let machine t = t.machine

let kind t = t.kind

let stats t = t.stats

let numa_pools t = Array.length t.pools

let pool_by_numa t numa = t.pools.(numa mod Array.length t.pools).pool

let pool _t ptr = Registry.resolve ptr

let pick_pool t = function
  | Some numa -> t.pools.(numa mod Array.length t.pools)
  | None -> t.pools.(Des.Sched.current_numa () mod Array.length t.pools)

let debug_heap = Sys.getenv_opt "DES_DEBUG" <> None

(* Debug: currently-free blocks as (pool_id, class, block_off). *)
let freed_blocks : (int * int, int) Hashtbl.t = Hashtbl.create 4096

let note_freed pool_id off cls = Hashtbl.replace freed_blocks (pool_id, off) cls

let note_allocated pool_id off = Hashtbl.remove freed_blocks (pool_id, off)

let check_not_freed ~who pool_id off =
  if debug_heap then
    Hashtbl.iter
      (fun (pid, boff) cls ->
        if pid = pool_id && off >= boff && off < boff + class_sizes.(cls) then
          Printf.eprintf "[heap] thread %d: %s touches FREED block (pool %d, block %d, off %d)\n%s\n%!"
            (Des.Sched.current_id ()) who pid boff off
            (Printexc.raw_backtrace_to_string (Printexc.get_callstack 25)))
      freed_blocks

let out_of_memory pool =
  failwith (Printf.sprintf "Heap: pool %s exhausted" (Pool.name pool))

(* Persist the destination pointer of a malloc-to allocation. *)
let publish_dest dest block_ptr =
  match dest with
  | None -> ()
  | Some (dest_pool, dest_off) ->
      let d = Pobj.make dest_pool dest_off in
      Pobj.write_int d 0 block_ptr;
      Pobj.persist d 0 8

let pmdk_alloc ps ~dest size =
  let hd = ps.hd in
  Des.Sync.Mutex.with_lock ps.mutex @@ fun () ->
  let cls = class_of size in
  let csize = class_sizes.(cls) in
  let head = Pobj.read_int hd (head_off cls) in
  (if debug_heap && head <> Pptr.null then
     let next = Pobj.read_int hd (Pptr.off head) in
     if next <> Pptr.null
        && (Pptr.off next + 8 > Pool.capacity ps.pool || Pptr.off next land 7 <> 0
           || Pptr.pool next <> Pool.id ps.pool)
     then
       failwith
         (Printf.sprintf "Heap: freelist of %s corrupt at %d: next=%#x"
            (Pool.name ps.pool) (Pptr.off head) next));
  let block_off, lkind, lold =
    if head <> Pptr.null then (Pptr.off head, l_freelist, head)
    else begin
      let bump = Pobj.get_int hd f_bump in
      let block = round_up (bump + 8) (align_of csize) in
      if block + csize > Pool.capacity ps.pool then out_of_memory ps.pool;
      (block, l_bump, bump)
    end
  in
  let block_ptr = Pptr.make ~pool:(Pool.id ps.pool) ~off:block_off in
  if debug_heap then note_allocated (Pool.id ps.pool) block_off;
  (* 1. Undo/redo log entry (one line), persisted first. *)
  Pobj.set_int hd f_lclass cls;
  Pobj.set_int hd f_lblock block_ptr;
  Pobj.set_int hd f_lold lold;
  (match dest with
  | Some (dest_pool, dest_off) ->
      Pobj.set_int hd f_ldest_pool (Pool.id dest_pool + 1);
      Pobj.set_int hd f_ldest_off dest_off
  | None ->
      Pobj.set_int hd f_ldest_pool 0;
      Pobj.set_int hd f_ldest_off 0);
  Pobj.set_int hd f_lstate lkind;
  Pobj.persist hd (Layout.off f_lstate) 64;
  (* 2. Metadata update + object header, persisted second. *)
  if lkind = l_freelist then begin
    let next = Pobj.read_int hd block_off in
    Pobj.write_int hd (head_off cls) next;
    Pobj.clwb hd (head_off cls)
  end
  else begin
    Pobj.set_int hd f_bump (block_off + csize);
    Pobj.flush_field hd f_bump
  end;
  Pobj.write_int hd (block_off - 8) cls;
  Pobj.clwb hd (block_off - 8);
  Pobj.fence hd;
  (* 3. malloc-to: publish the pointer (persist) before committing. *)
  publish_dest dest block_ptr;
  (* 4. Commit: clear the log. *)
  Pobj.set_int hd f_lstate l_none;
  Pobj.persist_field hd f_lstate;
  block_ptr

let pmdk_free ps ptr =
  let hd = ps.hd in
  Des.Sync.Mutex.with_lock ps.mutex @@ fun () ->
  let block_off = Pptr.off ptr in
  if debug_heap then begin
    (* double-free detection: walk the class freelist *)
    let cls = Pobj.read_int hd (block_off - 8) in
    if cls >= 0 && cls < Array.length class_sizes then begin
      let rec walk node n =
        if node <> Pptr.null && n < 1_000_000 then begin
          if Pptr.off node = block_off then
            failwith
              (Printf.sprintf "Heap: DOUBLE FREE of %s+%d by thread %d"
                 (Pool.name ps.pool) block_off (Des.Sched.current_id ()));
          walk (Pobj.read_int hd (Pptr.off node)) (n + 1)
        end
      in
      walk (Pobj.read_int hd (head_off cls)) 0
    end
  end;
  let cls = Pobj.read_int hd (block_off - 8) in
  assert (cls >= 0 && cls < Array.length class_sizes);
  let head = Pobj.read_int hd (head_off cls) in
  Pobj.set_int hd f_lclass cls;
  Pobj.set_int hd f_lblock ptr;
  Pobj.set_int hd f_lold head;
  Pobj.set_int hd f_ldest_pool 0;
  Pobj.set_int hd f_lstate l_free;
  Pobj.persist hd (Layout.off f_lstate) 64;
  (* Persist the block's next link before publishing it as head, so a
     crash can never expose a head with a garbage next pointer. *)
  Pobj.write_int hd block_off head;
  Pobj.persist hd block_off 8;
  Pobj.write_int hd (head_off cls) ptr;
  Pobj.persist hd (head_off cls) 8;
  Pobj.set_int hd f_lstate l_none;
  Pobj.persist_field hd f_lstate;
  if debug_heap then note_freed (Pool.id ps.pool) block_off cls

let volatile_alloc ps ~dest size =
  let p = ps.pool in
  let cls = class_of size in
  let csize = class_sizes.(cls) in
  let block_off =
    match ps.vfree.(cls) with
    | off :: rest ->
        ps.vfree.(cls) <- rest;
        off
    | [] ->
        let block = round_up (ps.vbump + 8) (align_of csize) in
        if block + csize > Pool.capacity p then out_of_memory p;
        ps.vbump <- block + csize;
        block
  in
  Hashtbl.replace ps.vclass block_off cls;
  let block_ptr = Pptr.make ~pool:(Pool.id p) ~off:block_off in
  publish_dest dest block_ptr;
  block_ptr

let volatile_free ps ptr =
  let off = Pptr.off ptr in
  match Hashtbl.find_opt ps.vclass off with
  | None -> invalid_arg "Heap.free: unknown block (volatile heap)"
  | Some cls ->
      Hashtbl.remove ps.vclass off;
      ps.vfree.(cls) <- off :: ps.vfree.(cls)

let alloc_dispatch t ~numa ~dest size =
  let ps = pick_pool t numa in
  let ptr =
    match t.kind with
    | Pmdk -> pmdk_alloc ps ~dest size
    | Volatile_meta -> volatile_alloc ps ~dest size
  in
  t.stats.allocs <- t.stats.allocs + 1;
  t.stats.alloc_bytes <- t.stats.alloc_bytes + class_sizes.(class_of size);
  ptr

let alloc t ?numa size =
  Obs.Span.with_phase Obs.Span.Alloc (fun () -> alloc_dispatch t ~numa ~dest:None size)

let alloc_to t ?numa ~size ~dest_pool ~dest_off () =
  Obs.Span.with_phase Obs.Span.Alloc (fun () ->
      alloc_dispatch t ~numa ~dest:(Some (dest_pool, dest_off)) size)

let owner_state t ptr =
  let pid = Pptr.pool ptr in
  let rec go i =
    if i >= Array.length t.pools then
      invalid_arg "Heap.free: pointer does not belong to this heap"
    else if Pool.id t.pools.(i).pool = pid then t.pools.(i)
    else go (i + 1)
  in
  go 0

let free t ptr =
  Obs.Span.with_phase Obs.Span.Alloc (fun () ->
      let ps = owner_state t ptr in
      (match t.kind with
      | Pmdk -> pmdk_free ps ptr
      | Volatile_meta -> volatile_free ps ptr);
      t.stats.frees <- t.stats.frees + 1)

(* Post-crash log recovery (Pmdk).  The commit point of an operation
   is clearing the log state.  A dest pointer that already holds the
   logged block proves the operation's metadata persists (program
   order put the metadata fence before the dest fence), so the
   operation is complete; otherwise we roll the metadata back. *)
let recover_pmdk_pool ps =
  let hd = ps.hd in
  let state = Pobj.get_int hd f_lstate in
  if state <> l_none then begin
    let cls = Pobj.get_int hd f_lclass in
    let block = Pobj.get_int hd f_lblock in
    let old = Pobj.get_int hd f_lold in
    let dest_pool = Pobj.get_int hd f_ldest_pool in
    let completed =
      dest_pool > 0
      &&
      let dest = Pobj.make (Registry.find (dest_pool - 1)) (Pobj.get_int hd f_ldest_off) in
      Pobj.read_int dest 0 = block
    in
    if not completed then begin
      if state = l_bump then Pobj.set_int hd f_bump old
      else if state = l_freelist then Pobj.write_int hd (head_off cls) old
      else if state = l_free then begin
        (* Free is complete once the head points at the block. *)
        if Pobj.read_int hd (head_off cls) <> block then
          Pobj.write_int hd (head_off cls) old
      end;
      Pobj.flush_field hd f_bump;
      Pobj.flush hd (head_off cls) 8
    end;
    Pobj.set_int hd f_lstate l_none;
    Pobj.persist_field hd f_lstate
  end

let recover t =
  Obs.Span.with_phase Obs.Span.Recovery @@ fun () ->
  match t.kind with
  | Pmdk -> Array.iter recover_pmdk_pool t.pools
  | Volatile_meta ->
      (* Metadata did not survive: reset to an empty heap. *)
      Array.iter
        (fun ps ->
          ps.vbump <- data_start;
          Array.fill ps.vfree 0 (Array.length ps.vfree) [];
          Hashtbl.reset ps.vclass)
        t.pools

let remaining t ~numa =
  let ps = t.pools.(numa mod Array.length t.pools) in
  match t.kind with
  | Pmdk -> Pool.capacity ps.pool - Pobj.get_int ps.hd f_bump
  | Volatile_meta -> Pool.capacity ps.pool - ps.vbump
