(** Per-thread persistent SMO logs (paper §5.6).

    Every data-node split or merge is logged before it mutates the
    data layer; the background updater (or crash recovery) replays
    entries in timestamp order to synchronise the search layer, then
    clears them.  The split entry's auxiliary field doubles as the
    malloc-to destination for the new data node, so an interrupted
    split can never leak it.

    Each simulated thread owns a ring of entries on its NUMA domain's
    log pool; a full ring back-pressures the writer until the updater
    catches up. *)

type t

type entry_ref = Pobj.obj = { pool : Nvm.Pool.t; off : int }

type payload =
  | Split of { left : Pmalloc.Pptr.t; anchor : Key.t }
      (** [left] is the splitting node, [anchor] the new node's anchor
          key; the new node pointer lands in the aux field. *)
  | Merge of { left : Pmalloc.Pptr.t; right : Pmalloc.Pptr.t; anchor : Key.t }
      (** [right] (whose anchor is [anchor]) merges into [left]. *)

(** Bytes of pool space one ring region needs. *)
val region_size : int

(** [create pools ~base] lays rings out at offset [base] of each
    per-NUMA pool. *)
val create : Nvm.Pool.t array -> base:int -> t

(** Append to the calling thread's ring; blocks (simulated) while the
    ring is full.  Two fences: fields first, state last. *)
val append : t -> ts:int -> payload -> entry_ref

(** Destination (pool, offset) of a split entry's new-node field, for
    {!Pmalloc.Heap.alloc_to}. *)
val aux_field : entry_ref -> Nvm.Pool.t * int

(** Auxiliary pointer value (split: the new node once allocated). *)
val aux : entry_ref -> Pmalloc.Pptr.t

(** Decode an entry; [None] if the slot is free. *)
val read : entry_ref -> (int * payload) option

(** Mark the entry replayed (persisted). *)
val clear : entry_ref -> unit

(** Scan every ring on every pool — used by recovery. *)
val iter_active : t -> f:(entry_ref -> unit) -> unit

(** Number of active entries (tests). *)
val active_count : t -> int
