module Pool = Nvm.Pool
module Pptr = Pmalloc.Pptr
module Layout = Pobj.Layout

(* Entry layout (128 bytes, two cache lines).  A persisted nonzero
   state implies a complete entry (fields persist first). *)
let lay = Layout.create "smo_log.entry"

let f_state = Layout.word lay "state" (* 0 free / 1 split / 2 merge *)

let f_ts = Layout.word lay "ts"

let f_left = Layout.word lay "left"

let f_aux = Layout.word lay "aux" (* new node (split) / right node (merge) *)

let f_anchor_len = Layout.word lay "anchor_len"

let f_anchor = Layout.bytes lay "anchor" 32

let entry_size = Layout.seal ~size:128 lay

let rings = 256

let entries_per_ring = 64

let region_size = rings * entries_per_ring * entry_size

type t = {
  pools : Pool.t array;
  base : int;
  cursors : (int, int) Hashtbl.t; (* thread id -> next slot hint *)
}

type entry_ref = Pobj.obj = { pool : Pool.t; off : int }

type payload =
  | Split of { left : Pptr.t; anchor : Key.t }
  | Merge of { left : Pptr.t; right : Pptr.t; anchor : Key.t }

let create pools ~base =
  Array.iter
    (fun p ->
      if Pool.capacity p < base + region_size then
        invalid_arg "Smo_log.create: log pool too small")
    pools;
  { pools; base; cursors = Hashtbl.create 64 }

let ring_base t tid = t.base + (tid land (rings - 1)) * entries_per_ring * entry_size

let thread_ring t =
  let tid = Des.Sched.current_id () in
  let numa = Des.Sched.current_numa () in
  (t.pools.(numa mod Array.length t.pools), ring_base t tid, tid)

let state e = Pobj.get_int e f_state

let write_entry e ~ts payload =
  Pobj.set_int e f_ts ts;
  let left, aux0, anchor, kind =
    match payload with
    | Split { left; anchor } -> (left, Pptr.null, anchor, 1)
    | Merge { left; right; anchor } -> (left, right, anchor, 2)
  in
  Pobj.set_int e f_left left;
  Pobj.set_int e f_aux aux0;
  Pobj.set_int e f_anchor_len (String.length anchor);
  Pobj.write_string e (Layout.off f_anchor) anchor;
  (* Fields first, then the state flag: a persisted nonzero state
     implies a complete entry. *)
  Pobj.persist_obj e lay;
  Pobj.set_int e f_state kind;
  Pobj.persist_field e f_state

let append t ~ts payload =
  Obs.Span.with_phase Obs.Span.Smo @@ fun () ->
  let pool, rbase, tid = thread_ring t in
  let hint = Option.value ~default:0 (Hashtbl.find_opt t.cursors tid) in
  let rec find_free attempt i tried =
    if tried >= entries_per_ring then begin
      (* Ring full: wait for the updater (back-pressure, §5.6). *)
      if attempt > 50_000 then failwith "Smo_log.append: ring stuck (updater dead?)";
      Des.Sched.delay (500e-9 *. float_of_int (1 lsl min attempt 9));
      find_free (attempt + 1) hint 0
    end
    else
      let off = rbase + (i mod entries_per_ring * entry_size) in
      let e = { pool; off } in
      if state e = 0 then begin
        Hashtbl.replace t.cursors tid ((i + 1) mod entries_per_ring);
        e
      end
      else find_free attempt (i + 1) (tried + 1)
  in
  let e = find_free 0 hint 0 in
  write_entry e ~ts payload;
  e

let aux_field e = (e.pool, e.off + Layout.off f_aux)

let aux e = Pobj.get_int e f_aux

let read e =
  match state e with
  | 0 -> None
  | kind ->
      let ts = Pobj.get_int e f_ts in
      let left = Pobj.get_int e f_left in
      let aux0 = Pobj.get_int e f_aux in
      let alen = Pobj.get_int e f_anchor_len in
      let anchor = Pobj.read_string e (Layout.off f_anchor) alen in
      let payload =
        if kind = 1 then Split { left; anchor }
        else Merge { left; right = aux0; anchor }
      in
      Some (ts, payload)

let clear e =
  Pobj.set_int e f_state 0;
  Pobj.persist_field e f_state

let iter_active t ~f =
  Array.iter
    (fun pool ->
      for ring = 0 to rings - 1 do
        for slot = 0 to entries_per_ring - 1 do
          let off = t.base + (ring * entries_per_ring * entry_size) + (slot * entry_size) in
          let e = { pool; off } in
          if state e <> 0 then f e
        done
      done)
    t.pools

let active_count t =
  let n = ref 0 in
  iter_active t ~f:(fun _ -> incr n);
  !n
