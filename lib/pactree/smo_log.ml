module Pool = Nvm.Pool
module Pptr = Pmalloc.Pptr

(* Entry layout (128 bytes, two cache lines):
   0 state (0 free / 1 split / 2 merge)   8 timestamp
   16 left node ptr                       24 aux (new node / right node)
   32 anchor length                       40..71 anchor bytes *)

let entry_size = 128

let rings = 256

let entries_per_ring = 64

let region_size = rings * entries_per_ring * entry_size

type t = {
  pools : Pool.t array;
  base : int;
  cursors : (int, int) Hashtbl.t; (* thread id -> next slot hint *)
}

type entry_ref = { pool : Pool.t; off : int }

type payload =
  | Split of { left : Pptr.t; anchor : Key.t }
  | Merge of { left : Pptr.t; right : Pptr.t; anchor : Key.t }

let create pools ~base =
  Array.iter
    (fun p ->
      if Pool.capacity p < base + region_size then
        invalid_arg "Smo_log.create: log pool too small")
    pools;
  { pools; base; cursors = Hashtbl.create 64 }

let ring_base t tid = t.base + (tid land (rings - 1)) * entries_per_ring * entry_size

let thread_ring t =
  let tid = Des.Sched.current_id () in
  let numa = Des.Sched.current_numa () in
  (t.pools.(numa mod Array.length t.pools), ring_base t tid, tid)

let state e = Pool.read_int e.pool e.off

let write_entry e ~ts payload =
  Pool.write_int e.pool (e.off + 8) ts;
  let left, aux0, anchor, kind =
    match payload with
    | Split { left; anchor } -> (left, Pptr.null, anchor, 1)
    | Merge { left; right; anchor } -> (left, right, anchor, 2)
  in
  Pool.write_int e.pool (e.off + 16) left;
  Pool.write_int e.pool (e.off + 24) aux0;
  Pool.write_int e.pool (e.off + 32) (String.length anchor);
  Pool.write_string e.pool (e.off + 40) anchor;
  (* Fields first, then the state flag: a persisted nonzero state
     implies a complete entry. *)
  Pool.persist e.pool e.off entry_size;
  Pool.write_int e.pool e.off kind;
  Pool.persist e.pool e.off 8

let append t ~ts payload =
  Obs.Span.with_phase Obs.Span.Smo @@ fun () ->
  let pool, rbase, tid = thread_ring t in
  let hint = Option.value ~default:0 (Hashtbl.find_opt t.cursors tid) in
  let rec find_free attempt i tried =
    if tried >= entries_per_ring then begin
      (* Ring full: wait for the updater (back-pressure, §5.6). *)
      if attempt > 50_000 then failwith "Smo_log.append: ring stuck (updater dead?)";
      Des.Sched.delay (500e-9 *. float_of_int (1 lsl min attempt 9));
      find_free (attempt + 1) hint 0
    end
    else
      let off = rbase + (i mod entries_per_ring * entry_size) in
      let e = { pool; off } in
      if state e = 0 then begin
        Hashtbl.replace t.cursors tid ((i + 1) mod entries_per_ring);
        e
      end
      else find_free attempt (i + 1) (tried + 1)
  in
  let e = find_free 0 hint 0 in
  write_entry e ~ts payload;
  e

let aux_field e = (e.pool, e.off + 24)

let aux e = Pool.read_int e.pool (e.off + 24)

let read e =
  match state e with
  | 0 -> None
  | kind ->
      let ts = Pool.read_int e.pool (e.off + 8) in
      let left = Pool.read_int e.pool (e.off + 16) in
      let aux0 = Pool.read_int e.pool (e.off + 24) in
      let alen = Pool.read_int e.pool (e.off + 32) in
      let anchor = Pool.read_string e.pool (e.off + 40) alen in
      let payload =
        if kind = 1 then Split { left; anchor }
        else Merge { left; right = aux0; anchor }
      in
      Some (ts, payload)

let clear e =
  Pool.write_int e.pool e.off 0;
  Pool.persist e.pool e.off 8

let iter_active t ~f =
  Array.iter
    (fun pool ->
      for ring = 0 to rings - 1 do
        for slot = 0 to entries_per_ring - 1 do
          let off = t.base + (ring * entries_per_ring * entry_size) + (slot * entry_size) in
          let e = { pool; off } in
          if state e <> 0 then f e
        done
      done)
    t.pools

let active_count t =
  let n = ref 0 in
  iter_active t ~f:(fun _ -> incr n);
  !n
