(** Optimistic persistent version lock (paper §5.7).

    An 8-byte word on NVM: a generation id in the high 32 bits and a
    version number in the low 32.  An odd version means write-locked.
    Readers never modify the word (GA2), writers bump it on acquire
    and release.

    The generation id makes recovery O(1): the index's global
    generation is incremented on every restart, so every lock written
    before the crash carries a stale generation and is treated as free
    (and lazily re-initialised) without visiting any node (§5.1). *)

type handle = Pobj.obj = { pool : Nvm.Pool.t; off : int }

(** Initialise an unlocked word for generation [gen]. *)
val init : handle -> gen:int -> unit

(** Current version; a stale-generation word reads as version 0
    (free).  Pure — readers never write (GA2); the word is only
    re-initialised when a writer acquires it.  May return an odd
    (locked) version. *)
val read_version : handle -> gen:int -> int

val is_locked : int -> bool

(** True once the node was retired by a CoW replacement; readers must
    restart, writers can never lock it again (§ART-OLC "obsolete"). *)
val is_obsolete : int -> bool

(** Spin (with simulated backoff) until unlocked, returning an even
    version snapshot for optimistic validation. *)
val begin_read : handle -> gen:int -> int

(** [validate h ~gen ~version] is [true] iff the word still holds
    exactly [version] — no writer intervened. *)
val validate : handle -> gen:int -> version:int -> bool

(** Acquire the write lock (spin with backoff).  Returns the odd
    version now held. *)
val acquire : handle -> gen:int -> int

(** [try_upgrade h ~gen ~version] atomically upgrades a reader that
    validated [version] into the writer; [false] means a concurrent
    writer won and the caller must restart. *)
val try_upgrade : handle -> gen:int -> version:int -> bool

(** Release the write lock taken at odd [version]. *)
val release : handle -> gen:int -> version:int -> unit

(** Release and mark the node obsolete (retired by CoW). *)
val release_obsolete : handle -> gen:int -> version:int -> unit

(** Total backoff iterations (instrumentation). *)
val spins : int ref
