module Pool = Nvm.Pool

type handle = Pobj.obj = { pool : Pool.t; off : int }

let word ~gen ~version = (gen lsl 32) lor (version land 0xFFFFFFFF)

let gen_of w = w lsr 32

let version_of w = w land 0xFFFFFFFF

(* A lock word written before the last crash carries a stale
   generation: it reads as free with version 0.  Readers never write
   (GA2) — crucially, even a speculative read of a location that is
   not a lock word must stay pure; the word is re-initialised only
   when a writer acquires it.  Stale->stale transitions are
   impossible (only writers store words, always with the current
   generation), so "effective version 0" is stable and optimistic
   validation stays sound.

   Lock words are transient by the same argument: they are never
   flushed, because the generation bump voids them after any crash —
   all stores below go through [Pobj.transient_*]. *)
let effective w ~gen = if gen_of w = gen then version_of w else 0

let init h ~gen = Pobj.transient_store h 0 (word ~gen ~version:0)

let is_locked version = version land 1 = 1

(* Bit 1 marks a node retired by a copy-on-write replacement: its
   contents are frozen garbage-to-be.  Readers must restart rather
   than use it; writers can never lock it again (the ART-OLC
   "obsolete" marker).  The version counter lives in bits 2+. *)
let obsolete_bit = 2

let is_obsolete version = version land obsolete_bit <> 0

let read_version h ~gen = effective (Pobj.read_int h 0) ~gen

(* instrumentation: total spin iterations across all locks *)
let spins = ref 0

(* Exponential backoff up to ~80us: under device saturation a lock
   can be held across millisecond-long fences, and fine-grained
   spinning would flood the event queue. *)
let backoff attempt =
  incr spins;
  let capped = min attempt 11 in
  Des.Sched.delay (40e-9 *. float_of_int (1 lsl capped))

let debug = Sys.getenv_opt "DES_DEBUG" <> None

let stuck h ~gen attempt who =
  if debug && attempt > 0 && attempt mod 500 = 0 then
    Printf.eprintf "[vlock] thread %d stuck in %s on %s+%d word=%#x gen=%d (%d spins)\n%!"
      (Des.Sched.current_id ()) who (Pool.name h.pool) h.off
      (Pobj.read_int h 0) gen attempt

let begin_read h ~gen =
  let rec go attempt =
    let v = read_version h ~gen in
    if is_locked v then begin
      stuck h ~gen attempt "begin_read";
      backoff attempt;
      go (attempt + 1)
    end
    else v
  in
  go 0

let validate h ~gen ~version = read_version h ~gen = version

let try_upgrade h ~gen ~version =
  (not (is_locked version))
  && (not (is_obsolete version))
  &&
  let raw = Pobj.read_int h 0 in
  effective raw ~gen = version
  &&
  (if debug then Pmalloc.Heap.check_not_freed ~who:"try_upgrade" (Pool.id h.pool) h.off;
   Pobj.transient_cas h 0 ~expected:raw (word ~gen ~version:(version + 1)))

let acquire h ~gen =
  let rec go attempt =
    let v = read_version h ~gen in
    if (not (is_locked v)) && try_upgrade h ~gen ~version:v then v + 1
    else begin
      stuck h ~gen attempt "acquire";
      backoff attempt;
      go (attempt + 1)
    end
  in
  go 0

(* Unlock, bumping the counter past the lock bit (versions move in
   steps of 4: bit 0 = locked, bit 1 = obsolete, counter above). *)
let release h ~gen ~version =
  assert (is_locked version);
  Pobj.transient_store h 0 (word ~gen ~version:(version + 3))

(* Unlock and permanently retire the word: no later reader validates
   against it and no writer can ever lock it again. *)
let release_obsolete h ~gen ~version =
  assert (is_locked version);
  Pobj.transient_store h 0 (word ~gen ~version:((version + 3) lor obsolete_bit))
