(** Slotted data nodes — the data layer's B+-tree-like leaves
    (paper Fig 8, §5.2, §5.5).

    A data node holds up to 64 unsorted key-value pairs plus:
    - an {e anchor key}: the node's immutable lower bound (§4.2);
    - a 64-bit {e valid bitmap}, whose 8-byte atomic update is the
      linearization point of every write (§5.5);
    - a {e fingerprint array} (one cache line) for cheap lookups;
    - a {e permutation array} (one cache line) giving sorted order for
      scans — deliberately {e not} persisted (selective persistence,
      §4.4) and rebuilt on demand, validated by a version stamp;
    - next/prev pointers (the data layer is a doubly-linked list), a
      logical-deletion mark, and an optimistic persistent version
      lock.

    This module implements field access and the crash-consistent
    write protocols {e within} one node; locking and structural
    modifications are orchestrated by {!Tree}. *)

type layout = {
  inline : int;  (** inline key capacity: 8 (int keys) or 32 (string) *)
  stride : int;
  node_size : int;
  persist_perm : bool;
      (** ablation switch: [true] persists the permutation array on
          every write (the paper's "- selective persistence") *)
}

(** [layout ~key_inline] with [key_inline] 8 or 32. *)
val layout : ?persist_perm:bool -> key_inline:int -> unit -> layout

(** Number of key-value slots per node. *)
val entries : int

type t = Pobj.obj = { pool : Nvm.Pool.t; off : int }

val of_ptr : Pmalloc.Pptr.t -> t

val to_ptr : t -> Pmalloc.Pptr.t

val equal : t -> t -> bool

(** {2 Header fields} *)

val lock_handle : t -> Vlock.handle

val bitmap : t -> int64

val next : t -> Pmalloc.Pptr.t

(** [set_next] is an 8B atomic store; caller persists. *)
val set_next : t -> Pmalloc.Pptr.t -> unit

val prev : t -> Pmalloc.Pptr.t

val set_prev : t -> Pmalloc.Pptr.t -> unit

val is_deleted : t -> bool

val set_deleted : t -> bool -> unit

val anchor : layout -> t -> Key.t

(** [compare_anchor t k] = [compare (anchor t) k], allocation-free. *)
val compare_anchor : t -> Key.t -> int

(** Offsets for targeted persistence by {!Tree}. *)
val off_next : int

val off_prev : int

val off_deleted : int

(** {2 Initialisation} *)

(** Write a fresh node image (no flushes — caller persists the whole
    node before publishing it). *)
val init :
  layout -> t -> gen:int -> anchor:Key.t -> next:Pmalloc.Pptr.t -> prev:Pmalloc.Pptr.t -> unit

(** {2 Reading} *)

val key_at : layout -> t -> int -> Key.t

val value_at : layout -> t -> int -> int

(** Fingerprint-guided point lookup among live slots. *)
val find : layout -> t -> Key.t -> (int * int) option
(** [find lay t k] is [Some (slot, value)]. *)

val live_count : t -> int

(** Live [(key, value)] pairs in slot order. *)
val live_entries : layout -> t -> (Key.t * int) list

(** Live [(key, slot)] pairs sorted by key. *)
val sorted_live : layout -> t -> (Key.t * int) list

(** {2 Crash-consistent writes (caller holds the node lock)} *)

type write_result = Ok | Full | Absent

(** Insert protocol (§5.5): persist kv+fingerprint, then atomically
    set the bitmap bit and persist it.  [Full] when no slot is free.
    Duplicate keys: callers must check [find] first (PACTree
    semantics: insert of an existing key acts as update). *)
val insert : layout -> t -> Key.t -> int -> write_result

(** Delete: atomic bitmap bit clear + persist.  [Absent] if missing. *)
val delete : layout -> t -> Key.t -> write_result

(** Update: out-of-place copy + single atomic bitmap flip when a
    spare slot exists; otherwise an in-place atomic 8B value store.
    [Absent] if the key is missing. *)
val update : layout -> t -> Key.t -> int -> write_result

(** {2 Scans (§5.4)} *)

(** Ensure the permutation array matches the node version; rebuilds it
    (sorting live keys) when stale.  Returns the number of live
    entries. *)
val refresh_permutation : layout -> t -> int

(** [scan_from lay t key ~f] iterates live pairs with key >= [key] in
    sorted order via the permutation array, calling [f key value];
    stops early when [f] returns [false].  Returns [false] if it was
    stopped early. *)
val scan_from : layout -> t -> Key.t -> f:(Key.t -> int -> bool) -> bool

(** {2 SMO helpers (§5.6), sequencing controlled by {!Tree}} *)

(** Copy the given [(key, slot)] pairs of [src] into the empty [dst]
    image (no flushes). *)
val copy_into : layout -> src:t -> dst:t -> (Key.t * int) list -> unit

(** Atomically drop the given slots from the bitmap and persist. *)
val clear_slots : t -> int list -> unit

(** Append [src]'s live entries into free slots of [dst]:
    persist kv+fp, then one atomic bitmap update + persist.
    Precondition: enough free slots. *)
val absorb : layout -> src:t -> dst:t -> unit
