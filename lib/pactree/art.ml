(* PDL-ART: Persistent Durable-Linearizable Adaptive Radix Tree
   (paper §5.1).

   The trie maps prefix-free radix keys (see {!Key.to_radix}) to
   persistent payload pointers.  Leaves are tagged pointers stored
   directly in child slots: bit 0 set means "payload", clear means
   "inner node"; payload keys are recovered through [key_of_leaf].

   Concurrency is optimistic lock coupling over the paper's optimistic
   persistent version locks: readers validate node versions and
   restart on interference; writers lock the node (and its parent for
   structural changes).

   Crash consistency is log-free (§5.1(2)): new nodes are fully
   persisted before the single 8-byte pointer store that publishes
   them, and in-node child insertion persists the entry before the
   count/index store that makes it visible.  Structural replacements
   (grow/shrink/prefix splits) are copy-on-write committed by one
   atomic pointer swap.  A per-thread pending log (§5.1(3)) records
   allocations and retirements so recovery can free unreachable
   nodes. *)

module Pool = Nvm.Pool
module Pptr = Pmalloc.Pptr
module Heap = Pmalloc.Heap
module Layout = Pobj.Layout

exception Restart

type node = Pobj.obj = { pool : Pool.t; off : int }

type stats = {
  mutable restarts : int;
  mutable allocs : int; (* inner nodes allocated *)
  mutable retires : int; (* inner nodes retired (CoW) *)
}

type t = {
  heap : Heap.t;
  meta : Pool.t;
  mo : Pobj.obj; (* meta pool as an object, fields per [meta_l] *)
  mutable gen : int;
  key_of_leaf : Pptr.t -> string;
  epoch : Epoch.t;
  stats : stats;
}

(* Node header layout (shared by all four node types; the key/index
   and child arrays that follow are per-type, see the geometry
   tables below). *)
let hdr = Layout.create "art.node"

let f_lock = Layout.word ~transient:true hdr "lock"

let f_type = Layout.u8 hdr "type"

let f_plen = Layout.u8 hdr "plen"

let f_count = Layout.u16 hdr "count"

let f_prefix = Layout.bytes ~at:16 hdr "prefix" 16

let hdr_size = Layout.seal hdr

let off_lock = Layout.off f_lock

let off_count = Layout.off f_count

let off_prefix = Layout.off f_prefix

(* 16 stored prefix bytes cover e.g. the paper's "user<digits>" string
   keys without the reconstruct-via-leaf fallback. *)
let stored_prefix_max = Layout.field_size f_prefix

(* Per-type geometry: type 0 = Node4, 1 = Node16, 2 = Node48,
   3 = Node256. *)
let n4_keys = hdr_size (* Node16 keys share this offset *)

let n48_index = hdr_size

let children_off = [| 40; 48; 288; 32 |]

let capacity = [| 4; 16; 48; 256 |]

let node_size = [| 72; 176; 672; 2080 |]

(* Meta-pool layout: generation, root pointer, root lock, then the
   per-thread pending log. *)
let pending_threads = 256

let pending_slots = 8

let meta_l = Layout.create "art.meta"

let f_meta_gen = Layout.word ~at:8 meta_l "gen"

let f_meta_root = Layout.word meta_l "root"

let f_meta_rootlock = Layout.word ~transient:true meta_l "rootlock"

let f_pending =
  Layout.slots ~at:64 meta_l "pending" ~stride:8
    ~count:(pending_threads * pending_slots)

let meta_size = Layout.seal meta_l

let off_meta_root = Layout.off f_meta_root

let off_meta_rootlock = Layout.off f_meta_rootlock

let pending_off i slot =
  Layout.slot f_pending (((i land (pending_threads - 1)) * pending_slots) + slot)

(* ---------- node accessors ---------- *)

(* Optimistic traversal may speculatively dereference a pointer read
   from a slot that a concurrent writer is changing; such reads are
   discarded by version validation, but they must never fault.  A
   pointer that cannot possibly be a node triggers a restart. *)
let node_of ptr =
  let pool = Pmalloc.Registry.resolve ptr in
  let off = Pptr.off ptr in
  if off <= 0 || off + node_size.(0) > Pool.capacity pool || off land 7 <> 0 then
    raise Restart;
  { pool; off }

let ntype n =
  let ty = Pobj.get_u8 n f_type in
  if ty > 3 then raise Restart (* speculative read of a non-node *);
  ty

let plen n = Pobj.get_u8 n f_plen

let count n = Pobj.get_u16 n f_count

let set_count n c = Pobj.set_u16 n f_count c

let lockh n = { Vlock.pool = n.pool; off = n.off + off_lock }

(* Read a node's version for optimistic use; a retired (obsolete) node
   must not be used at all — restart and re-descend. *)
let node_version h ~gen =
  let v = Vlock.begin_read h ~gen in
  if Vlock.is_obsolete v then raise Restart;
  v


let stored_prefix_byte n i = Pobj.read_u8 n (off_prefix + i)

(* Base-relative offset of child slot [i]; [child_slot] is the
   absolute form used for parent-slot records. *)
let child_rel ty i = children_off.(ty) + (8 * i)

let child_slot n ty i = n.off + child_rel ty i

let read_child n ty i = Pobj.read_int n (child_rel ty i)

let key4_16 n i = Pobj.read_u8 n (n4_keys + i)

(* All of a Node4/16's key bytes in one cache access (they share a
   line with the header). *)
let keys4_16 n c = Pobj.read_string n n4_keys c

let idx48 n b = Pobj.read_u8 n (n48_index + b)

let byte_at rkey i = Char.code (String.unsafe_get rkey i)

(* [find_child n b] returns the slot offset (for atomic replacement)
   and the pointer. *)
let find_child n b =
  let ty = ntype n in
  match ty with
  | 0 | 1 ->
      let c = count n in
      let keys = keys4_16 n c in
      let rec go i =
        if i >= c then None
        else if Char.code (String.unsafe_get keys i) = b then
          let p = read_child n ty i in
          if Pptr.is_null p then go (i + 1) else Some (child_slot n ty i, p)
        else go (i + 1)
      in
      go 0
  | 2 ->
      let s = idx48 n b in
      if s = 0 then None
      else
        let p = read_child n ty (s - 1) in
        if Pptr.is_null p then None else Some (child_slot n ty (s - 1), p)
  | _ ->
      let p = read_child n ty b in
      if Pptr.is_null p then None else Some (child_slot n ty b, p)

(* Largest child with byte < [b] (None if none): the ordered-search
   primitive of lookup_le.  Bounded per-type probing — never a full
   enumeration. *)
let find_lt n b =
  let ty = ntype n in
  match ty with
  | 0 | 1 ->
      let c = count n in
      let keys = keys4_16 n c in
      let rec go best_b best i =
        if i >= c then (match best with None -> None | Some j -> Some (read_child n ty j))
        else
          let kb = Char.code (String.unsafe_get keys i) in
          if kb < b && kb >= best_b then go kb (Some i) (i + 1)
          else go best_b best (i + 1)
      in
      let r = go (-1) None 0 in
      (match r with Some p when Pptr.is_null p -> None | _ -> r)
  | 2 ->
      let rec go byte =
        if byte < 0 then None
        else
          let s = idx48 n byte in
          if s = 0 then go (byte - 1)
          else
            let p = read_child n ty (s - 1) in
            if Pptr.is_null p then go (byte - 1) else Some p
      in
      go (b - 1)
  | _ ->
      let rec go byte =
        if byte < 0 then None
        else
          let p = read_child n ty byte in
          if Pptr.is_null p then go (byte - 1) else Some p
      in
      go (b - 1)

(* Child with the largest / smallest byte. *)
let last_child n = find_lt n 256

let first_child n =
  let ty = ntype n in
  match ty with
  | 0 | 1 ->
      let c = count n in
      let keys = keys4_16 n c in
      let rec go best_b best i =
        if i >= c then (match best with None -> None | Some j -> Some (read_child n ty j))
        else
          let kb = Char.code (String.unsafe_get keys i) in
          if kb < best_b then go kb (Some i) (i + 1)
          else go best_b best (i + 1)
      in
      let r = go 256 None 0 in
      (match r with Some p when Pptr.is_null p -> None | _ -> r)
  | 2 ->
      let rec go byte =
        if byte > 255 then None
        else
          let s = idx48 n byte in
          if s = 0 then go (byte + 1)
          else
            let p = read_child n ty (s - 1) in
            if Pptr.is_null p then go (byte + 1) else Some p
      in
      go 0
  | _ ->
      let rec go byte =
        if byte > 255 then None
        else
          let p = read_child n ty byte in
          if Pptr.is_null p then go (byte + 1) else Some p
      in
      go 0

(* Children as (byte, ptr), sorted by byte. *)
let child_list n =
  let ty = ntype n in
  match ty with
  | 0 | 1 ->
      let c = count n in
      let rec go acc i =
        if i < 0 then acc
        else
          let p = read_child n ty i in
          go (if Pptr.is_null p then acc else (key4_16 n i, p) :: acc) (i - 1)
      in
      let sorted = List.sort (fun (a, _) (b, _) -> compare a b) (go [] (c - 1)) in
      (* A crash during the in-place removal's hole compaction can
         leave the last entry present twice (same byte, same pointer);
         collapse such exact duplicates. *)
      let rec dedup = function
        | (a, p) :: (b, q) :: tl when a = b && p = q -> dedup ((a, p) :: tl)
        | hd :: tl -> hd :: dedup tl
        | [] -> []
      in
      dedup sorted
  | 2 ->
      let rec go acc b =
        if b < 0 then acc
        else
          let s = idx48 n b in
          if s = 0 then go acc (b - 1)
          else
            let p = read_child n ty (s - 1) in
            go (if Pptr.is_null p then acc else (b, p) :: acc) (b - 1)
      in
      go [] 255
  | _ ->
      let rec go acc b =
        if b < 0 then acc
        else
          let p = read_child n ty b in
          go (if Pptr.is_null p then acc else (b, p) :: acc) (b - 1)
      in
      go [] 255

(* ---------- persistence helpers ---------- *)

let persist_node_image n =
  Pobj.flush n 0 node_size.(ntype n);
  Pobj.fence n

(* [persist n rel len]: base-relative targeted persistence. *)
let persist n rel len = Pobj.persist n rel len

(* ---------- pending log (allocation / retirement, §5.1(3)) ---------- *)

let free_pending_slots t =
  let tid = Des.Sched.current_id () land (pending_threads - 1) in
  let rec go acc slot =
    if slot >= pending_slots then acc
    else
      go (if Pobj.read_int t.mo (pending_off tid slot) = 0 then acc + 1 else acc)
        (slot + 1)
  in
  go 0 0

(* Mutating operations reserve their worst-case pending-log capacity
   BEFORE acquiring any lock: slots are per-thread, so nobody else can
   consume them afterwards, and waiting here (unpinned, lock-free)
   cannot deadlock with the epoch advancement that recycles slots. *)
let pending_waits = ref 0

let ensure_pending_capacity t n =
  let rec wait attempt =
    if free_pending_slots t < n then begin
      incr pending_waits;
      Epoch.unpin_while t.epoch (fun () ->
          Epoch.try_advance t.epoch;
          if attempt > 50_000 then failwith "Art: pending log exhausted";
          (* exponential: under saturation the blocking epochs span
             millisecond-long fences *)
          Des.Sched.delay (200e-9 *. float_of_int (1 lsl min attempt 10)));
      wait (attempt + 1)
    end
  in
  wait 0

let find_free_pending t =
  let tid = Des.Sched.current_id () land (pending_threads - 1) in
  let rec scan slot =
    if slot >= pending_slots then
      (* cannot happen: capacity was reserved before locking *)
      failwith "Art: pending log underflow (missing reservation)"
    else if Pobj.read_int t.mo (pending_off tid slot) = 0 then pending_off tid slot
    else scan (slot + 1)
  in
  scan 0

(* Allocate an inner node through the pending log: the allocator's
   malloc-to semantics persist the pointer into the log slot
   atomically with the allocation, so a crash can never leak it. *)
let alloc_node t ty =
  let slot = find_free_pending t in
  let ptr = Heap.alloc_to t.heap ~size:node_size.(ty) ~dest_pool:t.meta ~dest_off:slot () in
  t.stats.allocs <- t.stats.allocs + 1;
  (node_of ptr, ptr, slot)

let clear_pending t slot =
  Pobj.write_int t.mo slot 0;
  Pobj.clwb t.mo slot

(* Record a node about to become unreachable (CoW commit).  Must be
   persisted before the commit pointer swap. *)
let log_retire t ptr =
  let slot = find_free_pending t in
  Pobj.write_int t.mo slot ptr;
  Pobj.persist t.mo slot 8;
  slot

(* Free a retired node once no reader can hold it (two epochs). *)
let retire t ptr slot =
  t.stats.retires <- t.stats.retires + 1;
  Epoch.defer t.epoch (fun () ->
      Heap.free t.heap ptr;
      clear_pending t slot)

(* ---------- node construction (on unpublished nodes) ---------- *)

let init_node t n ty ~prefix_len ~prefix =
  Pobj.fill_zero n 0 node_size.(ty);
  Vlock.init (lockh n) ~gen:t.gen;
  Pobj.set_u8 n f_type ty;
  Pobj.set_u8 n f_plen prefix_len;
  let stored = min prefix_len stored_prefix_max in
  for i = 0 to stored - 1 do
    Pobj.write_u8 n (off_prefix + i) (byte_at prefix i)
  done

(* Append a child without any ordering constraints — only valid on a
   node not yet published. *)
let raw_add_child n b ptr =
  let ty = ntype n in
  let c = count n in
  (match ty with
  | 0 | 1 ->
      Pobj.write_u8 n (n4_keys + c) b;
      Pobj.write_int n (child_rel ty c) ptr
  | 2 ->
      Pobj.write_int n (child_rel ty c) ptr;
      Pobj.write_u8 n (n48_index + b) (c + 1)
  | _ -> Pobj.write_int n (child_rel ty b) ptr);
  set_count n (c + 1)

(* ---------- prefix handling ---------- *)

(* Any leaf payload under [n]; used to reconstruct prefix bytes beyond
   the 8 stored ones (the classic ART "optimistic prefix" recovery).
   Each node's children are validated against its version before the
   descent uses them — a torn read must never be dereferenced. *)
let rec any_leaf t n =
  let h = lockh n in
  let v = node_version h ~gen:t.gen in
  let first = first_child n in
  if not (Vlock.validate h ~gen:t.gen ~version:v) then raise Restart;
  match first with
  | None -> raise Restart (* transiently empty under concurrent SMO *)
  | Some p -> if Pptr.is_tagged p then Pptr.untag p else any_leaf t (node_of p)

(* Full prefix bytes of [n], whose subtree starts at key depth
   [depth]. *)
let full_prefix t n ~depth =
  let pl = plen n in
  if pl <= stored_prefix_max then Pobj.read_string n off_prefix pl
  else begin
    let leaf_key = t.key_of_leaf (any_leaf t n) in
    if String.length leaf_key < depth + pl then raise Restart;
    String.sub leaf_key depth pl
  end

(* Compare the key segment at [depth] against the full prefix.
   [`Equal d'] continues at depth [d']; [`Diverge (i, full)] reports
   the first differing position (the key segment may also simply be
   shorter); [`Before]/[`After] order the whole subtree against the
   key (used by ordered searches). *)
let compare_prefix t n ~depth rkey =
  let pl = plen n in
  if pl = 0 then `Equal depth
  else begin
    let full = full_prefix t n ~depth in
    let klen = String.length rkey in
    let rec go i =
      if i >= pl then `Equal (depth + pl)
      else if depth + i >= klen then `Diverge (i, full) (* key exhausted: key < subtree *)
      else
        let kb = byte_at rkey (depth + i) and pb = byte_at full i in
        if kb = pb then go (i + 1) else `Diverge (i, full)
    in
    go 0
  end

let order_of_divergence rkey ~depth full i =
  if depth + i >= String.length rkey then `Before (* key < subtree *)
  else if byte_at rkey (depth + i) < byte_at full i then `Before
  else `After

(* ---------- retry wrapper ---------- *)

let check h ~gen v = if not (Vlock.validate h ~gen ~version:v) then raise Restart

let with_retry t f =
  let rec go attempt =
    match f () with
    | v -> v
    (* Invalid_argument here can only be a pool bounds fault from a
       speculative read that version validation would have discarded:
       treat it like any other optimistic conflict. *)
    | exception (Restart | Invalid_argument _) ->
        t.stats.restarts <- t.stats.restarts + 1;
        if attempt > 10_000 then failwith "Art: livelock (too many restarts)";
        Des.Sched.delay (Float.min (float_of_int attempt *. 50e-9) 2e-6);
        go (attempt + 1)
  in
  go 0

(* ---------- construction / open ---------- *)

let root_lockh t = { Vlock.pool = t.meta; off = off_meta_rootlock }

let read_root t = Pobj.get_int t.mo f_meta_root

let create ~heap ~meta ~epoch ~key_of_leaf =
  if Pool.capacity meta < meta_size then invalid_arg "Art.create: meta pool too small";
  let mo = Pobj.make meta 0 in
  let gen = Pobj.get_int mo f_meta_gen + 1 in
  Pobj.set_int mo f_meta_gen gen;
  Pobj.persist_field mo f_meta_gen;
  {
    heap;
    meta;
    mo;
    gen;
    key_of_leaf;
    epoch;
    stats = { restarts = 0; allocs = 0; retires = 0 };
  }

let stats t = t.stats

let generation t = t.gen

(* ---------- lookup ---------- *)

let lookup t rkey =
  Obs.Span.with_phase Obs.Span.Trie_search @@ fun () ->
  Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit t.epoch) @@ fun () ->
  with_retry t @@ fun () ->
  let gen = t.gen in
  let klen = String.length rkey in
  let rec descend n depth =
    let h = lockh n in
    let v = node_version h ~gen in
    match compare_prefix t n ~depth rkey with
    | `Diverge _ ->
        check h ~gen v;
        None
    | `Equal depth' ->
        if depth' >= klen then begin
          check h ~gen v;
          None
        end
        else begin
          let b = byte_at rkey depth' in
          let child = find_child n b in
          check h ~gen v;
          match child with
          | None -> None
          | Some (_, p) ->
              if Pptr.is_tagged p then begin
                let payload = Pptr.untag p in
                if String.equal (t.key_of_leaf payload) rkey then Some payload else None
              end
              else descend (node_of p) (depth' + 1)
        end
  in
  let rh = root_lockh t in
  let rv = Vlock.begin_read rh ~gen in
  let root = read_root t in
  check rh ~gen rv;
  if Pptr.is_null root then None
  else if Pptr.is_tagged root then begin
    let payload = Pptr.untag root in
    if String.equal (t.key_of_leaf payload) rkey then Some payload else None
  end
  else descend (node_of root) 0

(* ---------- ordered search: greatest leaf <= key (§5.3 routing) ---------- *)

let rec max_leaf t n =
  let h = lockh n in
  let v = node_version h ~gen:t.gen in
  let last = last_child n in
  check h ~gen:t.gen v;
  match last with
  | None -> raise Restart
  | Some p -> if Pptr.is_tagged p then Pptr.untag p else max_leaf t (node_of p)

let lookup_le t rkey =
  Obs.Span.with_phase Obs.Span.Trie_search @@ fun () ->
  Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit t.epoch) @@ fun () ->
  with_retry t @@ fun () ->
  let gen = t.gen in
  let klen = String.length rkey in
  let leaf_le p =
    let payload = Pptr.untag p in
    if String.compare (t.key_of_leaf payload) rkey <= 0 then Some payload else None
  in
  let rec descend n depth =
    let h = lockh n in
    let v = node_version h ~gen in
    match compare_prefix t n ~depth rkey with
    | `Diverge (i, full) -> (
        check h ~gen v;
        match order_of_divergence rkey ~depth full i with
        | `Before -> None (* whole subtree > key *)
        | `After -> Some (max_leaf t n) (* whole subtree < key *))
    | `Equal depth' ->
        if depth' >= klen then begin
          (* key exhausted inside the trie: all leaves below extend it
             and are therefore greater *)
          check h ~gen v;
          None
        end
        else begin
          let b = byte_at rkey depth' in
          let eq = find_child n b in
          let lt = find_lt n b in
          check h ~gen v;
          let from_lt () =
            match lt with
            | None -> None
            | Some p ->
                if Pptr.is_tagged p then Some (Pptr.untag p)
                else Some (max_leaf t (node_of p))
          in
          match eq with
          | Some (_, p) -> (
              let r =
                if Pptr.is_tagged p then leaf_le p else descend (node_of p) (depth' + 1)
              in
              match r with Some _ -> r | None -> from_lt ())
          | None -> from_lt ()
        end
  in
  let rh = root_lockh t in
  let rv = Vlock.begin_read rh ~gen in
  let root = read_root t in
  check rh ~gen rv;
  if Pptr.is_null root then None
  else if Pptr.is_tagged root then leaf_le root
  else descend (node_of root) 0

(* ---------- insert ---------- *)

type insert_outcome = Inserted | Replaced of Pptr.t
(* [Replaced old] returns the previous payload so the caller can
   reclaim it exactly once (the swap is atomic under the slot lock). *)

(* The slot holding the pointer to the current node, and the version
   of the lock guarding that slot. *)
type slot = { s_lock : Vlock.handle; s_version : int; s_pool : Pool.t; s_off : int }

let slot_obj slot = Pobj.make slot.s_pool slot.s_off

let read_slot slot = Pobj.read_int (slot_obj slot) 0

let write_slot slot ptr =
  let o = slot_obj slot in
  Pobj.write_int o 0 ptr;
  Pobj.persist o 0 8

let common_prefix_len a b start =
  let la = String.length a and lb = String.length b in
  let rec go i =
    if start + i < la && start + i < lb && a.[start + i] = b.[start + i] then go (i + 1)
    else i
  in
  go 0

(* Copy [src] (same type) with its prefix shortened to the bytes after
   position [cut]: used by prefix splits.  Returns the new node. *)
let copy_with_prefix t src ~full ~cut =
  let ty = ntype src in
  let pl = String.length full in
  let n, ptr, slot = alloc_node t ty in
  init_node t n ty ~prefix_len:(pl - cut) ~prefix:(String.sub full cut (pl - cut));
  List.iter (fun (b, p) -> raw_add_child n b p) (child_list src);
  persist_node_image n;
  (n, ptr, slot)

(* In-place child insertion protocols: entry persisted first, then the
   store that makes it visible (count / index / pointer). *)
let add_child_inplace n b ptr =
  let ty = ntype n in
  let c = count n in
  match ty with
  | 0 | 1 ->
      Pobj.write_u8 n (n4_keys + c) b;
      Pobj.write_int n (child_rel ty c) ptr;
      Pobj.clwb n (n4_keys + c);
      Pobj.clwb n (child_rel ty c);
      Pobj.fence n;
      set_count n (c + 1);
      persist n off_count 2
  | 2 ->
      (* find a free physical slot by scanning the index *)
      let used = Array.make capacity.(ty) false in
      for byte = 0 to 255 do
        let s = idx48 n byte in
        if s > 0 then used.(s - 1) <- true
      done;
      let rec free_slot i = if used.(i) then free_slot (i + 1) else i in
      let s = free_slot 0 in
      Pobj.write_int n (child_rel ty s) ptr;
      persist n (child_rel ty s) 8;
      (* Index publish is the commit point; count persists in its own
         epoch so a crash can only leave it high (early grow), never
         low (free-slot scan overrun). *)
      Pobj.write_u8 n (n48_index + b) (s + 1);
      persist n (n48_index + b) 1;
      set_count n (c + 1);
      persist n off_count 2
  | _ ->
      Pobj.write_int n (child_rel ty b) ptr;
      persist n (child_rel ty b) 8;
      set_count n (c + 1);
      persist n off_count 2

let insert t rkey payload =
  Obs.Span.with_phase Obs.Span.Trie_search @@ fun () ->
  Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit t.epoch) @@ fun () ->
  ensure_pending_capacity t 4;
  with_retry t @@ fun () ->
  let gen = t.gen in
  let klen = String.length rkey in
  let tagged_payload = Pptr.tagged payload in
  (* Split a leaf: make a Node4 holding the old leaf and the new one,
     commit by swapping the slot pointer (atomic). *)
  let split_leaf slot old_ptr depth =
    if not (Vlock.try_upgrade slot.s_lock ~gen ~version:slot.s_version) then raise Restart;
    let finish_release () = Vlock.release slot.s_lock ~gen ~version:(slot.s_version + 1) in
    let old_key = t.key_of_leaf (Pptr.untag old_ptr) in
    if String.equal old_key rkey then begin
      (* duplicate: replace the payload pointer *)
      write_slot slot tagged_payload;
      finish_release ();
      Replaced (Pptr.untag old_ptr)
    end
    else begin
      let cpl = common_prefix_len old_key rkey depth in
      assert (depth + cpl < klen && depth + cpl < String.length old_key);
      let n, nptr, pslot = alloc_node t 0 in
      init_node t n 0 ~prefix_len:cpl ~prefix:(String.sub rkey depth cpl);
      raw_add_child n (byte_at old_key (depth + cpl)) old_ptr;
      raw_add_child n (byte_at rkey (depth + cpl)) tagged_payload;
      persist_node_image n;
      write_slot slot nptr;
      clear_pending t pslot;
      finish_release ();
      Inserted
    end
  in
  (* Prefix split: CoW the node with a shortened prefix, hang it and
     the new leaf under a fresh Node4, commit via the parent slot. *)
  let prefix_split slot n nv depth i full =
    if not (Vlock.try_upgrade slot.s_lock ~gen ~version:slot.s_version) then raise Restart;
    let release_parent () = Vlock.release slot.s_lock ~gen ~version:(slot.s_version + 1) in
    if not (Vlock.try_upgrade (lockh n) ~gen ~version:nv) then begin
      release_parent ();
      raise Restart
    end;
    assert (depth + i < klen);
    let old_ptr = read_slot slot in
    let copy, _cptr, cslot = copy_with_prefix t n ~full ~cut:(i + 1) in
    let cptr_val = Pptr.make ~pool:(Pool.id copy.pool) ~off:copy.off in
    let n4, nptr, pslot = alloc_node t 0 in
    init_node t n4 0 ~prefix_len:i ~prefix:(String.sub full 0 i);
    raw_add_child n4 (byte_at full i) cptr_val;
    raw_add_child n4 (byte_at rkey (depth + i)) tagged_payload;
    persist_node_image n4;
    let rslot = log_retire t old_ptr in
    write_slot slot nptr (* commit *);
    clear_pending t cslot;
    clear_pending t pslot;
    retire t old_ptr rslot;
    Vlock.release_obsolete (lockh n) ~gen ~version:(nv + 1);
    release_parent ();
    Inserted
  in
  (* Grow a full node to the next type (CoW) and add the new child. *)
  let grow_and_add slot n nv b =
    if not (Vlock.try_upgrade slot.s_lock ~gen ~version:slot.s_version) then raise Restart;
    let release_parent () = Vlock.release slot.s_lock ~gen ~version:(slot.s_version + 1) in
    if not (Vlock.try_upgrade (lockh n) ~gen ~version:nv) then begin
      release_parent ();
      raise Restart
    end;
    let old_ptr = read_slot slot in
    let ty = ntype n in
    assert (ty < 3);
    let big, bptr, bslot = alloc_node t (ty + 1) in
    let pl = plen n in
    let prefix =
      if pl = 0 then ""
      else
        String.init (min pl stored_prefix_max) (fun i -> Char.chr (stored_prefix_byte n i))
    in
    init_node t big (ty + 1) ~prefix_len:pl ~prefix;
    List.iter (fun (kb, p) -> raw_add_child big kb p) (child_list n);
    raw_add_child big b tagged_payload;
    persist_node_image big;
    let rslot = log_retire t old_ptr in
    write_slot slot bptr;
    clear_pending t bslot;
    retire t old_ptr rslot;
    Vlock.release_obsolete (lockh n) ~gen ~version:(nv + 1);
    release_parent ();
    Inserted
  in
  let rec descend slot cur depth =
    if Pptr.is_tagged cur then split_leaf slot cur depth
    else begin
      let n = node_of cur in
      let h = lockh n in
      let v = node_version h ~gen in
      match compare_prefix t n ~depth rkey with
      | `Diverge (i, full) ->
          check h ~gen v;
          prefix_split slot n v depth i full
      | `Equal depth' ->
          if depth' >= klen then begin
            check h ~gen v;
            raise Restart (* impossible for prefix-free keys unless racing *)
          end
          else begin
            let b = byte_at rkey depth' in
            let child = find_child n b in
            check h ~gen v;
            match child with
            | Some (slot_off, p) ->
                descend
                  { s_lock = h; s_version = v; s_pool = n.pool; s_off = slot_off }
                  p (depth' + 1)
            | None ->
                if count n < capacity.(ntype n) then begin
                  if not (Vlock.try_upgrade h ~gen ~version:v) then raise Restart;
                  add_child_inplace n b tagged_payload;
                  Vlock.release h ~gen ~version:(v + 1);
                  Inserted
                end
                else grow_and_add slot n v b
          end
    end
  in
  let rh = root_lockh t in
  let rv = Vlock.begin_read rh ~gen in
  let root = read_root t in
  check rh ~gen rv;
  if Pptr.is_null root then begin
    if not (Vlock.try_upgrade rh ~gen ~version:rv) then raise Restart;
    Pobj.set_int t.mo f_meta_root tagged_payload;
    Pobj.persist_field t.mo f_meta_root;
    Vlock.release rh ~gen ~version:(rv + 1);
    Inserted
  end
  else
    descend
      { s_lock = rh; s_version = rv; s_pool = t.meta; s_off = off_meta_root }
      root 0

(* ---------- delete ---------- *)

(* Remove the child for byte [b] from locked node [n] (present). *)
let remove_child_inplace n b =
  let ty = ntype n in
  let c = count n in
  match ty with
  | 0 | 1 ->
      let rec find i = if key4_16 n i = b then i else find (i + 1) in
      let i = find 0 in
      let last = c - 1 in
      if i <> last then begin
        (* Hole-punch protocol: compacting last into the hole rewrites
           a *live* slot, so each store gets its own fence — a crash
           between any two leaves a state readers handle (they skip
           null children; [child_list] collapses the transient exact
           duplicate of the last entry).  Writing key byte and pointer
           under one fence is not failure-atomic: on a Node16 they sit
           on different cache lines, and (new byte, old pointer) would
           route the moved key to the deleted child. *)
        Pobj.write_int n (child_rel ty i) Pptr.null;
        persist n (child_rel ty i) 8;
        Pobj.write_u8 n (n4_keys + i) (key4_16 n last);
        persist n (n4_keys + i) 1;
        Pobj.write_int n (child_rel ty i) (read_child n ty last);
        persist n (child_rel ty i) 8
      end;
      set_count n last;
      persist n off_count 2
  | 2 ->
      (* The index clear commits the removal; count follows in its own
         epoch so it can only lag *high* — a low count would make the
         in-place add's free-slot scan run past 48 used slots. *)
      Pobj.write_u8 n (n48_index + b) 0;
      persist n (n48_index + b) 1;
      set_count n (c - 1);
      persist n off_count 2
  | _ ->
      Pobj.write_int n (child_rel ty b) Pptr.null;
      persist n (child_rel ty b) 8;
      set_count n (max 0 (c - 1));
      persist n off_count 2

let shrink_threshold = [| 0; 3; 12; 40 |]

let delete t rkey =
  Obs.Span.with_phase Obs.Span.Trie_search @@ fun () ->
  Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit t.epoch) @@ fun () ->
  ensure_pending_capacity t 4;
  with_retry t @@ fun () ->
  let gen = t.gen in
  let klen = String.length rkey in
  (* Remove byte [b] from [n] (whose prefix starts at key depth
     [depth]); if the node underflows, CoW-shrink (or path-compress a
     Node4 with one survivor) and commit via [slot]. *)
  let remove_and_shrink slot n nv b ~depth =
    let ty = ntype n in
    let c = count n in
    let needs_structural = (ty = 0 && c <= 2) || (ty > 0 && c - 1 <= shrink_threshold.(ty)) in
    if not needs_structural then begin
      if not (Vlock.try_upgrade (lockh n) ~gen ~version:nv) then raise Restart;
      let payload =
        match find_child n b with Some (_, p) -> Pptr.untag p | None -> raise Restart
      in
      remove_child_inplace n b;
      Vlock.release (lockh n) ~gen ~version:(nv + 1);
      Some payload
    end
    else begin
      if not (Vlock.try_upgrade slot.s_lock ~gen ~version:slot.s_version) then raise Restart;
      let release_parent () = Vlock.release slot.s_lock ~gen ~version:(slot.s_version + 1) in
      if not (Vlock.try_upgrade (lockh n) ~gen ~version:nv) then begin
        release_parent ();
        raise Restart
      end;
      (* every structural case below retires [n] *)
      let release_node () = Vlock.release_obsolete (lockh n) ~gen ~version:(nv + 1) in
      let old_ptr = read_slot slot in
      let payload =
        match find_child n b with
        | Some (_, p) -> Pptr.untag p
        | None ->
            release_node ();
            release_parent ();
            raise Restart
      in
      let survivors = List.filter (fun (kb, _) -> kb <> b) (child_list n) in
      (match survivors with
      | [] ->
          (* Root-only situation: the tree is emptying. *)
          let rslot = log_retire t old_ptr in
          write_slot slot Pptr.null;
          retire t old_ptr rslot
      | [ (sb, p) ] when ty = 0 ->
          if Pptr.is_tagged p then begin
            (* Path compression: the leaf replaces the node. *)
            let rslot = log_retire t old_ptr in
            write_slot slot p;
            retire t old_ptr rslot
          end
          else begin
            (* Merge prefixes: CoW the child with the combined prefix
               node.prefix + branch byte + child.prefix. *)
            let child = node_of p in
            let cv = Vlock.acquire (lockh child) ~gen in
            let node_prefix = full_prefix t n ~depth in
            let child_depth = depth + plen n + 1 in
            let child_prefix = full_prefix t child ~depth:child_depth in
            let merged = node_prefix ^ String.make 1 (Char.chr sb) ^ child_prefix in
            let copy, _cp, cslot = copy_with_prefix t child ~full:merged ~cut:0 in
            let cptr_val = Pptr.make ~pool:(Pool.id copy.pool) ~off:copy.off in
            let r1 = log_retire t old_ptr in
            let r2 = log_retire t p in
            write_slot slot cptr_val;
            clear_pending t cslot;
            retire t old_ptr r1;
            retire t p r2;
            Vlock.release_obsolete (lockh child) ~gen ~version:cv
          end
      | _ ->
          (* CoW shrink to the next smaller type (or same type for
             Node4 with >1 survivors — cannot happen given the guard). *)
          let new_ty = if ty = 0 then 0 else ty - 1 in
          let small, sptr, sslot = alloc_node t new_ty in
          let pl = plen n in
          let prefix =
            if pl = 0 then ""
            else
              String.init (min pl stored_prefix_max) (fun i ->
                  Char.chr (stored_prefix_byte n i))
          in
          init_node t small new_ty ~prefix_len:pl ~prefix;
          List.iter (fun (kb, p) -> raw_add_child small kb p) survivors;
          persist_node_image small;
          let rslot = log_retire t old_ptr in
          write_slot slot sptr;
          clear_pending t sslot;
          retire t old_ptr rslot);
      release_node ();
      release_parent ();
      Some payload
    end
  in
  let rec descend slot cur depth =
    if Pptr.is_tagged cur then begin
      (* Leaf directly in the slot (root or under a node). *)
      if String.equal (t.key_of_leaf (Pptr.untag cur)) rkey then begin
        (* only reachable for the root leaf: inner leaves are handled
           by [remove_and_shrink] at their parent *)
        if not (Vlock.try_upgrade slot.s_lock ~gen ~version:slot.s_version) then
          raise Restart;
        write_slot slot Pptr.null;
        Vlock.release slot.s_lock ~gen ~version:(slot.s_version + 1);
        Some (Pptr.untag cur)
      end
      else None
    end
    else begin
      let n = node_of cur in
      let h = lockh n in
      let v = node_version h ~gen in
      match compare_prefix t n ~depth rkey with
      | `Diverge _ ->
          check h ~gen v;
          None
      | `Equal depth' ->
          if depth' >= klen then begin
            check h ~gen v;
            None
          end
          else begin
            let b = byte_at rkey depth' in
            let child = find_child n b in
            check h ~gen v;
            match child with
            | None -> None
            | Some (slot_off, p) ->
                if Pptr.is_tagged p then begin
                  if String.equal (t.key_of_leaf (Pptr.untag p)) rkey then
                    remove_and_shrink slot n v b ~depth
                  else None
                end
                else
                  descend
                    { s_lock = h; s_version = v; s_pool = n.pool; s_off = slot_off }
                    p (depth' + 1)
          end
    end
  in
  let rh = root_lockh t in
  let rv = Vlock.begin_read rh ~gen in
  let root = read_root t in
  check rh ~gen rv;
  if Pptr.is_null root then None
  else
    descend { s_lock = rh; s_version = rv; s_pool = t.meta; s_off = off_meta_root } root 0

(* ---------- ordered iteration (baseline scans) ---------- *)

exception Stop

(* Read a node's children consistently (small local retry loop). *)
let consistent_children t n =
  let h = lockh n in
  let rec go attempt =
    let v = Vlock.begin_read h ~gen:t.gen in
    if Vlock.is_obsolete v then raise Restart;
    let cs = child_list n in
    let pl = plen n in
    if Vlock.validate h ~gen:t.gen ~version:v then (cs, pl)
    else begin
      if attempt > 1000 then raise Restart;
      Des.Sched.delay 100e-9;
      go (attempt + 1)
    end
  in
  go 0

let iter_from t rkey f =
  Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit t.epoch) @@ fun () ->
  let klen = String.length rkey in
  let emit p = if not (f p) then raise Stop in
  let rec walk_all cur =
    if Pptr.is_tagged cur then emit (Pptr.untag cur)
    else
      let cs, _ = consistent_children t (node_of cur) in
      List.iter (fun (_, p) -> walk_all p) cs
  in
  let rec walk_from cur depth =
    if Pptr.is_tagged cur then begin
      let payload = Pptr.untag cur in
      if String.compare (t.key_of_leaf payload) rkey >= 0 then emit payload
    end
    else begin
      let n = node_of cur in
      let cs, _pl = consistent_children t n in
      match compare_prefix t n ~depth rkey with
      | `Diverge (i, full) -> (
          match order_of_divergence rkey ~depth full i with
          | `Before -> List.iter (fun (_, p) -> walk_all p) cs (* subtree > key *)
          | `After -> () (* subtree < key *))
      | `Equal depth' ->
          if depth' >= klen then List.iter (fun (_, p) -> walk_all p) cs
          else begin
            let b = byte_at rkey depth' in
            List.iter
              (fun (kb, p) ->
                if kb = b then walk_from p (depth' + 1)
                else if kb > b then walk_all p)
              cs
          end
    end
  in
  let root = read_root t in
  if not (Pptr.is_null root) then begin
    try with_retry t (fun () -> walk_from root 0) with Stop -> ()
  end

(* ---------- recovery (§5.1, §5.9) ---------- *)

(* Depth-first reachability of [target] (an untagged pointer that may
   be an inner node or a leaf payload). *)
let reachable t target =
  let rec visit cur =
    let p = Pptr.untag cur in
    p = target
    ||
    if Pptr.is_tagged cur then false
    else List.exists (fun (_, c) -> visit c) (child_list (node_of cur))
  in
  let root = read_root t in
  (not (Pptr.is_null root)) && visit root

let recover t =
  Obs.Span.with_phase Obs.Span.Recovery @@ fun () ->
  (* Bump the generation: every pre-crash lock becomes void (§5.7). *)
  let gen = Pobj.get_int t.mo f_meta_gen + 1 in
  Pobj.set_int t.mo f_meta_gen gen;
  Pobj.persist_field t.mo f_meta_gen;
  t.gen <- gen;
  (* Scan the pending log: free whatever never got linked (allocation
     interrupted) or already got unlinked (retirement committed). *)
  let freed = ref 0 in
  for tid = 0 to pending_threads - 1 do
    for slot = 0 to pending_slots - 1 do
      let off = pending_off tid slot in
      let ptr = Pobj.read_int t.mo off in
      if ptr <> 0 then begin
        if not (reachable t (Pptr.untag ptr)) then begin
          Heap.free t.heap (Pptr.untag ptr);
          incr freed
        end;
        Pobj.write_int t.mo off 0;
        Pobj.clwb t.mo off
      end
    done
  done;
  Pobj.fence t.mo;
  !freed

(* Drop the whole trie without freeing: used when the backing pool was
   volatile (DRAM search layer) and has been wiped by a crash. *)
let reset t =
  Pobj.set_int t.mo f_meta_root Pptr.null;
  Pobj.persist_field t.mo f_meta_root;
  for tid = 0 to pending_threads - 1 do
    for slot = 0 to pending_slots - 1 do
      let off = pending_off tid slot in
      if Pobj.read_int t.mo off <> 0 then begin
        Pobj.write_int t.mo off 0;
        Pobj.clwb t.mo off
      end
    done
  done;
  Pobj.fence t.mo

(* ---------- introspection (tests) ---------- *)

let rec subtree_size cur =
  if Pptr.is_tagged cur then 1
  else
    List.fold_left (fun acc (_, c) -> acc + subtree_size c) 0 (child_list (node_of cur))

let cardinal t =
  let root = read_root t in
  if Pptr.is_null root then 0 else subtree_size root

let depth_histogram t =
  let tbl = Hashtbl.create 16 in
  let rec visit cur d =
    if Pptr.is_tagged cur then
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
    else List.iter (fun (_, c) -> visit c (d + 1)) (child_list (node_of cur))
  in
  let root = read_root t in
  if not (Pptr.is_null root) then visit root 0;
  tbl
