(* PACTree (paper §4-§5): a persistent hybrid range index.

   - Data layer: a doubly-linked list of slotted {!Data_node}s.
   - Search layer: {!Art} (PDL-ART) indexing anchor keys.
   - The two layers are decoupled: splits and merges log to the
     per-thread {!Smo_log} and return; a background updater replays
     the log into the search layer (§4.3).  Readers tolerate the
     ephemeral inconsistency by walking the data layer's sibling
     pointers from the "jump node" (§5.3).

   Configuration toggles expose the paper's factor analysis (Fig 12):
   per-NUMA pools, selective persistence, async vs synchronous SMO,
   and a DRAM-resident search layer. *)

module Pool = Nvm.Pool
module Machine = Nvm.Machine
module Heap = Pmalloc.Heap
module Pptr = Pmalloc.Pptr
module Node = Data_node

type config = {
  key_inline : int;  (** 8 (integer keys) or 32 (string keys) *)
  numa_pools : int;  (** 0 = one pool per NUMA domain (default) *)
  async_smo : bool;  (** asynchronous search-layer update (§4.3) *)
  selective_persistence : bool;  (** do not persist permutation arrays (§4.4) *)
  search_layer_dram : bool;  (** place the search layer in DRAM (ablation) *)
  alloc_kind : Heap.kind;
  data_capacity : int;
  search_capacity : int;
}

let default_config =
  {
    key_inline = 8;
    numa_pools = 0;
    async_smo = true;
    selective_persistence = true;
    search_layer_dram = false;
    alloc_kind = Heap.Pmdk;
    data_capacity = 1 lsl 26;
    search_capacity = 1 lsl 24;
  }

type stats = {
  mutable splits : int;
  mutable merges : int;
  mutable reader_retries : int;
}

type t = {
  machine : Machine.t;
  cfg : config;
  lay : Node.layout;
  data_heap : Heap.t;
  search_heap : Heap.t;
  log : Smo_log.t;
  meta : Pool.t;
  art : Art.t;
  epoch : Epoch.t;
  mutable gen : int;
  (* updater coordination (volatile) *)
  uwq : Des.Sched.Waitq.t;
  pending_refs : Smo_log.entry_ref Queue.t;
  mutable smo_hint : bool;
  mutable shutdown : bool;
  mutable updater_running : bool;
  jump_hist : int array; (* §6.7: hops from jump node to target *)
  stats : stats;
}

(* Tree-private meta fields live just past the trie's meta region. *)
let round_up x a = (x + a - 1) / a * a

let tree_meta_base = round_up Art.meta_size 64

let off_head = tree_meta_base

let off_ts = tree_meta_base + 8

let epoch t = t.epoch

let machine t = t.machine

let data_heap t = t.data_heap

let search_heap t = t.search_heap

let layout t = t.lay

let stats t = t.stats

let art_stats t = Art.stats t.art

let jump_histogram t = Array.copy t.jump_hist

let create machine ?(cfg = default_config) () =
  let numa_count = Machine.numa_count machine in
  let npools = if cfg.numa_pools = 0 then numa_count else cfg.numa_pools in
  let data_heap =
    Heap.create machine ~kind:cfg.alloc_kind ~name:"pactree.data" ~numa_pools:npools
      ~capacity:cfg.data_capacity ()
  in
  let search_heap =
    (* A DRAM search layer uses volatile heap metadata too: there is
       nothing crash-consistent about DRAM (the ablation's point). *)
    let kind = if cfg.search_layer_dram then Heap.Volatile_meta else cfg.alloc_kind in
    Heap.create machine ~volatile_pool:cfg.search_layer_dram ~kind ~name:"pactree.search"
      ~numa_pools:npools ~capacity:cfg.search_capacity ()
  in
  let log_pools =
    Array.init npools (fun i ->
        let p =
          Pool.create machine
            ~name:(Printf.sprintf "pactree.log.%d" i)
            ~numa:(i mod numa_count) ~capacity:Smo_log.region_size ()
        in
        Pmalloc.Registry.register p;
        p)
  in
  let log = Smo_log.create log_pools ~base:0 in
  let meta =
    Pool.create machine ~name:"pactree.meta" ~numa:0 ~capacity:(tree_meta_base + 64) ()
  in
  Pmalloc.Registry.register meta;
  let lay =
    Node.layout ~persist_perm:(not cfg.selective_persistence) ~key_inline:cfg.key_inline ()
  in
  let key_of_leaf ptr = Key.to_radix (Node.anchor lay (Node.of_ptr ptr)) in
  let epoch = Epoch.create () in
  let art = Art.create ~heap:search_heap ~meta ~epoch ~key_of_leaf in
  let t =
    {
      machine;
      cfg;
      lay;
      data_heap;
      search_heap;
      log;
      meta;
      art;
      epoch;
      gen = Art.generation art;
      uwq = Des.Sched.Waitq.create ();
      pending_refs = Queue.create ();
      smo_hint = false;
      shutdown = false;
      updater_running = false;
      jump_hist = Array.make 16 0;
      stats = { splits = 0; merges = 0; reader_retries = 0 };
    }
  in
  (* Bootstrap: one head data node with the minimum anchor "".  The
     head pointer doubles as the malloc-to destination, so creation
     itself cannot leak. *)
  if Pobj.read_int (Pobj.make meta 0) off_head = 0 then begin
    let ptr =
      Heap.alloc_to data_heap ~numa:0 ~size:lay.Node.node_size ~dest_pool:meta
        ~dest_off:off_head ()
    in
    let head = Node.of_ptr ptr in
    Node.init lay head ~gen:t.gen ~anchor:"" ~next:Pptr.null ~prev:Pptr.null;
    Pobj.persist head 0 lay.Node.node_size;
    ignore (Art.insert art (Key.to_radix "") ptr)
  end;
  t

let head_node t = Node.of_ptr (Pobj.read_int (Pobj.make t.meta 0) off_head)

(* Monotonic SMO timestamps (persisted lazily; replay order only
   matters among entries that coexist). *)
let next_ts t =
  let rec go () =
    let mo = Pobj.make t.meta 0 in
    let v = Pobj.read_int mo off_ts in
    if Pobj.cas mo off_ts ~expected:v (v + 1) then begin
      Pobj.clwb mo off_ts;
      v + 1
    end
    else go ()
  in
  go ()

(* ---------- locating the target data node (§5.3) ---------- *)

exception Lost
(* Raised when the data-layer walk does not converge (e.g. after
   reading state a concurrent SMO tore down); callers retry. *)

(* From the search-layer jump node, walk sibling pointers until the
   node whose [anchor, next.anchor) range covers [key].  Unsynchronised
   search layers only cost extra hops (ephemeral inconsistency). *)
let locate t key =
  let rkey = Key.to_radix key in
  let jump =
    match Art.lookup_le t.art rkey with
    | Some p -> Node.of_ptr p
    | None -> head_node t
  in
  let rec walk node hops =
    if hops >= 1000 then raise Lost
    else if Node.is_deleted node then walk (Node.of_ptr (Node.prev node)) (hops + 1)
    else if Node.compare_anchor node key > 0 then
      walk (Node.of_ptr (Node.prev node)) (hops + 1)
    else begin
      let nxt = Node.next node in
      if (not (Pptr.is_null nxt)) && Node.compare_anchor (Node.of_ptr nxt) key <= 0 then
        walk (Node.of_ptr nxt) (hops + 1)
      else (node, hops)
    end
  in
  let node, hops = Obs.Span.with_phase Obs.Span.Dnode_scan (fun () -> walk jump 0) in
  let bucket = min hops (Array.length t.jump_hist - 1) in
  t.jump_hist.(bucket) <- t.jump_hist.(bucket) + 1;
  node

(* Is [node], under its current state, the right home for [key]? *)
let covers node key =
  (not (Node.is_deleted node))
  && Node.compare_anchor node key <= 0
  &&
  let nxt = Node.next node in
  Pptr.is_null nxt || Node.compare_anchor (Node.of_ptr nxt) key > 0

(* Optimistic read of the target node: [f] must be read-only; its
   result is returned once the version validates.  (Kept for scans /
   future read operations; [lookup] has a specialised fast path.) *)
let _with_reader t key f =
  Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit t.epoch) @@ fun () ->
  let rec attempt n =
    if n > 10_000 then failwith "Tree: reader livelock";
    match locate t key with
    | exception Lost ->
        t.stats.reader_retries <- t.stats.reader_retries + 1;
        Des.Sched.delay 100e-9;
        attempt (n + 1)
    | node ->
        let h = Node.lock_handle node in
        let v = Vlock.begin_read h ~gen:t.gen in
        if not (covers node key) then begin
          t.stats.reader_retries <- t.stats.reader_retries + 1;
          Des.Sched.delay 50e-9;
          attempt (n + 1)
        end
        else begin
          let r = f node in
          if Vlock.validate h ~gen:t.gen ~version:v then r
          else begin
            t.stats.reader_retries <- t.stats.reader_retries + 1;
            attempt (n + 1)
          end
        end
  in
  attempt 0

(* Write-lock the target node (§5.5: all writes lock, work, release). *)
let locked_target t key =
  let rec attempt n =
    if n > 10_000 then failwith "Tree: writer livelock";
    match locate t key with
    | exception Lost ->
        Des.Sched.delay 100e-9;
        attempt (n + 1)
    | node ->
        let h = Node.lock_handle node in
        let wv = Vlock.acquire h ~gen:t.gen in
        if covers node key then (node, wv)
        else begin
          Vlock.release h ~gen:t.gen ~version:wv;
          Des.Sched.delay 50e-9;
          attempt (n + 1)
        end
  in
  attempt 0

let release t node wv = Vlock.release (Node.lock_handle node) ~gen:t.gen ~version:wv

(* ---------- SMO replay (updater fast path) ---------- *)

(* Fast-path replay for entries produced by a completed split: the
   data layer is already consistent; only the search layer lags. *)
let replay_split_fast t e =
  match Smo_log.read e with
  | Some (_, Smo_log.Split { anchor; _ }) ->
      let new_ptr = Smo_log.aux e in
      assert (not (Pptr.is_null new_ptr));
      ignore (Art.insert t.art (Key.to_radix anchor) new_ptr);
      Smo_log.clear e
  | _ -> ()

let replay_merge_fast t e =
  match Smo_log.read e with
  | Some (_, Smo_log.Merge { right; anchor; _ }) ->
      (* Delete the anchor only while it still names the merged node:
         a later split of the absorbing node may legitimately reuse
         the anchor key. *)
      (match Art.lookup t.art (Key.to_radix anchor) with
      | Some p when Pptr.equal p right -> ignore (Art.delete t.art (Key.to_radix anchor))
      | Some _ | None -> ());
      (* Physically free after two epochs (§5.6); the log entry stays
         until the free is durable so recovery can still find it. *)
      Epoch.defer t.epoch (fun () ->
          Heap.free t.data_heap right;
          Smo_log.clear e)
  | _ -> ()

let replay_entry_fast t e =
  match Smo_log.read e with
  | Some (_, Smo_log.Split _) -> replay_split_fast t e
  | Some (_, Smo_log.Merge _) -> replay_merge_fast t e
  | None -> ()

let enqueue_smo t e =
  if t.cfg.async_smo && (t.updater_running || Des.Sched.running ()) then begin
    Queue.push e t.pending_refs;
    t.smo_hint <- true;
    match Des.Sched.self () with
    | Some sched -> Des.Sched.Waitq.signal_all sched t.uwq
    | None -> ()
  end
  else replay_entry_fast t e

(* ---------- split (§5.6) ---------- *)

let persist_field node rel = Pobj.persist node rel 8

let split_and_insert t node wv key value =
  Obs.Span.with_phase Obs.Span.Smo @@ fun () ->
  t.stats.splits <- t.stats.splits + 1;
  let sorted = Node.sorted_live t.lay node in
  let total = List.length sorted in
  let move = List.filteri (fun i _ -> i >= total / 2) sorted in
  let anchor = fst (List.hd move) in
  (* 1. Log the split. *)
  let ts = next_ts t in
  let e = Smo_log.append t.log ~ts (Smo_log.Split { left = Node.to_ptr node; anchor }) in
  (* 2. Allocate the new node straight into the log entry (no leak). *)
  let dest_pool, dest_off = Smo_log.aux_field e in
  let new_ptr = Heap.alloc_to t.data_heap ~size:t.lay.Node.node_size ~dest_pool ~dest_off () in
  let nnode = Node.of_ptr new_ptr in
  (* 3. Build and persist the new node before publishing it. *)
  let old_next = Node.next node in
  Node.init t.lay nnode ~gen:t.gen ~anchor ~next:old_next ~prev:(Node.to_ptr node);
  Node.copy_into t.lay ~src:node ~dst:nnode move;
  Pobj.persist nnode 0 t.lay.Node.node_size;
  (* 4. Publish: link right of the splitting node (atomic). *)
  Node.set_next node new_ptr;
  persist_field node Node.off_next;
  (* 5. Retire the moved slots (atomic bitmap update). *)
  Node.clear_slots node (List.map snd move);
  (* 6. Fix the right neighbour's prev pointer. *)
  if not (Pptr.is_null old_next) then begin
    let rn = Node.of_ptr old_next in
    Node.set_prev rn new_ptr;
    persist_field rn Node.off_prev
  end;
  (* 7. Search layer: async (off the critical path) or inline. *)
  enqueue_smo t e;
  (* 8. Finally place the pending key-value pair. *)
  if Key.compare key anchor < 0 then begin
    (match Node.insert t.lay node key value with
    | Node.Ok -> ()
    | Node.Full | Node.Absent -> assert false);
    release t node wv
  end
  else begin
    let nwv = Vlock.acquire (Node.lock_handle nnode) ~gen:t.gen in
    (match Node.insert t.lay nnode key value with
    | Node.Ok -> ()
    | Node.Full | Node.Absent -> assert false);
    release t nnode nwv;
    release t node wv
  end

(* ---------- merge (§5.6) ---------- *)

let merge_threshold = Node.entries / 2

let try_merge t node =
  Obs.Span.with_phase Obs.Span.Smo @@ fun () ->
  let nxt = Node.next node in
  if Pptr.is_null nxt then false
  else begin
    let rn = Node.of_ptr nxt in
    (* [node] is locked, so node.next is stable and rn cannot be
       concurrently merged away (that would need our lock). *)
    if Node.live_count node + Node.live_count rn >= merge_threshold then false
    else begin
      t.stats.merges <- t.stats.merges + 1;
      let rwv = Vlock.acquire (Node.lock_handle rn) ~gen:t.gen in
      let anchor = Node.anchor t.lay rn in
      let ts = next_ts t in
      let e =
        Smo_log.append t.log ~ts
          (Smo_log.Merge { left = Node.to_ptr node; right = nxt; anchor })
      in
      (* Move the right node's pairs into the left (bitmap-atomic). *)
      Node.absorb t.lay ~src:rn ~dst:node;
      (* Logical deletion, then unlink. *)
      Node.set_deleted rn true;
      persist_field rn Node.off_deleted;
      let rnn = Node.next rn in
      Node.set_next node rnn;
      persist_field node Node.off_next;
      if not (Pptr.is_null rnn) then begin
        let rnn_node = Node.of_ptr rnn in
        Node.set_prev rnn_node (Node.to_ptr node);
        persist_field rnn_node Node.off_prev
      end;
      enqueue_smo t e;
      Vlock.release (Node.lock_handle rn) ~gen:t.gen ~version:rwv;
      true
    end
  end

(* ---------- public operations ---------- *)

(* Lookup fast path (§5.3): go straight to the search layer's jump
   node and search it.  Every live key exists in exactly one data
   node, so a validated hit needs no range check at all — in the
   common case the lookup touches no sibling.  Only a miss (or a jump
   node that does not cover the key) falls back to the bounds check
   and the sibling walk. *)
let lookup t key =
  Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit t.epoch) @@ fun () ->
  let rkey = Key.to_radix key in
  let rec attempt n ~use_jump =
    if n > 10_000 then failwith "Tree: reader livelock";
    let retry () =
      t.stats.reader_retries <- t.stats.reader_retries + 1;
      Des.Sched.delay 50e-9;
      attempt (n + 1) ~use_jump:false
    in
    let try_node node ~direct =
      let h = Node.lock_handle node in
      let v = Vlock.begin_read h ~gen:t.gen in
      if direct && (Node.is_deleted node || Node.compare_anchor node key > 0) then
        (* the jump node cannot host the key: take the walking path *)
        attempt n ~use_jump:false
      else begin
        match Node.find t.lay node key with
        | Some (_, value) ->
            if Vlock.validate h ~gen:t.gen ~version:v then begin
              if direct then t.jump_hist.(0) <- t.jump_hist.(0) + 1;
              Some value
            end
            else retry ()
        | None ->
            if covers node key && Vlock.validate h ~gen:t.gen ~version:v then begin
              if direct then t.jump_hist.(0) <- t.jump_hist.(0) + 1;
              None
            end
            else if direct then attempt n ~use_jump:false
            else retry ()
      end
    in
    if use_jump then begin
      match Art.lookup_le t.art rkey with
      | Some p -> try_node (Node.of_ptr p) ~direct:true
      | None -> try_node (head_node t) ~direct:true
    end
    else begin
      match locate t key with
      | exception Lost -> retry ()
      | node -> try_node node ~direct:false
    end
  in
  attempt 0 ~use_jump:true

let insert t key value =
  Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit t.epoch) @@ fun () ->
  let node, wv = locked_target t key in
  match Node.find t.lay node key with
  | Some _ ->
      (match Node.update t.lay node key value with
      | Node.Ok -> ()
      | Node.Full | Node.Absent -> assert false);
      release t node wv
  | None -> (
      match Node.insert t.lay node key value with
      | Node.Ok -> release t node wv
      | Node.Full -> split_and_insert t node wv key value
      | Node.Absent -> assert false)

let update t key value =
  Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit t.epoch) @@ fun () ->
  let node, wv = locked_target t key in
  let r = Node.update t.lay node key value in
  release t node wv;
  r = Node.Ok

(* Merge [node] into its left neighbour (fresh left-then-right lock
   acquisition, so lock order stays left-to-right). *)
let try_merge_left t node_ptr =
  let node = Node.of_ptr node_ptr in
  let p = Node.prev node in
  if not (Pptr.is_null p) then begin
    let pnode = Node.of_ptr p in
    let h = Node.lock_handle pnode in
    let wv = Vlock.acquire h ~gen:t.gen in
    if (not (Node.is_deleted pnode)) && Pptr.equal (Node.next pnode) node_ptr then
      ignore (try_merge t pnode);
    Vlock.release h ~gen:t.gen ~version:wv
  end

let delete t key =
  Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit t.epoch) @@ fun () ->
  let node, wv = locked_target t key in
  match Node.delete t.lay node key with
  | Node.Absent ->
      release t node wv;
      false
  | Node.Ok ->
      let merged_right = try_merge t node in
      let small = 2 * Node.live_count node < merge_threshold in
      release t node wv;
      if (not merged_right) && small then try_merge_left t (Node.to_ptr node);
      true
  | Node.Full -> assert false

(* Range scan (§5.4): per-node optimistic read; each node's batch is
   validated against its version before being committed to the
   result. *)
let scan t key count =
  Epoch.enter t.epoch;
  Fun.protect ~finally:(fun () -> Epoch.exit t.epoch) @@ fun () ->
  let acc = ref [] and taken = ref 0 in
  let rec scan_node node low attempt =
    if !taken >= count then ()
    else if attempt > 10_000 then failwith "Tree: scan livelock"
    else begin
      let h = Node.lock_handle node in
      let v = Vlock.begin_read h ~gen:t.gen in
      if Node.is_deleted node then
        (* jump to the surviving left node *)
        scan_node (Node.of_ptr (Node.prev node)) low (attempt + 1)
      else begin
        let batch = ref [] and batch_n = ref 0 in
        let budget = count - !taken in
        let keep k value =
          batch := (k, value) :: !batch;
          incr batch_n;
          !batch_n < budget
        in
        ignore (Node.scan_from t.lay node low ~f:keep);
        let nxt = Node.next node in
        if Vlock.validate h ~gen:t.gen ~version:v then begin
          (* [batch] is newest-first; keep [acc] globally newest-first *)
          acc := !batch @ !acc;
          taken := !taken + !batch_n;
          if !taken < count && not (Pptr.is_null nxt) then
            scan_node (Node.of_ptr nxt) "" 0
        end
        else begin
          t.stats.reader_retries <- t.stats.reader_retries + 1;
          scan_node node low (attempt + 1)
        end
      end
    end
  in
  let rec locate_retry n =
    if n > 10_000 then failwith "Tree: scan livelock";
    match locate t key with
    | node -> node
    | exception Lost ->
        Des.Sched.delay 100e-9;
        locate_retry (n + 1)
  in
  scan_node (locate_retry 0) key 0;
  List.rev !acc

(* ---------- background updater (§5.6) ---------- *)

let drain_smo t =
  Obs.Span.with_phase Obs.Span.Log_replay @@ fun () ->
  let batch = ref [] in
  while not (Queue.is_empty t.pending_refs) do
    batch := Queue.pop t.pending_refs :: !batch
  done;
  let stamped =
    List.filter_map (fun e -> Option.map (fun (ts, _) -> (ts, e)) (Smo_log.read e)) !batch
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) stamped in
  List.iter (fun (_, e) -> replay_entry_fast t e) sorted;
  Epoch.try_advance t.epoch

let updater_loop t =
  t.updater_running <- true;
  let rec loop () =
    if Queue.is_empty t.pending_refs && not t.smo_hint then begin
      if t.shutdown then ()
      else begin
        Des.Sched.Waitq.wait t.uwq;
        loop ()
      end
    end
    else begin
      t.smo_hint <- false;
      drain_smo t;
      loop ()
    end
  in
  loop ();
  (* Shutdown: let the epoch machinery run the deferred frees. *)
  Epoch.try_advance t.epoch;
  Epoch.try_advance t.epoch;
  Epoch.try_advance t.epoch;
  t.updater_running <- false

let request_shutdown t =
  t.shutdown <- true;
  match Des.Sched.self () with
  | Some sched -> Des.Sched.Waitq.signal_all sched t.uwq
  | None -> ()

let reset_shutdown t = t.shutdown <- false

let smo_backlog t = Queue.length t.pending_refs + Smo_log.active_count t.log

(* ---------- recovery (§5.9) ---------- *)

let recover_split t e left anchor =
  let new_ptr = Smo_log.aux e in
  if Pptr.is_null new_ptr then
    (* Interrupted before allocation: nothing durable happened and the
       triggering insert was never acknowledged. *)
    Smo_log.clear e
  else begin
    let node = Node.of_ptr left in
    let nnode = Node.of_ptr new_ptr in
    (* The link is written only after the new node is fully persisted,
       so a missing link means we must rebuild the new node. *)
    if not (Pptr.equal (Node.next node) new_ptr) then begin
      let sorted = Node.sorted_live t.lay node in
      let move = List.filter (fun (k, _) -> Key.compare k anchor >= 0) sorted in
      let old_next = Node.next node in
      Node.init t.lay nnode ~gen:t.gen ~anchor ~next:old_next ~prev:left;
      Node.copy_into t.lay ~src:node ~dst:nnode move;
      Pobj.persist nnode 0 t.lay.Node.node_size;
      Node.set_next node new_ptr;
      persist_field node Node.off_next
    end;
    (* Drop any moved keys still present in the left node. *)
    let stale =
      List.filter_map
        (fun (k, slot) -> if Key.compare k anchor >= 0 then Some slot else None)
        (Node.sorted_live t.lay node)
    in
    if stale <> [] then Node.clear_slots node stale;
    (* Fix the right neighbour's prev pointer. *)
    let rn = Node.next nnode in
    if not (Pptr.is_null rn) then begin
      let rn_node = Node.of_ptr rn in
      if not (Pptr.equal (Node.prev rn_node) new_ptr) then begin
        Node.set_prev rn_node new_ptr;
        persist_field rn_node Node.off_prev
      end
    end;
    (* Search layer. *)
    (match Art.lookup t.art (Key.to_radix anchor) with
    | Some p when Pptr.equal p new_ptr -> ()
    | Some _ | None -> ignore (Art.insert t.art (Key.to_radix anchor) new_ptr));
    Smo_log.clear e
  end

let recover_merge t e left right anchor =
  let node = Node.of_ptr left in
  let rn = Node.of_ptr right in
  (* Re-copy any keys that did not make it into the left node (key
     ranges are disjoint, so membership is the completion test). *)
  List.iter
    (fun (k, v) ->
      if Node.find t.lay node k = None then
        match Node.insert t.lay node k v with
        | Node.Ok -> ()
        | Node.Full | Node.Absent -> assert false)
    (Node.live_entries t.lay rn);
  if not (Node.is_deleted rn) then begin
    Node.set_deleted rn true;
    persist_field rn Node.off_deleted
  end;
  if Pptr.equal (Node.next node) right then begin
    Node.set_next node (Node.next rn);
    persist_field node Node.off_next
  end;
  let rnn = Node.next rn in
  if not (Pptr.is_null rnn) then begin
    let rnn_node = Node.of_ptr rnn in
    if Pptr.equal (Node.prev rnn_node) right then begin
      Node.set_prev rnn_node left;
      persist_field rnn_node Node.off_prev
    end
  end;
  (match Art.lookup t.art (Key.to_radix anchor) with
  | Some p when Pptr.equal p right -> ignore (Art.delete t.art (Key.to_radix anchor))
  | Some _ | None -> ());
  Heap.free t.data_heap right;
  Smo_log.clear e

(* Walk the data layer, inserting every live anchor (DRAM search
   layer rebuild). *)
let rebuild_search_layer t =
  let rec go ptr =
    if not (Pptr.is_null ptr) then begin
      let node = Node.of_ptr ptr in
      if not (Node.is_deleted node) then
        ignore (Art.insert t.art (Key.to_radix (Node.anchor t.lay node)) ptr);
      go (Node.next node)
    end
  in
  go (Pobj.read_int (Pobj.make t.meta 0) off_head)

let recover t =
  Obs.Span.with_phase Obs.Span.Recovery @@ fun () ->
  (* Volatile coordination state did not survive. *)
  Queue.clear t.pending_refs;
  t.smo_hint <- false;
  t.shutdown <- false;
  t.updater_running <- false;
  Heap.recover t.data_heap;
  Heap.recover t.search_heap;
  if t.cfg.search_layer_dram then begin
    (* The whole trie was wiped with its DRAM pool. *)
    Art.reset t.art;
    ignore (Art.recover t.art);
    t.gen <- Art.generation t.art;
    rebuild_search_layer t
  end
  else begin
    ignore (Art.recover t.art);
    t.gen <- Art.generation t.art
  end;
  (* Replay outstanding SMOs in timestamp order. *)
  let entries = ref [] in
  Smo_log.iter_active t.log ~f:(fun e ->
      match Smo_log.read e with
      | Some (ts, payload) -> entries := (ts, e, payload) :: !entries
      | None -> ());
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !entries in
  List.iter
    (fun (_, e, payload) ->
      match payload with
      | Smo_log.Split { left; anchor } -> recover_split t e left anchor
      | Smo_log.Merge { left; right; anchor } -> recover_merge t e left right anchor)
    sorted;
  List.length sorted

(* ---------- integrity checking (tests, §6.8) ---------- *)

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* data layer: anchors strictly increasing, prev links consistent,
     every key within its node's range *)
  let rec walk ptr prev_ptr last_anchor nodes =
    if Pptr.is_null ptr then nodes
    else begin
      let node = Node.of_ptr ptr in
      if Node.is_deleted node then fail "reachable node is marked deleted";
      let anchor = Node.anchor t.lay node in
      (match last_anchor with
      | Some a when Key.compare a anchor >= 0 ->
          fail "anchors not strictly increasing at %s" anchor
      | _ -> ());
      if not (Pptr.equal (Node.prev node) prev_ptr) then fail "prev pointer mismatch";
      let nxt = Node.next node in
      let upper =
        if Pptr.is_null nxt then None else Some (Node.anchor t.lay (Node.of_ptr nxt))
      in
      List.iter
        (fun (k, _) ->
          if Key.compare k anchor < 0 then fail "key below anchor";
          match upper with
          | Some u when Key.compare k u >= 0 -> fail "key above next anchor"
          | _ -> ())
        (Node.live_entries t.lay node);
      walk nxt ptr (Some anchor) ((anchor, ptr) :: nodes)
    end
  in
  let head_ptr = Pobj.read_int (Pobj.make t.meta 0) off_head in
  let nodes = List.rev (walk head_ptr Pptr.null None []) in
  (* search layer: every mapping must point to a live data node whose
     anchor is the mapped key (after drain, it must be complete). *)
  List.iter
    (fun (anchor, ptr) ->
      if smo_backlog t = 0 then
        match Art.lookup t.art (Key.to_radix anchor) with
        | Some p when Pptr.equal p ptr -> ()
        | Some _ -> fail "search layer maps %s to the wrong node" anchor
        | None -> fail "anchor %s missing from search layer" anchor)
    nodes;
  List.length nodes

(* Enumerate everything (tests). *)
let to_list t =
  let rec go ptr acc =
    if Pptr.is_null ptr then List.rev acc
    else begin
      let node = Node.of_ptr ptr in
      let entries = List.sort compare (Node.live_entries t.lay node) in
      go (Node.next node) (List.rev_append entries acc)
    end
  in
  go (Pobj.read_int (Pobj.make t.meta 0) off_head) []

let cardinal t = List.length (to_list t)
