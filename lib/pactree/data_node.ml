module Pool = Nvm.Pool
module Pptr = Pmalloc.Pptr

(* On-node layout (offsets in bytes):
   0   version lock          8   valid bitmap (int64)
   16  next pointer          24  prev pointer
   32  deleted mark          40  permutation version
   48  anchor length         64  fingerprints (64 B, line-aligned)
   128 permutation (64 B, line-aligned, not persisted)
   192 anchor bytes (<= 32)  256 key-value slots *)

let entries = 64

let off_lock = 0

let off_bitmap = 8

let off_next = 16

let off_prev = 24

let off_deleted = 32

let off_perm_version = 40

let off_anchor_len = 48

let off_fingerprints = 64

let off_permutation = 128

let off_anchor = 192

let off_kv = 256

type layout = { inline : int; stride : int; node_size : int; persist_perm : bool }

let round_up x align = (x + align - 1) / align * align

let layout ?(persist_perm = false) ~key_inline () =
  if key_inline <> 8 && key_inline <> Key.max_len then
    invalid_arg "Data_node.layout: key_inline must be 8 or 32";
  let stride =
    if key_inline = 8 then 16 (* value 8 + key 8 *)
    else round_up (8 + 1 + key_inline) 8 (* value 8 + klen 1 + key bytes *)
  in
  { inline = key_inline; stride; node_size = off_kv + (entries * stride); persist_perm }

type t = { pool : Pool.t; off : int }

let of_ptr ptr = { pool = Pmalloc.Registry.resolve ptr; off = Pptr.off ptr }

let to_ptr t = Pptr.make ~pool:(Pool.id t.pool) ~off:t.off

let equal a b = Pool.id a.pool = Pool.id b.pool && a.off = b.off

let lock_handle t = { Vlock.pool = t.pool; off = t.off + off_lock }

let bitmap t = Pool.read_int64 t.pool (t.off + off_bitmap)

let set_bitmap t bm = Pool.write_int64 t.pool (t.off + off_bitmap) bm

let next t = Pool.read_int t.pool (t.off + off_next)

let set_next t p = Pool.write_int t.pool (t.off + off_next) p

let prev t = Pool.read_int t.pool (t.off + off_prev)

let set_prev t p = Pool.write_int t.pool (t.off + off_prev) p

let is_deleted t = Pool.read_int t.pool (t.off + off_deleted) <> 0

let set_deleted t flag = Pool.write_int t.pool (t.off + off_deleted) (Bool.to_int flag)

let anchor lay t =
  ignore lay;
  let len = Pool.read_int t.pool (t.off + off_anchor_len) in
  Pool.read_string t.pool (t.off + off_anchor) len

(* Allocation-free [compare (anchor t) k]. *)
let compare_anchor t k =
  let len = Pool.read_int t.pool (t.off + off_anchor_len) in
  Pool.compare_string t.pool (t.off + off_anchor) len k

let init lay t ~gen ~anchor ~next ~prev =
  Pool.fill_zero t.pool t.off lay.node_size;
  Vlock.init (lock_handle t) ~gen;
  Pool.write_int t.pool (t.off + off_next) next;
  Pool.write_int t.pool (t.off + off_prev) prev;
  Pool.write_int t.pool (t.off + off_anchor_len) (String.length anchor);
  Pool.write_string t.pool (t.off + off_anchor) anchor

(* Key-value slots.  Integer layout: value, 8-byte key.  String
   layout: value, length byte, key bytes. *)
let entry_off lay slot = off_kv + (slot * lay.stride)

let value_at lay t slot = Pool.read_int t.pool (t.off + entry_off lay slot)

let set_value lay t slot v = Pool.write_int t.pool (t.off + entry_off lay slot) v

let key_at lay t slot =
  let e = t.off + entry_off lay slot in
  if lay.inline = 8 then Pool.read_string t.pool (e + 8) 8
  else
    let len = Pool.read_u8 t.pool (e + 8) in
    Pool.read_string t.pool (e + 9) len

(* Allocation-free comparison of the slot key with [k]. *)
let compare_key_at lay t slot k =
  let e = t.off + entry_off lay slot in
  if lay.inline = 8 then Pool.compare_string t.pool (e + 8) 8 k
  else
    let len = Pool.read_u8 t.pool (e + 8) in
    Pool.compare_string t.pool (e + 9) len k

let set_entry lay t slot key v =
  let e = t.off + entry_off lay slot in
  Pool.write_int t.pool e v;
  if lay.inline = 8 then Pool.write_string t.pool (e + 8) key
  else begin
    Pool.write_u8 t.pool (e + 8) (String.length key);
    Pool.write_string t.pool (e + 9) key
  end;
  Pool.write_u8 t.pool (t.off + off_fingerprints + slot) (Fingerprint.of_key key)

let _fingerprint_at t slot = Pool.read_u8 t.pool (t.off + off_fingerprints + slot)

let bit slot = Int64.shift_left 1L slot

let test_bit bm slot = Int64.logand bm (bit slot) <> 0L

let live_count t =
  let bm = bitmap t in
  let rec go acc i =
    if i >= entries then acc else go (if test_bit bm i then acc + 1 else acc) (i + 1)
  in
  go 0 0

let first_empty bm =
  let rec go i =
    if i >= entries then None else if test_bit bm i then go (i + 1) else Some i
  in
  go 0

let find lay t k =
  Obs.Span.with_phase Obs.Span.Dnode_scan @@ fun () ->
  let bm = bitmap t in
  let fp = Fingerprint.of_key k in
  (* one cache access covers the whole fingerprint line (the AVX512
     match of the paper, §5.2) *)
  let fps = Pool.read_string t.pool (t.off + off_fingerprints) entries in
  let rec go slot =
    if slot >= entries then None
    else if
      test_bit bm slot
      && Char.code (String.unsafe_get fps slot) = fp
      && compare_key_at lay t slot k = 0
    then Some (slot, value_at lay t slot)
    else go (slot + 1)
  in
  go 0

let live_entries lay t =
  let bm = bitmap t in
  let rec go acc slot =
    if slot < 0 then acc
    else
      go (if test_bit bm slot then (key_at lay t slot, value_at lay t slot) :: acc else acc)
        (slot - 1)
  in
  go [] (entries - 1)

let sorted_live lay t =
  let bm = bitmap t in
  let rec collect acc slot =
    if slot < 0 then acc
    else
      collect (if test_bit bm slot then (key_at lay t slot, slot) :: acc else acc)
        (slot - 1)
  in
  List.sort (fun (a, _) (b, _) -> Key.compare a b) (collect [] (entries - 1))

type write_result = Ok | Full | Absent

(* Rebuild and (ablation only) persist the permutation array; caller
   decides when.  The stamp ties the array to the lock version so
   readers can detect staleness (§5.2). *)
let write_permutation t sorted =
  List.iteri
    (fun i (_, slot) -> Pool.write_u8 t.pool (t.off + off_permutation + i) slot)
    sorted

let stamp_permutation t =
  (* Record the raw lock word so any later writer invalidates it. *)
  let word = Pool.read_int t.pool (t.off + off_lock) in
  Pool.write_int t.pool (t.off + off_perm_version) word

let rebuild_permutation lay t =
  let sorted = sorted_live lay t in
  write_permutation t sorted;
  stamp_permutation t;
  if lay.persist_perm then begin
    Pool.flush_range t.pool (t.off + off_permutation) entries;
    Pool.persist t.pool (t.off + off_perm_version) 8
  end;
  List.length sorted

let permutation_fresh t =
  Pool.read_int t.pool (t.off + off_perm_version) = Pool.read_int t.pool (t.off + off_lock)

let refresh_permutation lay t =
  if permutation_fresh t then live_count t else rebuild_permutation lay t

let persist_slot lay t slot =
  let e = t.off + entry_off lay slot in
  Pool.flush_range t.pool e lay.stride;
  Pool.clwb t.pool (t.off + off_fingerprints + slot);
  Pool.fence t.pool

let persist_bitmap t =
  Pool.clwb t.pool (t.off + off_bitmap);
  Pool.fence t.pool

let maybe_persist_perm lay t =
  if lay.persist_perm then ignore (rebuild_permutation lay t)

let insert lay t k v =
  Obs.Span.with_phase Obs.Span.Dnode_insert @@ fun () ->
  let bm = bitmap t in
  match first_empty bm with
  | None -> Full
  | Some slot ->
      set_entry lay t slot k v;
      persist_slot lay t slot (* durability point for the pair *);
      set_bitmap t (Int64.logor bm (bit slot));
      persist_bitmap t (* linearization point, persisted *);
      maybe_persist_perm lay t;
      Ok

let delete lay t k =
  Obs.Span.with_phase Obs.Span.Dnode_insert @@ fun () ->
  match find lay t k with
  | None -> Absent
  | Some (slot, _) ->
      set_bitmap t (Int64.logand (bitmap t) (Int64.lognot (bit slot)));
      persist_bitmap t;
      maybe_persist_perm lay t;
      Ok

let update lay t k v =
  Obs.Span.with_phase Obs.Span.Dnode_insert @@ fun () ->
  match find lay t k with
  | None -> Absent
  | Some (old_slot, _) -> (
      let bm = bitmap t in
      match first_empty bm with
      | Some slot ->
          (* Out-of-place: persist the new pair, then one atomic
             bitmap write retires the old slot and publishes the new. *)
          set_entry lay t slot k v;
          persist_slot lay t slot;
          set_bitmap t
            (Int64.logor (Int64.logand bm (Int64.lognot (bit old_slot))) (bit slot));
          persist_bitmap t;
          maybe_persist_perm lay t;
          Ok
      | None ->
          (* Node full: an 8-byte value store is itself atomic. *)
          set_value lay t old_slot v;
          Pool.persist t.pool (t.off + entry_off lay old_slot) 8;
          Ok)

let scan_from lay t k ~f =
  Obs.Span.with_phase Obs.Span.Dnode_scan @@ fun () ->
  let n = refresh_permutation lay t in
  let rec go i =
    if i >= n then true
    else
      let slot = Pool.read_u8 t.pool (t.off + off_permutation + i) in
      if compare_key_at lay t slot k < 0 then go (i + 1)
      else if f (key_at lay t slot) (value_at lay t slot) then go (i + 1)
      else false
  in
  go 0

let copy_into lay ~src ~dst pairs =
  Obs.Span.with_phase Obs.Span.Dnode_insert @@ fun () ->
  List.iteri
    (fun i (key, slot) ->
      set_entry lay dst i key (value_at lay src slot);
      ())
    pairs;
  let bm =
    List.fold_left (fun acc i -> Int64.logor acc (bit i)) 0L
      (List.init (List.length pairs) Fun.id)
  in
  set_bitmap dst bm

let clear_slots t slots =
  let bm =
    List.fold_left (fun acc s -> Int64.logand acc (Int64.lognot (bit s))) (bitmap t) slots
  in
  set_bitmap t bm;
  persist_bitmap t

let absorb lay ~src ~dst =
  Obs.Span.with_phase Obs.Span.Dnode_insert @@ fun () ->
  let pairs = live_entries lay src in
  let bm = ref (bitmap dst) in
  let added = ref [] in
  List.iter
    (fun (key, v) ->
      match first_empty !bm with
      | None -> invalid_arg "Data_node.absorb: destination too full"
      | Some slot ->
          set_entry lay dst slot key v;
          persist_slot lay dst slot;
          bm := Int64.logor !bm (bit slot);
          added := slot :: !added)
    pairs;
  set_bitmap dst !bm;
  persist_bitmap dst;
  maybe_persist_perm lay dst
