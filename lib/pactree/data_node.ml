module Pool = Nvm.Pool
module Pptr = Pmalloc.Pptr
module Layout = Pobj.Layout

let entries = 64

(* Fixed node header (256 bytes); key-value slots follow at a stride
   chosen per tree instance (see [layout] below).  The lock word and
   the permutation cache are transient: the former is voided by the
   generation bump after a crash, the latter is rebuilt from the
   persistent slots (§5.2) — unless the persist_perm ablation flushes
   it explicitly. *)
let hdr = Layout.create "data_node.hdr"

let f_lock = Layout.word ~transient:true hdr "lock"

let f_bitmap = Layout.i64 hdr "bitmap"

let f_next = Layout.word hdr "next"

let f_prev = Layout.word hdr "prev"

let f_deleted = Layout.word hdr "deleted"

let f_perm_version = Layout.word ~transient:true hdr "perm_version"

let f_anchor_len = Layout.word hdr "anchor_len"

let f_fingerprints = Layout.bytes ~at:64 hdr "fingerprints" 64

let f_permutation = Layout.bytes ~at:128 ~transient:true hdr "permutation" 64

let f_anchor = Layout.bytes ~at:192 hdr "anchor" 64

let off_kv = Layout.seal hdr

let off_lock = Layout.off f_lock

let off_next = Layout.off f_next

let off_prev = Layout.off f_prev

let off_deleted = Layout.off f_deleted

let off_fingerprints = Layout.off f_fingerprints

let off_permutation = Layout.off f_permutation

let off_anchor = Layout.off f_anchor

type layout = { inline : int; stride : int; node_size : int; persist_perm : bool }

let round_up x align = (x + align - 1) / align * align

let layout ?(persist_perm = false) ~key_inline () =
  if key_inline <> 8 && key_inline <> Key.max_len then
    invalid_arg "Data_node.layout: key_inline must be 8 or 32";
  let stride =
    if key_inline = 8 then 16 (* value 8 + key 8 *)
    else round_up (8 + 1 + key_inline) 8 (* value 8 + klen 1 + key bytes *)
  in
  { inline = key_inline; stride; node_size = off_kv + (entries * stride); persist_perm }

type t = Pobj.obj = { pool : Pool.t; off : int }

let of_ptr ptr = { pool = Pmalloc.Registry.resolve ptr; off = Pptr.off ptr }

let to_ptr t = Pptr.make ~pool:(Pool.id t.pool) ~off:t.off

let equal a b = Pool.id a.pool = Pool.id b.pool && a.off = b.off

let lock_handle t = { Vlock.pool = t.pool; off = t.off + off_lock }

let bitmap t = Pobj.get_i64 t f_bitmap

let set_bitmap t bm = Pobj.set_i64 t f_bitmap bm

let next t = Pobj.get_int t f_next

let set_next t p = Pobj.set_int t f_next p

let prev t = Pobj.get_int t f_prev

let set_prev t p = Pobj.set_int t f_prev p

let is_deleted t = Pobj.get_int t f_deleted <> 0

let set_deleted t flag = Pobj.set_int t f_deleted (Bool.to_int flag)

let anchor lay t =
  ignore lay;
  let len = Pobj.get_int t f_anchor_len in
  Pobj.read_string t off_anchor len

(* Allocation-free [compare (anchor t) k]. *)
let compare_anchor t k =
  let len = Pobj.get_int t f_anchor_len in
  Pobj.compare_string t off_anchor len k

let init lay t ~gen ~anchor ~next ~prev =
  Pobj.fill_zero t 0 lay.node_size;
  Vlock.init (lock_handle t) ~gen;
  Pobj.set_int t f_next next;
  Pobj.set_int t f_prev prev;
  Pobj.set_int t f_anchor_len (String.length anchor);
  Pobj.write_string t off_anchor anchor

(* Key-value slots.  Integer layout: value, 8-byte key.  String
   layout: value, length byte, key bytes. *)
let entry_off lay slot = off_kv + (slot * lay.stride)

let value_at lay t slot = Pobj.read_int t (entry_off lay slot)

let set_value lay t slot v = Pobj.write_int t (entry_off lay slot) v

let key_at lay t slot =
  let e = entry_off lay slot in
  if lay.inline = 8 then Pobj.read_string t (e + 8) 8
  else
    let len = Pobj.read_u8 t (e + 8) in
    Pobj.read_string t (e + 9) len

(* Allocation-free comparison of the slot key with [k]. *)
let compare_key_at lay t slot k =
  let e = entry_off lay slot in
  if lay.inline = 8 then Pobj.compare_string t (e + 8) 8 k
  else
    let len = Pobj.read_u8 t (e + 8) in
    Pobj.compare_string t (e + 9) len k

let set_entry lay t slot key v =
  let e = entry_off lay slot in
  Pobj.write_int t e v;
  if lay.inline = 8 then Pobj.write_string t (e + 8) key
  else begin
    Pobj.write_u8 t (e + 8) (String.length key);
    Pobj.write_string t (e + 9) key
  end;
  Pobj.write_u8 t (off_fingerprints + slot) (Fingerprint.of_key key)

let _fingerprint_at t slot = Pobj.read_u8 t (off_fingerprints + slot)

let bit slot = Int64.shift_left 1L slot

let test_bit bm slot = Int64.logand bm (bit slot) <> 0L

let live_count t =
  let bm = bitmap t in
  let rec go acc i =
    if i >= entries then acc else go (if test_bit bm i then acc + 1 else acc) (i + 1)
  in
  go 0 0

let first_empty bm =
  let rec go i =
    if i >= entries then None else if test_bit bm i then go (i + 1) else Some i
  in
  go 0

let find lay t k =
  Obs.Span.with_phase Obs.Span.Dnode_scan @@ fun () ->
  let bm = bitmap t in
  let fp = Fingerprint.of_key k in
  (* one cache access covers the whole fingerprint line (the AVX512
     match of the paper, §5.2) *)
  let fps = Pobj.read_string t off_fingerprints entries in
  let rec go slot =
    if slot >= entries then None
    else if
      test_bit bm slot
      && Char.code (String.unsafe_get fps slot) = fp
      && compare_key_at lay t slot k = 0
    then Some (slot, value_at lay t slot)
    else go (slot + 1)
  in
  go 0

let live_entries lay t =
  let bm = bitmap t in
  let rec go acc slot =
    if slot < 0 then acc
    else
      go (if test_bit bm slot then (key_at lay t slot, value_at lay t slot) :: acc else acc)
        (slot - 1)
  in
  go [] (entries - 1)

let sorted_live lay t =
  let bm = bitmap t in
  let rec collect acc slot =
    if slot < 0 then acc
    else
      collect (if test_bit bm slot then (key_at lay t slot, slot) :: acc else acc)
        (slot - 1)
  in
  List.sort (fun (a, _) (b, _) -> Key.compare a b) (collect [] (entries - 1))

type write_result = Ok | Full | Absent

(* Rebuild and (ablation only) persist the permutation array; caller
   decides when.  The stamp ties the array to the lock version so
   readers can detect staleness (§5.2).  Both writes are transient
   unless persist_perm flushes them below. *)
let write_permutation t sorted =
  Pobj.Sanitizer.with_suppressed @@ fun () ->
  List.iteri (fun i (_, slot) -> Pobj.write_u8 t (off_permutation + i) slot) sorted

let stamp_permutation t =
  (* Record the raw lock word so any later writer invalidates it. *)
  let word = Pobj.get_int t f_lock in
  Pobj.set_int t f_perm_version word

let rebuild_permutation lay t =
  let sorted = sorted_live lay t in
  write_permutation t sorted;
  stamp_permutation t;
  if lay.persist_perm then begin
    Pobj.flush t off_permutation entries;
    Pobj.persist_field t f_perm_version
  end;
  List.length sorted

let permutation_fresh t = Pobj.get_int t f_perm_version = Pobj.get_int t f_lock

let refresh_permutation lay t =
  if permutation_fresh t then live_count t else rebuild_permutation lay t

let persist_slot lay t slot =
  Pobj.flush t (entry_off lay slot) lay.stride;
  Pobj.clwb t (off_fingerprints + slot);
  Pobj.fence t

let persist_bitmap t =
  Pobj.flush_field t f_bitmap;
  Pobj.fence t

let maybe_persist_perm lay t =
  if lay.persist_perm then ignore (rebuild_permutation lay t)

let insert lay t k v =
  Obs.Span.with_phase Obs.Span.Dnode_insert @@ fun () ->
  let bm = bitmap t in
  match first_empty bm with
  | None -> Full
  | Some slot ->
      set_entry lay t slot k v;
      persist_slot lay t slot (* durability point for the pair *);
      set_bitmap t (Int64.logor bm (bit slot));
      persist_bitmap t (* linearization point, persisted *);
      maybe_persist_perm lay t;
      Ok

let delete lay t k =
  Obs.Span.with_phase Obs.Span.Dnode_insert @@ fun () ->
  match find lay t k with
  | None -> Absent
  | Some (slot, _) ->
      set_bitmap t (Int64.logand (bitmap t) (Int64.lognot (bit slot)));
      persist_bitmap t;
      maybe_persist_perm lay t;
      Ok

let update lay t k v =
  Obs.Span.with_phase Obs.Span.Dnode_insert @@ fun () ->
  match find lay t k with
  | None -> Absent
  | Some (old_slot, _) -> (
      let bm = bitmap t in
      match first_empty bm with
      | Some slot ->
          (* Out-of-place: persist the new pair, then one atomic
             bitmap write retires the old slot and publishes the new. *)
          set_entry lay t slot k v;
          persist_slot lay t slot;
          set_bitmap t
            (Int64.logor (Int64.logand bm (Int64.lognot (bit old_slot))) (bit slot));
          persist_bitmap t;
          maybe_persist_perm lay t;
          Ok
      | None ->
          (* Node full: an 8-byte value store is itself atomic. *)
          set_value lay t old_slot v;
          Pobj.persist t (entry_off lay old_slot) 8;
          Ok)

let scan_from lay t k ~f =
  Obs.Span.with_phase Obs.Span.Dnode_scan @@ fun () ->
  let n = refresh_permutation lay t in
  let rec go i =
    if i >= n then true
    else
      let slot = Pobj.read_u8 t (off_permutation + i) in
      if compare_key_at lay t slot k < 0 then go (i + 1)
      else if f (key_at lay t slot) (value_at lay t slot) then go (i + 1)
      else false
  in
  go 0

let copy_into lay ~src ~dst pairs =
  Obs.Span.with_phase Obs.Span.Dnode_insert @@ fun () ->
  List.iteri
    (fun i (key, slot) ->
      set_entry lay dst i key (value_at lay src slot);
      ())
    pairs;
  let bm =
    List.fold_left (fun acc i -> Int64.logor acc (bit i)) 0L
      (List.init (List.length pairs) Fun.id)
  in
  set_bitmap dst bm

let clear_slots t slots =
  let bm =
    List.fold_left (fun acc s -> Int64.logand acc (Int64.lognot (bit s))) (bitmap t) slots
  in
  set_bitmap t bm;
  persist_bitmap t

let absorb lay ~src ~dst =
  Obs.Span.with_phase Obs.Span.Dnode_insert @@ fun () ->
  let pairs = live_entries lay src in
  let bm = ref (bitmap dst) in
  let added = ref [] in
  List.iter
    (fun (key, v) ->
      match first_empty !bm with
      | None -> invalid_arg "Data_node.absorb: destination too full"
      | Some slot ->
          set_entry lay dst slot key v;
          persist_slot lay dst slot;
          bm := Int64.logor !bm (bit slot);
          added := slot :: !added)
    pairs;
  set_bitmap dst !bm;
  persist_bitmap dst;
  maybe_persist_perm lay dst
