(** Glue between the workload runner and lib/obs: instrumented runs
    that produce {!Obs.Report} entries for BENCH_pactree.json. *)

(** [bench_entry ~scale ~mix ~threads sys] builds the system, runs the
    workload with a fresh {!Obs.Recorder} installed, and condenses the
    result + recorder into one report entry.  The recorder is also
    returned for callers that want the full dump ([--obs]).
    [~sanitize:true] additionally enables the {!Pobj.Sanitizer} on the
    run's machine and leaves it active so the caller can inspect
    {!Pobj.Sanitizer.reports} when the run returns. *)
val bench_entry :
  ?string_keys:bool ->
  ?theta:float ->
  ?sanitize:bool ->
  scale:Scale.t ->
  mix:Workload.Ycsb.mix ->
  threads:int ->
  Factory.sys ->
  Obs.Report.entry * Obs.Recorder.t

(** Condense an already-made run: [entry_of_result ~name ~keys r obs]. *)
val entry_of_result :
  name:string -> keys:int -> Workload.Runner.result -> Obs.Recorder.t -> Obs.Report.entry
