(** Service saturation sweeps: build a sharded store over any system,
    calibrate its capacity with a deliberately over-driven open-loop
    run, then sweep offered load across the knee.

    Every sweep point runs on a {e fresh} machine + store (same seed),
    so points are independent and the whole sweep is deterministic. *)

type cfg = {
  sys : Factory.sys;
  shards : int;
  keys : int;  (** preloaded keys *)
  ops : int;  (** requests per sweep point *)
  workers_per_shard : int;
  queue_capacity : int;
  admission : Svc.Engine.admission;
  process : Workload.Arrival.process;
  max_batch : int;
  max_batch_delay : float;
  mix : Workload.Ycsb.mix;
  kind : Workload.Keyset.kind;
  theta : float;
  seed : int64;
  numa : int;
  log_entries : int;
}

(** Defaults: 4 shards, 40K keys / 20K ops per point ([quick]: 2
    shards, 8K / 6K), 2 workers/shard, queue 64, Reject, Poisson,
    batch 8 / 2 us delay, A-mix, int keys, theta 0.99, 2 sockets. *)
val default : ?quick:bool -> Factory.sys -> cfg

(** Fresh machine + sharded store for [cfg] (boundaries cut from the
    loaded keyset, per-shard capacities scaled to [keys / shards]). *)
val make_store : cfg -> Svc.Store.t

(** The engine configuration a sweep point runs with (open loop at
    [rate]); exposed so tests can tweak individual knobs. *)
val engine_config : cfg -> rate:float -> Svc.Engine.config

(** Build a fresh store, bulk-load it, run one open-loop point at
    [rate] requests/s. *)
val run_point : cfg -> rate:float -> Svc.Engine.result

(** Saturation capacity in requests/s: achieved throughput under
    moderate overload (a hard overdrive is only used as a floor — with
    Reject admission its lopsided tail drain biases low). *)
val calibrate : cfg -> float

(** [sweep cfg ()] — calibrate, then run [fractions] (default 0.3 ..
    1.5) of capacity in increasing order.  Returns (offered rate,
    result) per point. *)
val sweep : ?fractions:float list -> cfg -> (float * Svc.Engine.result) list

(** A point is saturated when it achieves < 90% of its offered load. *)
val saturated : float * Svc.Engine.result -> bool

(** Shape assertions for a sweep that crossed the knee: achieved
    throughput monotone below the knee (2% tolerance) and holding a
    95% plateau past it, a saturation knee exists (some point
    achieves < 90% of offered while the first point keeps up), and
    queue p99 exceeds service p99 at every saturated point. *)
val check_sweep : (float * Svc.Engine.result) list -> (unit, string) result

val report_config : cfg -> Obs.Svc_report.config

val point_of_result : Svc.Engine.result -> Obs.Svc_report.point

val report : cfg -> (float * Svc.Engine.result) list -> Obs.Json.t
