module Machine = Nvm.Machine
module Stats = Nvm.Stats
module Runner = Workload.Runner
module Latency = Workload.Latency
module Ycsb = Workload.Ycsb
module Keyset = Workload.Keyset

let entry_of_result ~name ~keys (r : Runner.result) (obs : Obs.Recorder.t) =
  let per_op x = float_of_int x /. float_of_int (max 1 r.Runner.ops) in
  let us p = Latency.percentile r.Runner.latency p *. 1e6 in
  let nvm = r.Runner.nvm in
  {
    Obs.Report.e_index = name;
    e_mix = Format.asprintf "%a" Ycsb.pp_mix r.Runner.mix;
    e_threads = r.Runner.threads;
    e_keys = keys;
    e_ops = r.Runner.ops;
    e_elapsed_s = r.Runner.elapsed;
    e_throughput_mops = Runner.mops r;
    e_p50_us = us 50.0;
    e_p99_us = us 99.0;
    e_p9999_us = us 99.99;
    e_mean_us = Latency.mean r.Runner.latency *. 1e6;
    e_max_us = Latency.max r.Runner.latency *. 1e6;
    e_phase_pct =
      List.map
        (fun (p, pct) -> (Obs.Span.phase_name p, pct))
        (Obs.Span.percentages obs.Obs.Recorder.span);
    e_phase_us =
      List.map
        (fun row -> (Obs.Span.phase_name row.Obs.Span.r_phase, row.Obs.Span.r_seconds *. 1e6))
        (Obs.Span.rows obs.Obs.Recorder.span);
    e_flushes_per_op = per_op nvm.Stats.flushes;
    e_flushes_elided_per_op = per_op nvm.Stats.flushes_elided;
    e_fences_per_op = per_op nvm.Stats.fences;
    e_media_read_bytes_per_op = per_op (Stats.total_read_bytes nvm);
    e_media_write_bytes_per_op = per_op (Stats.total_write_bytes nvm);
    e_read_amplification = Stats.read_amplification nvm;
    e_write_amplification = Stats.write_amplification nvm;
  }

let bench_entry ?(string_keys = false) ?(theta = 0.99) ?(sanitize = false) ~scale ~mix
    ~threads sys =
  Gc.compact ();
  let machine = Machine.create ~numa_count:2 () in
  let index, service = Factory.make machine ~string_keys ~scale sys in
  let obs = Obs.Recorder.create machine () in
  let kind = if string_keys then Keyset.String_keys else Keyset.Int_keys in
  (* Enabled before load+run so the whole lifetime is linted; the
     caller reads {!Pobj.Sanitizer.reports} afterwards (the next
     [enable] — or process exit — retires this machine's observer). *)
  if sanitize then Pobj.Sanitizer.enable machine;
  let r =
    Runner.run ~machine ~index ?service ~obs ~mix ~kind ~loaded:scale.Scale.keys
      ~ops:scale.Scale.ops ~threads ~theta ()
  in
  (entry_of_result ~name:(Factory.name sys) ~keys:scale.Scale.keys r obs, obs)
