module Engine = Svc.Engine
module Store = Svc.Store
module Latency = Workload.Latency

type cfg = {
  sys : Factory.sys;
  shards : int;
  keys : int;
  ops : int;
  workers_per_shard : int;
  queue_capacity : int;
  admission : Engine.admission;
  process : Workload.Arrival.process;
  max_batch : int;
  max_batch_delay : float;
  mix : Workload.Ycsb.mix;
  kind : Workload.Keyset.kind;
  theta : float;
  seed : int64;
  numa : int;
  log_entries : int;
}

let default ?(quick = false) sys =
  {
    sys;
    shards = (if quick then 2 else 4);
    keys = (if quick then 8_000 else 40_000);
    ops = (if quick then 6_000 else 20_000);
    workers_per_shard = 2;
    queue_capacity = 64;
    admission = Engine.Reject;
    process = Workload.Arrival.Poisson;
    max_batch = 8;
    max_batch_delay = 2e-6;
    mix = Workload.Ycsb.Workload_a;
    kind = Workload.Keyset.Int_keys;
    theta = 0.99;
    seed = 42L;
    numa = 2;
    log_entries = 1024;
  }

let make_store cfg =
  let machine = Nvm.Machine.create ~numa_count:cfg.numa () in
  let string_keys = cfg.kind = Workload.Keyset.String_keys in
  (* per-shard capacity: each shard holds its slice of the loaded keys
     plus its share of run-phase fresh inserts *)
  let per_shard = ((cfg.keys + cfg.ops) / cfg.shards) + 1 in
  let scale = Scale.make ~keys:per_shard ~ops:cfg.ops ~thread_counts:[ 1 ] in
  let boundaries =
    Store.boundaries_for ~kind:cfg.kind ~keys:cfg.keys ~shards:cfg.shards
  in
  Store.create ~machine ~boundaries
    ~make_backend:(fun ~shard:_ ~numa:_ ->
      Factory.make_backend machine ~string_keys ~scale cfg.sys)
    ~log_entries:cfg.log_entries ()

let engine_config cfg ~rate =
  {
    Engine.mode = Engine.Open_loop { rate; process = cfg.process };
    ops = cfg.ops;
    workers_per_shard = cfg.workers_per_shard;
    queue_capacity = cfg.queue_capacity;
    admission = cfg.admission;
    max_batch = cfg.max_batch;
    max_batch_delay = cfg.max_batch_delay;
    mix = cfg.mix;
    kind = cfg.kind;
    loaded = cfg.keys;
    theta = cfg.theta;
    seed = cfg.seed;
  }

let run_point cfg ~rate =
  let store = make_store cfg in
  let start = Engine.load ~store ~kind:cfg.kind ~keys:cfg.keys () in
  Engine.run ~store ~config:(engine_config cfg ~rate) ~start ()

(* Offered load far past any plausible capacity: the bounded queues
   reject the excess and completions proceed at service speed. *)
let probe_rate = 200e6

let calibrate cfg =
  (* A hard overdrive under Reject admission biases low: arrivals stop
     almost immediately, cold shards drain and idle while the hottest
     shard serves its queue alone, and completions/elapsed reflects
     that lopsided tail.  So use the overdriven run only as a floor,
     then re-measure at a moderate overload where every shard stays
     busy end to end (doubling until the point actually saturates). *)
  let floor_rate = (run_point cfg ~rate:probe_rate).Engine.r_throughput in
  let rec refine rate =
    let t = (run_point cfg ~rate).Engine.r_throughput in
    if t >= 0.9 *. rate then refine (2.0 *. rate) else t
  in
  refine (2.5 *. Float.max 1.0 floor_rate)

let default_fractions = [ 0.3; 0.5; 0.7; 0.85; 1.0; 1.15; 1.3; 1.5 ]

let sweep ?(fractions = default_fractions) cfg =
  let capacity = calibrate cfg in
  List.map
    (fun f ->
      let rate = Float.max 1.0 (f *. capacity) in
      (rate, run_point cfg ~rate))
    fractions

let saturated (rate, r) = r.Engine.r_throughput < 0.9 *. rate

let check_sweep points =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* () = if points = [] then Error "empty sweep" else Ok () in
  let* () =
    (* below the knee: achieved tracks offered, so each point must
       keep up with the previous (2% tolerance).  Past the knee the
       curve plateaus and individual points jitter; require each
       saturated point to hold 95% of the best achieved so far
       instead of strict point-to-point monotonicity. *)
    let rec mono best = function
      | ((rate, r) as point) :: rest ->
          let t = r.Engine.r_throughput in
          let tol = if saturated point then 0.95 else 0.98 in
          if t < tol *. best then
            Error
              (Printf.sprintf
                 "achieved throughput collapsed: %.0f/s at offered %.0f/s after a best \
                  of %.0f/s"
                 t rate best)
          else mono (Float.max best t) rest
      | [] -> Ok ()
    in
    mono 0.0 points
  in
  let* () =
    if saturated (List.hd points) then
      Error "first sweep point already saturated (sweep should start below the knee)"
    else Ok ()
  in
  let* () =
    if not (List.exists saturated points) then
      Error "no saturation knee: every point keeps up with offered load"
    else Ok ()
  in
  List.fold_left
    (fun acc ((rate, r) as point) ->
      let* () = acc in
      if saturated point then begin
        let qp99 = Latency.percentile r.Engine.r_queue_lat 99.0 in
        let sp99 = Latency.percentile r.Engine.r_service_lat 99.0 in
        if qp99 <= sp99 then
          Error
            (Printf.sprintf
               "saturated point (offered %.0f/s): queue p99 %.2f us not above \
                service p99 %.2f us"
               rate (qp99 *. 1e6) (sp99 *. 1e6))
        else Ok ()
      end
      else Ok ())
    (Ok ()) points

let report_config cfg =
  {
    Obs.Svc_report.c_index = Factory.name cfg.sys;
    c_shards = cfg.shards;
    c_workers_per_shard = cfg.workers_per_shard;
    c_queue_capacity = cfg.queue_capacity;
    c_admission = Engine.admission_name cfg.admission;
    c_arrival = Workload.Arrival.process_name cfg.process;
    c_max_batch = cfg.max_batch;
    c_max_batch_delay_us = cfg.max_batch_delay *. 1e6;
    c_keys = cfg.keys;
    c_ops = cfg.ops;
    c_mix = Format.asprintf "%a" Workload.Ycsb.pp_mix cfg.mix;
    c_theta = cfg.theta;
    c_numa = cfg.numa;
  }

let lat_of l =
  {
    Obs.Svc_report.l_p50_us = Latency.percentile l 50.0 *. 1e6;
    l_p99_us = Latency.percentile l 99.0 *. 1e6;
    l_p9999_us = Latency.percentile l 99.99 *. 1e6;
    l_mean_us = Latency.mean l *. 1e6;
    l_max_us = Latency.max l *. 1e6;
  }

let point_of_result (r : Engine.result) =
  let per_op c =
    if r.Engine.r_completed > 0 then
      float_of_int c /. float_of_int r.Engine.r_completed
    else 0.0
  in
  {
    Obs.Svc_report.p_offered_mops = r.Engine.r_offered /. 1e6;
    p_achieved_mops = r.Engine.r_throughput /. 1e6;
    p_generated = r.Engine.r_generated;
    p_completed = r.Engine.r_completed;
    p_rejected = r.Engine.r_rejected;
    p_rejection_rate =
      (if r.Engine.r_generated > 0 then
         float_of_int r.Engine.r_rejected /. float_of_int r.Engine.r_generated
       else 0.0);
    p_queue = lat_of r.Engine.r_queue_lat;
    p_service = lat_of r.Engine.r_service_lat;
    p_total = lat_of r.Engine.r_total_lat;
    p_shard_completed = Array.to_list r.Engine.r_shard_completed;
    p_imbalance = Engine.imbalance r;
    p_batches = r.Engine.r_batches;
    p_writes_per_batch =
      (if r.Engine.r_batches > 0 then
         float_of_int r.Engine.r_batched_writes /. float_of_int r.Engine.r_batches
       else 0.0);
    p_fences_per_op = per_op r.Engine.r_nvm.Nvm.Stats.fences;
    p_flushes_per_op = per_op r.Engine.r_nvm.Nvm.Stats.flushes;
  }

let report cfg points =
  Obs.Svc_report.to_json (report_config cfg)
    (List.map (fun (_, r) -> point_of_result r) points)
