(** Construction of the benchmarked systems behind one switch. *)

module Tree = Pactree.Tree
module Index = Baselines.Index_intf

type sys = Pactree_sys | Pdlart_sys | Fastfair_sys | Bztree_sys | Fptree_sys

let all = [ Pactree_sys; Pdlart_sys; Bztree_sys; Fastfair_sys; Fptree_sys ]

let name = function
  | Pactree_sys -> "PACTree"
  | Pdlart_sys -> "PDL-ART"
  | Fastfair_sys -> "FastFair"
  | Bztree_sys -> "BzTree"
  | Fptree_sys -> "FPTree"

let of_string = function
  | "pactree" -> Some Pactree_sys
  | "pdlart" | "pdl-art" -> Some Pdlart_sys
  | "fastfair" -> Some Fastfair_sys
  | "bztree" -> Some Bztree_sys
  | "fptree" -> Some Fptree_sys
  | _ -> None

(* The authors' FPTree binary does not support variable-length keys
   (paper §6), so string-key sweeps skip it. *)
let supports_strings = function Fptree_sys -> false | _ -> true

let pactree_service t =
  {
    (* the same service is respawned for the load and run phases:
       clear any stale shutdown request first *)
    Workload.Runner.body =
      (fun () ->
        Tree.reset_shutdown t;
        Tree.updater_loop t);
    shutdown = (fun () -> Tree.request_shutdown t);
  }

let epoch_quiesce epoch =
  let budget = ref 8 in
  while Pactree.Epoch.pending epoch > 0 && !budget > 0 do
    Pactree.Epoch.try_advance epoch;
    decr budget
  done

(** [make_backend machine ~scale sys] builds one svc shard: the index
    plus its recovery / invariant / quiesce hooks and background
    service.  Mirrors [make] (same construction switch) with the
    crash-facing closures the sharded store needs. *)
let make_backend machine ?(string_keys = false) ~scale ?cfg sys : Svc.Store.backend =
  let data_capacity = scale.Scale.data_capacity in
  let search_capacity = scale.Scale.search_capacity in
  match sys with
  | Pactree_sys ->
      let cfg =
        match cfg with
        | Some c -> c
        | None ->
            {
              Tree.default_config with
              key_inline = (if string_keys then 32 else 8);
              data_capacity;
              search_capacity;
            }
      in
      let t = Tree.create machine ~cfg () in
      {
        Svc.Store.b_index = Baselines.Pactree_index.wrap t;
        b_recover = (fun () -> ignore (Tree.recover t : int));
        b_invariants = (fun () -> ignore (Tree.check_invariants t : int));
        b_quiesce =
          (fun () ->
            Tree.drain_smo t;
            epoch_quiesce (Tree.epoch t));
        b_service = Some (pactree_service t);
      }
  | Pdlart_sys ->
      let t = Baselines.Pdlart.create machine ~capacity:data_capacity () in
      {
        Svc.Store.b_index = Index.Index ((module Baselines.Pdlart.Index), t);
        b_recover = (fun () -> Baselines.Pdlart.recover t);
        b_invariants = ignore;
        b_quiesce = (fun () -> epoch_quiesce (Baselines.Pdlart.epoch t));
        b_service = None;
      }
  | Fastfair_sys ->
      let t = Baselines.Fastfair.create machine ~string_keys ~capacity:data_capacity () in
      {
        Svc.Store.b_index = Index.Index ((module Baselines.Fastfair.Index), t);
        b_recover = (fun () -> Baselines.Fastfair.recover t);
        b_invariants = (fun () -> ignore (Baselines.Fastfair.check_invariants t : int));
        b_quiesce = ignore;
        b_service = None;
      }
  | Bztree_sys ->
      let t =
        Baselines.Bztree.create machine ~string_keys ~capacity:(4 * data_capacity) ()
      in
      {
        Svc.Store.b_index = Index.Index ((module Baselines.Bztree.Index), t);
        b_recover = (fun () -> Baselines.Bztree.recover t);
        b_invariants = (fun () -> ignore (Baselines.Bztree.check_invariants t : int));
        b_quiesce = ignore;
        b_service = None;
      }
  | Fptree_sys ->
      let t = Baselines.Fptree.create machine ~string_keys ~capacity:data_capacity () in
      {
        Svc.Store.b_index = Index.Index ((module Baselines.Fptree.Index), t);
        b_recover = (fun () -> Baselines.Fptree.recover t);
        b_invariants = (fun () -> ignore (Baselines.Fptree.check_invariants t : int));
        b_quiesce = ignore;
        b_service = None;
      }

(** [make machine sys] builds an index and its background service.
    [cfg] overrides PACTree's configuration (factor analysis). *)
let make machine ?(string_keys = false) ~scale ?cfg sys :
    Index.index * Workload.Runner.service option =
  let data_capacity = scale.Scale.data_capacity in
  let search_capacity = scale.Scale.search_capacity in
  match sys with
  | Pactree_sys ->
      let cfg =
        match cfg with
        | Some c -> c
        | None ->
            {
              Tree.default_config with
              key_inline = (if string_keys then 32 else 8);
              data_capacity;
              search_capacity;
            }
      in
      let t = Tree.create machine ~cfg () in
      (Baselines.Pactree_index.wrap t, Some (pactree_service t))
  | Pdlart_sys ->
      let t = Baselines.Pdlart.create machine ~capacity:data_capacity () in
      (Index.Index ((module Baselines.Pdlart.Index), t), None)
  | Fastfair_sys ->
      let t = Baselines.Fastfair.create machine ~string_keys ~capacity:data_capacity () in
      (Index.Index ((module Baselines.Fastfair.Index), t), None)
  | Bztree_sys ->
      (* BzTree copy-on-writes nodes without reclaiming (see
         baselines/bztree.ml): give it headroom *)
      let t =
        Baselines.Bztree.create machine ~string_keys ~capacity:(4 * data_capacity) ()
      in
      (Index.Index ((module Baselines.Bztree.Index), t), None)
  | Fptree_sys ->
      let t = Baselines.Fptree.create machine ~string_keys ~capacity:data_capacity () in
      (Index.Index ((module Baselines.Fptree.Index), t), None)
