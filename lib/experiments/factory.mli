(** Uniform construction of the five benchmarked systems. *)

type sys = Pactree_sys | Pdlart_sys | Fastfair_sys | Bztree_sys | Fptree_sys

(** All systems, PACTree first. *)
val all : sys list

val name : sys -> string

val of_string : string -> sys option

(** FPTree's reference binary lacks variable-length keys (paper §6),
    so string-key sweeps skip it. *)
val supports_strings : sys -> bool

(** PACTree's background updater as a runner service. *)
val pactree_service : Pactree.Tree.t -> Workload.Runner.service

(** [make machine ~scale sys] builds an index and its background
    service (if any).  [cfg] overrides PACTree's configuration for the
    factor analysis. *)
val make :
  Nvm.Machine.t ->
  ?string_keys:bool ->
  scale:Scale.t ->
  ?cfg:Pactree.Tree.config ->
  sys ->
  Baselines.Index_intf.index * Workload.Runner.service option

(** One svc shard of the given system: index + recovery / invariant /
    quiesce hooks + background service, for {!Svc.Store.create}'s
    backend factory. *)
val make_backend :
  Nvm.Machine.t ->
  ?string_keys:bool ->
  scale:Scale.t ->
  ?cfg:Pactree.Tree.config ->
  sys ->
  Svc.Store.backend
