(* One generator per table/figure of the paper's evaluation (see
   DESIGN.md §3 for the experiment index).  Each prints the same rows
   / series the paper plots; EXPERIMENTS.md records paper-vs-measured
   shapes. *)

module Machine = Nvm.Machine
module Config = Nvm.Config
module Stats = Nvm.Stats
module Runner = Workload.Runner
module Ycsb = Workload.Ycsb
module Keyset = Workload.Keyset
module Tree = Pactree.Tree
module Key = Pactree.Key

let printf = Format.printf

let header title = printf "@.=== %s ===@." title

let gb bytes = float_of_int bytes /. 1e9

let run_one ?(protocol = Config.Snoop) ?(profile = Config.dcpmm) ?(string_keys = false)
    ?cfg ?(theta = 0.99) ?threads ~scale ~mix sys =
  (* each cell allocates hundreds of MB of pool images: reclaim the
     previous cell's before building the next *)
  Gc.compact ();
  let machine = Machine.create ~profile ~protocol ~numa_count:2 () in
  let index, service = Factory.make machine ~string_keys ~scale ?cfg sys in
  let threads = Option.value ~default:28 threads in
  let kind = if string_keys then Keyset.String_keys else Keyset.Int_keys in
  Runner.run ~machine ~index ?service ~mix ~kind ~loaded:scale.Scale.keys
    ~ops:scale.Scale.ops ~threads ~theta ()

(* ---- Figure 2: FastFair under snoop vs directory coherence ---- *)

let fig2 scale =
  header "Figure 2: FastFair YCSB-A (int keys), snoop vs directory coherence";
  printf "%8s %14s %14s@." "threads" "snoop Mops" "directory Mops";
  List.iter
    (fun threads ->
      let m protocol =
        Runner.mops
          (run_one ~protocol ~threads ~scale ~mix:Ycsb.Workload_a Factory.Fastfair_sys)
      in
      printf "%8d %14.2f %14.2f@." threads (m Config.Snoop) (m Config.Directory))
    scale.Scale.thread_counts

(* ---- Figure 3: PDL-ART insert-only, PMDK vs volatile allocator ---- *)

let fig3 scale =
  header "Figure 3: PDL-ART insert-only (int keys), allocator comparison";
  let m kind =
    Gc.compact ();
    let machine = Machine.create ~numa_count:2 () in
    let t =
      Baselines.Pdlart.create machine ~alloc_kind:kind
        ~capacity:scale.Scale.data_capacity ()
    in
    let index = Baselines.Index_intf.Index ((module Baselines.Pdlart.Index), t) in
    Runner.mops
      (Runner.run ~machine ~index ~mix:Ycsb.Load_a ~kind:Keyset.Int_keys ~loaded:0
         ~ops:scale.Scale.ops ~threads:28 ())
  in
  let jemalloc = m Pmalloc.Heap.Volatile_meta in
  let pmdk = m Pmalloc.Heap.Pmdk in
  printf "%-22s %8.2f Mops@." "Jemalloc (volatile)" jemalloc;
  printf "%-22s %8.2f Mops (%.1fx slower)@." "PMDK (crash-consistent)" pmdk
    (jemalloc /. pmdk)

(* ---- Figure 4: lookup throughput and NVM reads, FastFair vs PDL-ART ---- *)

let fig4 scale =
  header "Figure 4: 100% lookups (YCSB-C): throughput and NVM reads";
  printf "%10s %10s %12s %14s@." "index" "keys" "Mops" "NVM read (GB)";
  List.iter
    (fun (sys, string_keys) ->
      let r = run_one ~string_keys ~scale ~mix:Ycsb.Workload_c sys in
      printf "%10s %10s %12.2f %14.3f@." (Factory.name sys)
        (if string_keys then "string" else "int")
        (Runner.mops r)
        (gb (Stats.total_read_bytes r.Runner.nvm)))
    [
      (Factory.Fastfair_sys, false);
      (Factory.Pdlart_sys, false);
      (Factory.Fastfair_sys, true);
      (Factory.Pdlart_sys, true);
    ]

(* ---- Figure 5: scan throughput and NVM reads ---- *)

let fig5 scale =
  header "Figure 5: scan operations (int keys): throughput and NVM reads";
  printf "%10s %12s %14s@." "index" "Mops" "NVM read (GB)";
  List.iter
    (fun sys ->
      let r = run_one ~scale ~mix:Ycsb.Workload_e sys in
      printf "%10s %12.2f %14.3f@." (Factory.name sys) (Runner.mops r)
        (gb (Stats.total_read_bytes r.Runner.nvm)))
    [ Factory.Fastfair_sys; Factory.Pdlart_sys ]

(* ---- Figure 6: FPTree HTM aborts vs data size and threads ---- *)

let fig6 scale =
  header "Figure 6: FPTree HTM aborts (50% lookup / 50% insert)";
  printf "%8s %12s %12s %12s %12s@." "threads" "small Mops" "small ab/op" "big Mops"
    "big ab/op";
  let sizes = (scale.Scale.keys / 4, scale.Scale.keys * 2) in
  let run keys threads =
    Gc.compact ();
    let machine = Machine.create ~numa_count:2 () in
    let scale' = Scale.make ~keys ~ops:scale.Scale.ops ~thread_counts:[] in
    let t = Baselines.Fptree.create machine ~capacity:scale'.Scale.data_capacity () in
    let index = Baselines.Index_intf.Index ((module Baselines.Fptree.Index), t) in
    let r =
      Runner.run ~machine ~index ~mix:Ycsb.Skew_insert ~kind:Keyset.Int_keys
        ~loaded:keys ~ops:scale.Scale.ops ~threads ()
    in
    let h = Baselines.Fptree.htm_stats t in
    let aborts_per_op =
      float_of_int h.Baselines.Htm.aborts /. float_of_int (max 1 r.Runner.ops)
    in
    (Runner.mops r, aborts_per_op)
  in
  List.iter
    (fun threads ->
      let small_keys, big_keys = sizes in
      let ms, asml = run small_keys threads in
      let mb, abig = run big_keys threads in
      printf "%8d %12.2f %12.2f %12.2f %12.2f@." threads ms asml mb abig)
    scale.Scale.thread_counts

(* ---- Figures 9/10: YCSB sweeps over all indexes ---- *)

let ycsb_sweep ~string_keys scale =
  let mixes = Ycsb.all_mixes in
  let systems = List.filter (fun s -> (not string_keys) || Factory.supports_strings s) Factory.all in
  List.iter
    (fun mix ->
      printf "@.-- %a (%s keys, Zipfian) --@." Ycsb.pp_mix mix
        (if string_keys then "string" else "int");
      printf "%8s" "threads";
      List.iter (fun s -> printf " %10s" (Factory.name s)) systems;
      printf "@.";
      List.iter
        (fun threads ->
          printf "%8d" threads;
          List.iter
            (fun sys ->
              let r = run_one ~string_keys ~threads ~scale ~mix sys in
              printf " %10.2f" (Runner.mops r))
            systems;
          printf "@.")
        scale.Scale.thread_counts)
    mixes

let fig9 scale =
  header "Figure 9: YCSB, string keys, Zipfian (Mops/s)";
  ycsb_sweep ~string_keys:true scale

let fig10 scale =
  header "Figure 10: YCSB, integer keys, Zipfian (Mops/s)";
  ycsb_sweep ~string_keys:false scale

(* ---- Figure 11: low-bandwidth NVM machine ---- *)

let fig11 scale =
  header "Figure 11: low-bandwidth NVM machine, 32 threads, uniform (Mops/s)";
  printf "%8s" "mix";
  List.iter (fun s -> printf " %10s" (Factory.name s)) Factory.all;
  printf "@.";
  List.iter
    (fun mix ->
      printf "%8s" (Format.asprintf "%a" Ycsb.pp_mix mix);
      List.iter
        (fun sys ->
          let r =
            run_one ~profile:Config.dcpmm_low_bw ~threads:32 ~theta:0.0 ~scale ~mix sys
          in
          printf " %10.2f" (Runner.mops r))
        Factory.all;
      printf "@.")
    Ycsb.all_mixes

(* ---- Figure 12: factor analysis ---- *)

let fig12 scale =
  header "Figure 12: factor analysis (string keys, 28 threads, Mops/s)";
  let base_cfg =
    {
      Tree.default_config with
      key_inline = 32;
      data_capacity = scale.Scale.data_capacity;
      search_capacity = scale.Scale.search_capacity;
    }
  in
  let variants =
    [
      ("ART(SC)", `Pdlart 1);
      ("+Per-NUMA pool", `Pdlart 0);
      ( "+Slotted leaf",
        `Pactree { base_cfg with Tree.async_smo = false; selective_persistence = false } );
      ( "+Selective persistence",
        `Pactree { base_cfg with Tree.async_smo = false; selective_persistence = true } );
      ("+Async SL update", `Pactree base_cfg);
      ("DRAM search layer", `Pactree { base_cfg with Tree.search_layer_dram = true });
    ]
  in
  printf "%-24s" "variant";
  List.iter (fun m -> printf " %8s" (Format.asprintf "%a" Ycsb.pp_mix m)) Ycsb.all_mixes;
  printf "@.";
  List.iter
    (fun (label, variant) ->
      printf "%-24s" label;
      List.iter
        (fun mix ->
          Gc.compact ();
          let machine = Machine.create ~numa_count:2 () in
          let index, service =
            match variant with
            | `Pdlart numa_pools ->
                let numa_pools = if numa_pools = 0 then None else Some numa_pools in
                let t =
                  Baselines.Pdlart.create machine ?numa_pools
                    ~capacity:scale.Scale.data_capacity ()
                in
                (Baselines.Index_intf.Index ((module Baselines.Pdlart.Index), t), None)
            | `Pactree cfg ->
                let t = Tree.create machine ~cfg () in
                (Baselines.Pactree_index.wrap t, Some (Factory.pactree_service t))
          in
          let r =
            Runner.run ~machine ~index ?service ~mix ~kind:Keyset.String_keys
              ~loaded:scale.Scale.keys ~ops:scale.Scale.ops ~threads:28 ()
          in
          printf " %8.2f" (Runner.mops r))
        Ycsb.all_mixes;
      printf "@.")
    variants

(* ---- Figure 13: tail latency ---- *)

let fig13 scale =
  header "Figure 13: tail latency, int keys, uniform, 56 threads (usec)";
  List.iter
    (fun mix ->
      printf "@.-- %a --@." Ycsb.pp_mix mix;
      printf "%10s %10s %10s %10s %10s@." "index" "p90" "p99" "p99.9" "p99.99";
      List.iter
        (fun sys ->
          let r = run_one ~threads:56 ~theta:0.0 ~scale ~mix sys in
          let p q = Workload.Latency.percentile r.Runner.latency q *. 1e6 in
          printf "%10s %10.1f %10.1f %10.1f %10.1f@." (Factory.name sys) (p 90.0)
            (p 99.0) (p 99.9) (p 99.99))
        Factory.all)
    [ Ycsb.Workload_a; Ycsb.Workload_b; Ycsb.Workload_c; Ycsb.Workload_e ]

(* ---- Figure 14: single-threaded throughput ---- *)

let fig14 scale =
  header "Figure 14: single-threaded throughput (Mops/s)";
  List.iter
    (fun string_keys ->
      printf "@.-- %s keys --@." (if string_keys then "string" else "int");
      let systems =
        List.filter (fun s -> (not string_keys) || Factory.supports_strings s) Factory.all
      in
      printf "%8s" "mix";
      List.iter (fun s -> printf " %10s" (Factory.name s)) systems;
      printf "@.";
      List.iter
        (fun mix ->
          printf "%8s" (Format.asprintf "%a" Ycsb.pp_mix mix);
          List.iter
            (fun sys ->
              let r = run_one ~string_keys ~threads:1 ~scale ~mix sys in
              printf " %10.2f" (Runner.mops r))
            systems;
          printf "@.")
        Ycsb.all_mixes)
    [ false; true ]

(* ---- Figure 15: Zipfian-coefficient sweep ---- *)

let fig15 scale =
  header "Figure 15: PACTree vs Zipfian coefficient (int keys, Mops/s)";
  let thetas = [ 0.5; 0.6; 0.7; 0.8; 0.9; 0.99 ] in
  List.iter
    (fun (label, mix) ->
      printf "@.-- %s --@." label;
      printf "%8s %12s %12s@." "theta" "28 thr" "56 thr";
      List.iter
        (fun theta ->
          let m threads =
            Runner.mops (run_one ~threads ~theta ~scale ~mix Factory.Pactree_sys)
          in
          printf "%8.2f %12.2f %12.2f@." theta (m 28) (m 56))
        thetas)
    [
      ("50% lookup + 50% update", Ycsb.Skew_update);
      ("50% lookup + 50% insert", Ycsb.Skew_insert);
    ]

(* ---- §3.5: ADR vs eADR mode (discussion section) ---- *)

let eadr scale =
  header "3.5: ADR vs eADR (persistent caches), int keys, 28 threads (Mops/s)";
  printf "%8s" "mix";
  List.iter (fun s -> printf " %16s" (Factory.name s)) [ Factory.Pactree_sys; Factory.Fastfair_sys ];
  printf "@.";
  List.iter
    (fun mix ->
      printf "%8s" (Format.asprintf "%a" Ycsb.pp_mix mix);
      List.iter
        (fun sys ->
          let adr = Runner.mops (run_one ~scale ~mix sys) in
          let e = Runner.mops (run_one ~profile:Config.dcpmm_eadr ~scale ~mix sys) in
          printf " %7.2f/%7.2f" adr e)
        [ Factory.Pactree_sys; Factory.Fastfair_sys ];
      printf "@.")
    [ Ycsb.Load_a; Ycsb.Workload_a; Ycsb.Workload_c ];
  printf "(each cell: ADR / eADR — persistence cost off the critical path,@.";
  printf " bandwidth still binding, per the paper's 3.5 expectation)@."

(* ---- §3.1.1: the FH5 bandwidth-meltdown measurement ---- *)

let fh5 scale =
  header "FH5 (3.1.1): 100% remote random reads, directory coherence traffic";
  let run protocol =
    let machine = Machine.create ~protocol ~numa_count:2 () in
    let pool =
      Nvm.Pool.create machine ~name:"fh5" ~numa:0
        ~capacity:(max (1 lsl 22) (scale.Scale.keys * 16))
        ()
    in
    let lines = Nvm.Pool.capacity pool / 64 in
    let sched = Des.Sched.create () in
    (* bandwidth-over-time series: this is the plot where the
       directory protocol's read bandwidth melts down *)
    let sampler = Obs.Sampler.create ~machine ~interval:20e-6 () in
    Obs.Sampler.spawn sampler sched;
    let live = ref 20 in
    for i = 0 to 19 do
      Des.Sched.spawn sched ~numa:1 ~name:(Printf.sprintf "r%d" i) (fun () ->
          let rng = Des.Rng.create ~seed:(Int64.of_int (i + 1)) in
          for _ = 1 to scale.Scale.ops / 20 do
            ignore (Nvm.Pool.read_int pool (Des.Rng.int rng lines * 64))
          done;
          decr live;
          if !live = 0 then Obs.Sampler.stop sampler)
    done;
    Des.Sched.run sched;
    let stats = Nvm.Device.stats (Machine.device machine 0) in
    (gb (Stats.total_read_bytes stats), gb (Stats.total_write_bytes stats), sampler)
  in
  let dr, dw, dsampler = run Config.Directory in
  let sr, sw, ssampler = run Config.Snoop in
  printf "%-10s %12s %12s@." "protocol" "read (GB)" "write (GB)";
  printf "%-10s %12.3f %12.3f@." "directory" dr dw;
  printf "%-10s %12.3f %12.3f@." "snoop" sr sw;
  let dir_csv = "fh5_bandwidth_directory.csv" in
  let snoop_csv = "fh5_bandwidth_snoop.csv" in
  Obs.Sampler.write_csv dsampler dir_csv;
  Obs.Sampler.write_csv ssampler snoop_csv;
  printf "bandwidth-over-time series written to %s and %s@." dir_csv snoop_csv

(* ---- §6.7: jump-node distance distribution ---- *)

let sec6_7 scale =
  header "6.7: distance from jump node to target node (YCSB-A, 112 threads)";
  let machine = Machine.create ~numa_count:2 () in
  let cfg =
    {
      Tree.default_config with
      data_capacity = scale.Scale.data_capacity;
      search_capacity = scale.Scale.search_capacity;
    }
  in
  let t = Tree.create machine ~cfg () in
  let index = Baselines.Pactree_index.wrap t in
  ignore
    (Runner.run ~machine ~index ~service:(Factory.pactree_service t)
       ~mix:Ycsb.Workload_a ~kind:Keyset.Int_keys ~loaded:scale.Scale.keys
       ~ops:scale.Scale.ops ~threads:112 ());
  let hist = Tree.jump_histogram t in
  let total = Array.fold_left ( + ) 0 hist in
  printf "%8s %12s@." "hops" "fraction";
  Array.iteri
    (fun hops count ->
      if count > 0 then
        printf "%8s %11.2f%%@."
          (if hops = Array.length hist - 1 then Printf.sprintf "%d+" hops
           else string_of_int hops)
          (100.0 *. float_of_int count /. float_of_int (max 1 total)))
    hist

(* ---- §6.8: crash-injection recovery test ---- *)

let sec6_8 scale =
  header "6.8: recovery under 100 injected crashes";
  let rounds = 100 in
  let machine = Machine.create ~numa_count:2 () in
  let cfg =
    {
      Tree.default_config with
      data_capacity = scale.Scale.data_capacity * 2;
      search_capacity = scale.Scale.search_capacity * 2;
    }
  in
  let t = Tree.create machine ~cfg () in
  let seed = Des.Rng.env_seed ~default:0xC4A5FL in
  let rng = Des.Rng.create ~seed in
  let acked : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let failures = ref 0 in
  for round = 1 to rounds do
    let sched = Des.Sched.create () in
    Des.Sched.spawn sched ~name:"updater" (fun () -> Tree.updater_loop t);
    for i = 0 to 3 do
      Des.Sched.spawn sched ~numa:(i mod 2) ~name:(Printf.sprintf "w%d" i) (fun () ->
          let rng = Des.Rng.create ~seed:(Int64.of_int ((round * 64) + i)) in
          for _ = 1 to 200 do
            let k = Des.Rng.int rng 50_000 in
            let v = (round * 1_000_000) + k in
            Tree.insert t (Key.of_int k) v;
            Hashtbl.replace acked k v
          done;
          Tree.request_shutdown t)
    done;
    (* SIGKILL at a random instant *)
    Des.Sched.spawn sched ~name:"crasher" (fun () ->
        Des.Sched.delay (1e-5 +. (Des.Rng.float rng *. 2e-4));
        Des.Sched.abort_all sched;
        let mode =
          if Des.Rng.bool rng then Machine.Strict
          else Machine.Flaky (Des.Rng.float rng, Des.Rng.split rng)
        in
        Machine.crash machine mode);
    Des.Sched.run sched;
    (* run recovery on the simulated clock so its cost is measured
       (and phase-attributed when an observer is installed) *)
    let rsched = Des.Sched.create () in
    Des.Sched.spawn rsched ~name:"recovery" (fun () -> ignore (Tree.recover t));
    Des.Sched.run rsched;
    (try ignore (Tree.check_invariants t)
     with Failure msg ->
       incr failures;
       printf "round %d: INVARIANT FAILURE: %s@." round msg);
    Hashtbl.iter
      (fun k v ->
        match Tree.lookup t (Key.of_int k) with
        | Some v' when v' = v || v' > v -> () (* a later round's value may be newer *)
        | _ ->
            incr failures;
            printf "round %d: key %d lost@." round k)
      acked;
    Tree.reset_shutdown t
  done;
  printf "%d/%d crash rounds recovered correctly, %d failures@." (rounds - !failures)
    rounds !failures;
  if !failures > 0 then
    printf "seed %Ld (override with PACTREE_SEED to replay)@." seed
