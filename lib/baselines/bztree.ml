(* BzTree (Arulraj et al., VLDB'18) baseline: a latch-free persistent
   B+-tree built on PMwCAS.

   Cost characteristics reproduced (§2.2.1, §6.1):
   - every record operation runs one or more PMwCAS executions, each
     charging descriptor + per-word persistence (~15 flushes per
     insert in total);
   - leaves are unsorted append-only slot arrays: lookups scan
     linearly (more NVM reads), scans must snapshot + sort;
   - internal nodes are immutable: splits copy-on-write the parent
     (heavy allocation — the paper measures ~40% of BzTree's time in
     the allocator), while existing child pointers are updated in
     place;
   - a full leaf is frozen, consolidated (or split) into freshly
     allocated nodes, and forwarded via a replacement pointer.

   Retired nodes are forwarded, not freed (the real system reclaims
   them with epochs; reclamation does not affect the measured
   behaviours, and the allocation cost — the relevant factor — is
   charged on every CoW). *)

module Pool = Nvm.Pool
module Machine = Nvm.Machine
module Heap = Pmalloc.Heap
module Pptr = Pmalloc.Pptr
module Key = Pactree.Key

let name = "BzTree"

exception Restart

let cap = 20

let off_status = 0 (* count bits 0-15, frozen bit 16, leaf bit 17 *)

let off_replacement = 8

let off_next = 16

let off_leftmost = 24

let off_recs = 32

let rec_size = 24

let node_size = off_recs + (cap * rec_size)

let frozen_bit = 1 lsl 16

let leaf_bit = 1 lsl 17

let count_of s = s land 0xFFFF

let is_frozen s = s land frozen_bit <> 0

let is_leaf s = s land leaf_bit <> 0

type t = {
  machine : Machine.t;
  heap : Heap.t;
  meta : Pool.t; (* 0: root pointer; 64..: PMwCAS descriptor area *)
  kr : Krep.t;
  mutable consolidations : int;
  (* Structural modifications (freeze/consolidate/split and the parent
     CoW chain) are serialised; record-level operations stay
     concurrent.  The real BzTree interleaves SMOs through PMwCAS
     helping; the serialisation does not change the costs the paper
     measures (allocation volume, flush counts, indirection). *)
  smo_mutex : Des.Sync.Mutex.t;
}

type node = { pool : Pool.t; off : int }

let node_of ptr = { pool = Pmalloc.Registry.resolve ptr; off = Pptr.off ptr }

let status n = Pool.read_int n.pool (n.off + off_status)

let replacement n = Pool.read_int n.pool (n.off + off_replacement)

let next n = Pool.read_int n.pool (n.off + off_next)

let leftmost n = Pool.read_int n.pool (n.off + off_leftmost)

let rec_off n i = n.off + off_recs + (i * rec_size)

let meta_at n i = Pool.read_int n.pool (rec_off n i)

let krep_at n i = Pool.read_int64 n.pool (rec_off n i + 8)

let val_at n i = Pool.read_int n.pool (rec_off n i + 16)

let mw t targets = Pmwcas.execute ~desc_pool:t.meta ~desc_base:64 targets

let create machine ?(string_keys = false) ?(capacity = 1 lsl 26) () =
  let numa = Machine.numa_count machine in
  let heap =
    Heap.create machine ~kind:Heap.Pmdk ~name:"bztree" ~numa_pools:numa ~capacity ()
  in
  let meta =
    Pool.create machine ~name:"bztree.meta" ~numa:0 ~capacity:(64 + Pmwcas.region_size) ()
  in
  Pmalloc.Registry.register meta;
  let t =
    {
      machine;
      heap;
      meta;
      kr = Krep.create ~heap ~string_keys;
      consolidations = 0;
      smo_mutex = Des.Sync.Mutex.create ();
    }
  in
  let ptr = Heap.alloc heap node_size in
  let root = node_of ptr in
  Pool.fill_zero root.pool root.off node_size;
  Pool.write_int root.pool (root.off + off_status) leaf_bit;
  Pool.persist root.pool root.off node_size;
  Pool.write_int meta 0 ptr;
  Pool.persist meta 0 8;
  t

let root t = node_of (Pool.read_int t.meta 0)

let with_retry f =
  let rec go attempt =
    match f () with
    | v -> v
    | exception Restart ->
        if attempt > 20_000 then failwith "BzTree: livelock";
        Des.Sched.delay (Float.min (float_of_int attempt *. 50e-9) 2e-6);
        go (attempt + 1)
  in
  go 0

(* Follow consolidation forwarding. *)
let rec resolve n =
  let s = status n in
  if is_frozen s then begin
    let r = replacement n in
    if Pptr.is_null r then (n, s) (* freeze in progress *) else resolve (node_of r)
  end
  else (n, s)

(* Internal nodes: sorted separators; child for probe = child of last
   separator <= probe, else leftmost. *)
let child_for t n s ~probe_rep ~probe_key =
  let c = count_of s in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Krep.compare_with_key t.kr (krep_at n mid) ~probe_rep ~probe_key < 0 then
        go (mid + 1) hi
      else go lo mid
  in
  let i = go 0 c in
  let i =
    if i < c && Krep.compare_with_key t.kr (krep_at n i) ~probe_rep ~probe_key = 0 then
      i + 1
    else i
  in
  if i = 0 then leftmost n else val_at n (i - 1)

(* Descend to the leaf covering the probe; returns the leaf and the
   path of internal nodes (nearest parent first). *)
let rec descend t n path ~probe_rep ~probe_key =
  let n, s = resolve n in
  if is_leaf s then (n, s, path)
  else
    let child = child_for t n s ~probe_rep ~probe_key in
    descend t (node_of child) (n :: path) ~probe_rep ~probe_key

let to_leaf t key =
  let probe_rep = Krep.probe_rep t.kr key in
  descend t (root t) [] ~probe_rep ~probe_key:key

(* Linear scan of an unsorted leaf. *)
let find_visible t leaf s key =
  let probe_rep = Krep.probe_rep t.kr key in
  let c = count_of s in
  let rec go i =
    if i >= c then None
    else if
      meta_at leaf i = 1
      && Krep.compare_with_key t.kr (krep_at leaf i) ~probe_rep ~probe_key:key = 0
    then Some i
    else go (i + 1)
  in
  go 0

let lookup t key =
  with_retry @@ fun () ->
  let leaf, s, _ = to_leaf t key in
  match find_visible t leaf s key with
  | Some i -> Some (val_at leaf i)
  | None -> None

(* ---------- consolidation and splits ---------- *)

let live_sorted t leaf s =
  let c = count_of s in
  let rec collect acc i =
    if i < 0 then acc
    else
      collect (if meta_at leaf i = 1 then (krep_at leaf i, val_at leaf i) :: acc else acc)
        (i - 1)
  in
  List.sort (fun (a, _) (b, _) -> Krep.compare t.kr a b) (collect [] (c - 1))

let build_leaf t pairs ~next_ptr =
  let ptr = Heap.alloc t.heap node_size in
  let n = node_of ptr in
  Pool.fill_zero n.pool n.off node_size;
  List.iteri
    (fun i (krep, v) ->
      Pool.write_int n.pool (rec_off n i) 1;
      Pool.write_int64 n.pool (rec_off n i + 8) krep;
      Pool.write_int n.pool (rec_off n i + 16) v)
    pairs;
  Pool.write_int n.pool (n.off + off_status) (leaf_bit lor List.length pairs);
  Pool.write_int n.pool (n.off + off_next) next_ptr;
  Pool.persist n.pool n.off node_size;
  ptr

let internal_entries n s =
  List.init (count_of s) (fun i -> (krep_at n i, val_at n i))

let build_internal t ~leftmost_ptr entries =
  assert (List.length entries <= cap);
  let ptr = Heap.alloc t.heap node_size in
  let n = node_of ptr in
  Pool.fill_zero n.pool n.off node_size;
  List.iteri
    (fun i (krep, child) ->
      Pool.write_int n.pool (rec_off n i) 1;
      Pool.write_int64 n.pool (rec_off n i + 8) krep;
      Pool.write_int n.pool (rec_off n i + 16) child)
    entries;
  Pool.write_int n.pool (n.off + off_status) (List.length entries);
  Pool.write_int n.pool (n.off + off_leftmost) leftmost_ptr;
  Pool.persist n.pool n.off node_size;
  ignore t;
  ptr

(* A forwarding target for a node that split in two: a 2-child
   internal node covering the old node's whole range, so in-flight
   descents and chain walkers that land on the frozen node are routed
   correctly on both sides of the separator. *)
let bridge t ~left ~sep ~right = build_internal t ~leftmost_ptr:left [ (sep, right) ]

(* Swap [old_ptr -> new_ptr] in the parent's child slot (in-place
   pointer update, the one mutation internal nodes allow). *)
let swap_child t parent old_ptr new_ptr =
  let s = status parent in
  if is_frozen s then raise Restart;
  if leftmost parent = old_ptr then begin
    if
      not
        (mw t
           [
             { Pmwcas.pool = parent.pool; off = parent.off + off_leftmost;
               expected = old_ptr; desired = new_ptr };
           ])
    then raise Restart
  end
  else begin
    let c = count_of s in
    let rec find i =
      if i >= c then raise Restart
      else if val_at parent i = old_ptr then i
      else find (i + 1)
    in
    let i = find 0 in
    if
      not
        (mw t
           [
             { Pmwcas.pool = parent.pool; off = rec_off parent i + 16;
               expected = old_ptr; desired = new_ptr };
           ])
    then raise Restart
  end

let swap_root t old_ptr new_ptr =
  if
    not
      (mw t [ { Pmwcas.pool = t.meta; off = 0; expected = old_ptr; desired = new_ptr } ])
  then raise Restart

(* Insert separator [sep]->[right] next to child [old]->[left] in the
   (immutable) parent: CoW the parent and swap it in above. *)
let rec add_separator t path old_ptr left_ptr sep right_ptr =
  match path with
  | [] ->
      (* old was the root: new root with two children *)
      let nr = build_internal t ~leftmost_ptr:left_ptr [ (sep, right_ptr) ] in
      swap_root t old_ptr nr
  | parent :: rest ->
      let s = status parent in
      if is_frozen s then raise Restart;
      let entries = internal_entries parent s in
      let lm = leftmost parent in
      let subst p = if p = old_ptr then left_ptr else p in
      let lm = subst lm in
      let entries = List.map (fun (k, c) -> (k, subst c)) entries in
      (* splice (sep, right) in sorted position *)
      let rec splice acc = function
        | [] -> List.rev ((sep, right_ptr) :: acc)
        | (k, c) :: tl when Krep.compare t.kr k sep < 0 -> splice ((k, c) :: acc) tl
        | tl -> List.rev_append acc ((sep, right_ptr) :: tl)
      in
      let entries' = splice [] entries in
      if List.length entries' <= cap then begin
        let p' = build_internal t ~leftmost_ptr:lm entries' in
        let pold = Pptr.make ~pool:(Pool.id parent.pool) ~off:parent.off in
        (* freeze the old parent, forward it, then swap above *)
        if not
             (mw t
                [
                  { Pmwcas.pool = parent.pool; off = parent.off + off_status;
                    expected = s; desired = s lor frozen_bit };
                ])
        then raise Restart;
        Pool.write_int parent.pool (parent.off + off_replacement) p';
        Pool.persist parent.pool (parent.off + off_replacement) 8;
        (match rest with
        | [] -> swap_root t pold p'
        | gp :: _ -> swap_child t gp pold p')
      end
      else begin
        (* parent overflow: split the CoW result in two *)
        let mid = List.length entries' / 2 in
        let lefts = List.filteri (fun i _ -> i < mid) entries' in
        let rights = List.filteri (fun i _ -> i > mid) entries' in
        let psep, pmid_child = List.nth entries' mid in
        let pl = build_internal t ~leftmost_ptr:lm lefts in
        let pr = build_internal t ~leftmost_ptr:pmid_child rights in
        let pold = Pptr.make ~pool:(Pool.id parent.pool) ~off:parent.off in
        if not
             (mw t
                [
                  { Pmwcas.pool = parent.pool; off = parent.off + off_status;
                    expected = s; desired = s lor frozen_bit };
                ])
        then raise Restart;
        (* the forwarding target must cover the whole old range *)
        let br = bridge t ~left:pl ~sep:psep ~right:pr in
        Pool.write_int parent.pool (parent.off + off_replacement) br;
        Pool.persist parent.pool (parent.off + off_replacement) 8;
        add_separator t rest pold pl psep pr
      end

(* Freeze + consolidate (and possibly split) a full leaf. *)
let consolidate t leaf s path =
  Des.Sync.Mutex.with_lock t.smo_mutex @@ fun () ->
  (* someone may have consolidated while we waited for the lock *)
  if status leaf <> s then raise Restart;
  t.consolidations <- t.consolidations + 1;
  if
    not
      (mw t
         [
           { Pmwcas.pool = leaf.pool; off = leaf.off + off_status;
             expected = s; desired = s lor frozen_bit };
         ])
  then raise Restart;
  let live = live_sorted t leaf s in
  let old_ptr = Pptr.make ~pool:(Pool.id leaf.pool) ~off:leaf.off in
  if List.length live <= cap * 7 / 10 then begin
    let nl = build_leaf t live ~next_ptr:(next leaf) in
    Pool.write_int leaf.pool (leaf.off + off_replacement) nl;
    Pool.persist leaf.pool (leaf.off + off_replacement) 8;
    match path with
    | [] -> swap_root t old_ptr nl
    | parent :: _ -> swap_child t parent old_ptr nl
  end
  else begin
    let mid = List.length live / 2 in
    let lefts = List.filteri (fun i _ -> i < mid) live in
    let rights = List.filteri (fun i _ -> i >= mid) live in
    let sep = fst (List.hd rights) in
    let nr = build_leaf t rights ~next_ptr:(next leaf) in
    let nl = build_leaf t lefts ~next_ptr:nr in
    (* the forwarding target must cover the whole old range *)
    let br = bridge t ~left:nl ~sep ~right:nr in
    Pool.write_int leaf.pool (leaf.off + off_replacement) br;
    Pool.persist leaf.pool (leaf.off + off_replacement) 8;
    add_separator t path old_ptr nl sep nr
  end

(* ---------- write operations ---------- *)

let insert t key value =
  with_retry @@ fun () ->
  let leaf, s, path = to_leaf t key in
  if is_frozen s then raise Restart;
  match find_visible t leaf s key with
  | Some i ->
      (* upsert: CAS the value word, validated against the status word
         so it can never land in a frozen node.  Contention on the
         same (hot) leaf retries in place — only a freeze forces a
         re-descent. *)
      let rec cas_value () =
        let s2 = status leaf in
        if is_frozen s2 then raise Restart;
        let old = val_at leaf i in
        if
          not
            (mw t
               [
                 { Pmwcas.pool = leaf.pool; off = leaf.off + off_status;
                   expected = s2; desired = s2 };
                 { Pmwcas.pool = leaf.pool; off = rec_off leaf i + 16;
                   expected = old; desired = value };
               ])
        then cas_value ()
      in
      cas_value ()
  | None ->
      if count_of s >= cap then begin
        consolidate t leaf s path;
        raise Restart (* retraverse into the replacement *)
      end
      else begin
        let slot = count_of s in
        (* 1. reserve the slot *)
        if
          not
            (mw t
               [
                 { Pmwcas.pool = leaf.pool; off = leaf.off + off_status;
                   expected = s; desired = s + 1 };
               ])
        then raise Restart;
        (* 2. write the record payload and persist it *)
        let krep = Krep.of_key t.kr key in
        Pool.write_int64 leaf.pool (rec_off leaf slot + 8) krep;
        Pool.write_int leaf.pool (rec_off leaf slot + 16) value;
        Pool.persist leaf.pool (rec_off leaf slot + 8) 16;
        (* 3. make it visible — guarded by the status word so a
           record can never become visible in a frozen node (it would
           be lost by the concurrent consolidation) *)
        let rec publish () =
          let s2 = status leaf in
          if is_frozen s2 then raise Restart
          else if
            not
              (mw t
                 [
                   { Pmwcas.pool = leaf.pool; off = leaf.off + off_status;
                     expected = s2; desired = s2 };
                   { Pmwcas.pool = leaf.pool; off = rec_off leaf slot;
                     expected = 0; desired = 1 };
                 ])
          then publish ()
        in
        publish ()
      end

let update t key value =
  with_retry @@ fun () ->
  let leaf, s, _ = to_leaf t key in
  if is_frozen s then raise Restart;
  match find_visible t leaf s key with
  | None -> false
  | Some i ->
      let rec cas_value () =
        let s2 = status leaf in
        if is_frozen s2 then raise Restart;
        let old = val_at leaf i in
        if
          mw t
            [
              { Pmwcas.pool = leaf.pool; off = leaf.off + off_status;
                expected = s2; desired = s2 };
              { Pmwcas.pool = leaf.pool; off = rec_off leaf i + 16;
                expected = old; desired = value };
            ]
        then true
        else cas_value ()
      in
      cas_value ()

let delete t key =
  with_retry @@ fun () ->
  let leaf, s, _ = to_leaf t key in
  if is_frozen s then raise Restart;
  match find_visible t leaf s key with
  | None -> false
  | Some i ->
      if
        mw t
          [
            { Pmwcas.pool = leaf.pool; off = leaf.off + off_status;
              expected = s; desired = s };
            { Pmwcas.pool = leaf.pool; off = rec_off leaf i; expected = 1; desired = 0 };
          ]
      then true
      else raise Restart

(* Scan: snapshot each unsorted leaf, sort it (the per-node overhead
   the paper attributes to BzTree scans), follow the sibling chain
   through replacement forwards. *)
(* Resolve forwarding, then descend a bridge's leftmost spine down to
   a leaf. *)
let rec to_leaf_node t node =
  let node, s = resolve node in
  if is_leaf s then (node, s)
  else to_leaf_node t (node_of (leftmost node))

let scan t key n_wanted =
  with_retry @@ fun () ->
  let probe_rep = Krep.probe_rep t.kr key in
  let acc = ref [] and taken = ref 0 in
  let rec walk node ~first =
    let node, s = to_leaf_node t node in
    let pairs = live_sorted t node s in
    let pairs =
      if first then
        List.filter
          (fun (kr, _) ->
            Krep.compare_with_key t.kr kr ~probe_rep ~probe_key:key >= 0)
          pairs
      else pairs
    in
    List.iter
      (fun (kr, v) ->
        if !taken < n_wanted then begin
          acc := (Krep.to_key t.kr kr, v) :: !acc;
          incr taken
        end)
      pairs;
    let nxt = next node in
    if !taken < n_wanted && not (Pptr.is_null nxt) then walk (node_of nxt) ~first:false
  in
  let leaf, _, _ = to_leaf t key in
  walk leaf ~first:true;
  List.rev !acc

let consolidations t = t.consolidations

(* Post-crash recovery: replay the allocator log, roll interrupted
   PMwCAS descriptors forward/back, then walk the reachable tree and
   unfreeze any node whose freeze never published a replacement — the
   crash interrupted the SMO before the CoW result was durable, so the
   freeze is rolled back (writers would otherwise spin forever on a
   forward that will never come).  Frozen nodes *with* a replacement
   keep forwarding, exactly as live readers expect. *)
let recover t =
  Heap.recover t.heap;
  ignore (Pmwcas.recover ~desc_pool:t.meta ~desc_base:64 : int);
  let rec walk ptr =
    let n = node_of ptr in
    let s = status n in
    if is_frozen s && Pptr.is_null (replacement n) then begin
      Pool.write_int n.pool (n.off + off_status) (s land lnot frozen_bit);
      Pool.persist n.pool (n.off + off_status) 8
    end;
    let n, s = resolve n in
    if not (is_leaf s) then begin
      walk (leftmost n);
      for i = 0 to count_of s - 1 do
        walk (val_at n i)
      done
    end
  in
  walk (Pool.read_int t.meta 0)

let check_invariants t =
  (* walk the leaf chain from the leftmost leaf; the concatenation of
     per-leaf sorted live keys must be globally sorted *)
  let rec to_leftmost n =
    let n, s = resolve n in
    if is_leaf s then n else to_leftmost (node_of (leftmost n))
  in
  let rec walk n acc =
    let n, s = to_leaf_node t n in
    let keys = List.map (fun (kr, _) -> Krep.to_key t.kr kr) (live_sorted t n s) in
    let acc = acc @ keys in
    let nxt = next n in
    if Pptr.is_null nxt then acc else walk (node_of nxt) acc
  in
  let all = walk (to_leftmost (root t)) [] in
  if all <> List.sort Key.compare all then failwith "BzTree: chain not sorted";
  List.length all

module Index : Index_intf.S with type t = t = struct
  type nonrec t = t

  let name = name

  let insert = insert

  let lookup = lookup

  let update = update

  let delete = delete

  let scan = scan
end
