(* FPTree (Oukid et al., SIGMOD'16) baseline: a DRAM-NVM hybrid
   B+-tree.

   Reproduced characteristics (§2.2.1, §6.1):
   - internal nodes live in DRAM and are rebuilt on every restart
     (fast traversal, long recovery);
   - leaves live on NVM: unsorted slots with a validity bitmap and a
     one-byte fingerprint array (which PACTree borrows);
   - internal-node accesses run under HTM with a fallback lock, so
     throughput collapses with large data sets / many threads (GC3,
     Fig 6); leaves use per-leaf locks;
   - leaves are not kept sorted and FPTree has no cached permutation
     array, so every scan re-sorts each visited leaf (its Fig 13 tail
     latency on workload E);
   - splits are synchronous: the internal structure is updated while
     the leaf lock is held (SMO in the critical path, GC2).

   The DRAM internal layer is an OCaml map of separator keys to leaf
   pointers; each traversal charges DRAM latency per level, and HTM
   wraps it with a footprint that grows with the index size.  Leaf
   merging on delete is not implemented (as in the authors' binary,
   deletes just clear bitmap slots). *)

module Pool = Nvm.Pool
module Machine = Nvm.Machine
module Heap = Pmalloc.Heap
module Pptr = Pmalloc.Pptr
module Key = Pactree.Key
module Vlock = Pactree.Vlock
module Node = Pactree.Data_node

let name = "FPTree"

module Smap = Map.Make (String)

type t = {
  machine : Machine.t;
  heap : Heap.t; (* NVM leaves *)
  meta : Pool.t; (* 0: head leaf; 8: generation; 64: split micro-log *)
  lay : Node.layout;
  mutable internals : Pmalloc.Pptr.t Smap.t; (* DRAM: separator -> leaf *)
  htm : Htm.t;
  mutable gen : int;
  mutable cardinal_estimate : int;
  dram_latency : float;
}

let off_head = 0

let off_gen = 8

let off_log = 64

let create machine ?(string_keys = false) ?(capacity = 1 lsl 26) () =
  let numa = Machine.numa_count machine in
  let heap =
    Heap.create machine ~kind:Heap.Pmdk ~name:"fptree" ~numa_pools:numa ~capacity ()
  in
  let meta = Pool.create machine ~name:"fptree.meta" ~numa:0 ~capacity:256 () in
  Pmalloc.Registry.register meta;
  let lay = Node.layout ~key_inline:(if string_keys then 32 else 8) () in
  let gen = Pool.read_int meta off_gen + 1 in
  Pool.write_int meta off_gen gen;
  Pool.persist meta off_gen 8;
  let t =
    {
      machine;
      heap;
      meta;
      lay;
      internals = Smap.empty;
      htm = Htm.create ~seed:0x5EEDL ();
      gen;
      cardinal_estimate = 0;
      dram_latency = (Machine.profile machine).Nvm.Config.dram_latency;
    }
  in
  (* head leaf with sentinel separator "" *)
  let ptr =
    Heap.alloc_to heap ~numa:0 ~size:lay.Node.node_size ~dest_pool:meta ~dest_off:off_head
      ()
  in
  let head = Node.of_ptr ptr in
  Node.init lay head ~gen ~anchor:"" ~next:Pptr.null ~prev:Pptr.null;
  Pool.persist head.Node.pool head.Node.off lay.Node.node_size;
  t.internals <- Smap.add "" ptr t.internals;
  t

let htm_stats t = Htm.stats t.htm

(* HTM read-set model: path through the DRAM internals plus cache
   pressure growing with the index size (GC3). *)
let footprint t =
  let levels = 1 + (Smap.cardinal t.internals |> float_of_int |> Float.log2 |> int_of_float |> max 0) in
  (8 * levels) + (t.cardinal_estimate / 4000)

(* Pure DRAM lookup of the leaf covering [key]. *)
let find_leaf_dram t key =
  match Smap.find_last_opt (fun sep -> String.compare sep key <= 0) t.internals with
  | Some (_, ptr) -> ptr
  | None -> Pool.read_int t.meta off_head

(* The DRAM traversal cost: a few cache references per level. *)
let traversal_duration t =
  let levels = 2 + (Smap.cardinal t.internals |> float_of_int |> Float.log2 |> int_of_float |> max 0) in
  float_of_int levels *. t.dram_latency /. 3.0

(* Traverse internals transactionally. *)
let to_leaf t key =
  Htm.execute t.htm ~footprint_lines:(footprint t) ~duration:(traversal_duration t)
    (fun () -> find_leaf_dram t key)

let lookup t key =
  let ptr = to_leaf t key in
  let leaf = Node.of_ptr ptr in
  let h = Node.lock_handle leaf in
  let rec read attempt =
    if attempt > 10_000 then failwith "FPTree: read livelock";
    let v = Vlock.begin_read h ~gen:t.gen in
    let r = Node.find t.lay leaf key in
    if Vlock.validate h ~gen:t.gen ~version:v then Option.map snd r
    else read (attempt + 1)
  in
  read 0

(* Split a locked, full leaf; returns the leaf now hosting [key].  A
   split micro-log entry brackets the operation (FPTree's crash
   consistency for SMOs); the internal update happens while the leaf
   lock is held. *)
let split_leaf t leaf key =
  (* micro-log: leaf being split *)
  Pool.write_int t.meta off_log (Node.to_ptr leaf);
  Pool.persist t.meta off_log 8;
  let sorted = Node.sorted_live t.lay leaf in
  let total = List.length sorted in
  let move = List.filteri (fun i _ -> i >= total / 2) sorted in
  let median = fst (List.hd move) in
  let ptr =
    Heap.alloc_to t.heap ~size:t.lay.Node.node_size ~dest_pool:t.meta ~dest_off:(off_log + 8) ()
  in
  let nleaf = Node.of_ptr ptr in
  Node.init t.lay nleaf ~gen:t.gen ~anchor:median ~next:(Node.next leaf) ~prev:Pptr.null;
  Node.copy_into t.lay ~src:leaf ~dst:nleaf move;
  Pool.persist nleaf.Node.pool nleaf.Node.off t.lay.Node.node_size;
  Node.set_next leaf ptr;
  Pool.persist leaf.Node.pool (leaf.Node.off + Node.off_next) 8;
  Node.clear_slots leaf (List.map snd move);
  (* synchronous internal update, inside HTM, leaf lock still held *)
  Htm.execute t.htm ~footprint_lines:(footprint t) ~duration:(traversal_duration t)
    (fun () -> t.internals <- Smap.add median ptr t.internals);
  (* clear micro-log *)
  Pool.write_int t.meta off_log 0;
  Pool.persist t.meta off_log 8;
  if Key.compare key median < 0 then leaf else nleaf

let rec locked_leaf t key attempt =
  if attempt > 10_000 then failwith "FPTree: writer livelock";
  let ptr = to_leaf t key in
  let leaf = Node.of_ptr ptr in
  let h = Node.lock_handle leaf in
  let wv = Vlock.acquire h ~gen:t.gen in
  (* the leaf may have split between traversal and lock *)
  let nxt = Node.next leaf in
  let still_covers =
    Pptr.is_null nxt || Node.compare_anchor (Node.of_ptr nxt) key > 0
  in
  if still_covers then (leaf, wv)
  else begin
    Vlock.release h ~gen:t.gen ~version:wv;
    locked_leaf t key (attempt + 1)
  end

let insert t key value =
  let leaf, wv = locked_leaf t key 0 in
  let release l v = Vlock.release (Node.lock_handle l) ~gen:t.gen ~version:v in
  match Node.find t.lay leaf key with
  | Some _ ->
      ignore (Node.update t.lay leaf key value);
      release leaf wv
  | None -> (
      match Node.insert t.lay leaf key value with
      | Node.Ok ->
          t.cardinal_estimate <- t.cardinal_estimate + 1;
          release leaf wv
      | Node.Full ->
          let target = split_leaf t leaf key in
          if Node.equal target leaf then begin
            (match Node.insert t.lay leaf key value with
            | Node.Ok -> ()
            | Node.Full | Node.Absent -> assert false);
            t.cardinal_estimate <- t.cardinal_estimate + 1;
            release leaf wv
          end
          else begin
            let h2 = Node.lock_handle target in
            let wv2 = Vlock.acquire h2 ~gen:t.gen in
            (match Node.insert t.lay target key value with
            | Node.Ok -> ()
            | Node.Full | Node.Absent -> assert false);
            t.cardinal_estimate <- t.cardinal_estimate + 1;
            release target wv2;
            release leaf wv
          end
      | Node.Absent -> assert false)

let update t key value =
  let leaf, wv = locked_leaf t key 0 in
  let r = Node.update t.lay leaf key value in
  Vlock.release (Node.lock_handle leaf) ~gen:t.gen ~version:wv;
  r = Node.Ok

let delete t key =
  let leaf, wv = locked_leaf t key 0 in
  let r = Node.delete t.lay leaf key in
  if r = Node.Ok then t.cardinal_estimate <- t.cardinal_estimate - 1;
  Vlock.release (Node.lock_handle leaf) ~gen:t.gen ~version:wv;
  r = Node.Ok

(* Scan: no cached permutation — sort every visited leaf, every time
   (FPTree's scan overhead). *)
let scan t key n_wanted =
  let acc = ref [] and taken = ref 0 in
  let rec scan_leaf ptr ~first attempt =
    if attempt > 10_000 then failwith "FPTree: scan livelock"
    else if !taken < n_wanted && not (Pptr.is_null ptr) then begin
      let leaf = Node.of_ptr ptr in
      let h = Node.lock_handle leaf in
      let v = Vlock.begin_read h ~gen:t.gen in
      let sorted = Node.sorted_live t.lay leaf in
      let batch = ref [] and n = ref 0 in
      List.iter
        (fun (k, slot) ->
          if
            !taken + !n < n_wanted
            && ((not first) || Key.compare k key >= 0)
          then begin
            batch := (k, Node.value_at t.lay leaf slot) :: !batch;
            incr n
          end)
        sorted;
      let nxt = Node.next leaf in
      if Vlock.validate h ~gen:t.gen ~version:v then begin
        acc := !batch @ !acc;
        taken := !taken + !n;
        scan_leaf nxt ~first:false 0
      end
      else scan_leaf ptr ~first attempt
    end
  in
  scan_leaf (to_leaf t key) ~first:true 0;
  List.rev !acc

(* Restart: leaves survive; the DRAM internal layer is rebuilt by
   walking the leaf chain — FPTree's recovery-time cost. *)
let recover t =
  Heap.recover t.heap;
  let gen = Pool.read_int t.meta off_gen + 1 in
  Pool.write_int t.meta off_gen gen;
  Pool.persist t.meta off_gen 8;
  t.gen <- gen;
  (* Split micro-log replay: a crash after the new leaf was linked but
     before the moved slots were cleared leaves the moved records live
     in both leaves.  Re-clear every slot of the logged leaf at or
     above its successor's anchor.  If the crash hit before the link,
     the successor (if any) is a pre-existing right sibling whose
     anchor exceeds every key in the logged leaf, so this is a no-op
     (the allocated-but-unlinked leaf leaks, which is benign). *)
  let logged = Pool.read_int t.meta off_log in
  if logged <> 0 then begin
    let old_leaf = Node.of_ptr logged in
    let nxt = Node.next old_leaf in
    if not (Pptr.is_null nxt) then begin
      let nleaf = Node.of_ptr nxt in
      let stale =
        List.filter_map
          (fun (k, slot) ->
            if Node.compare_anchor nleaf k <= 0 then Some slot else None)
          (Node.sorted_live t.lay old_leaf)
      in
      if stale <> [] then Node.clear_slots old_leaf stale
    end;
    Pool.write_int t.meta off_log 0;
    Pool.persist t.meta off_log 8
  end;
  t.internals <- Smap.empty;
  t.cardinal_estimate <- 0;
  let rec walk ptr =
    if not (Pptr.is_null ptr) then begin
      let leaf = Node.of_ptr ptr in
      let sep = Node.anchor t.lay leaf in
      t.internals <- Smap.add sep ptr t.internals;
      t.cardinal_estimate <- t.cardinal_estimate + Node.live_count leaf;
      walk (Node.next leaf)
    end
  in
  walk (Pool.read_int t.meta off_head)

let check_invariants t =
  let rec walk ptr acc =
    if Pptr.is_null ptr then acc
    else begin
      let leaf = Node.of_ptr ptr in
      let keys = List.map fst (Node.sorted_live t.lay leaf) in
      walk (Node.next leaf) (acc @ keys)
    end
  in
  let all = walk (Pool.read_int t.meta off_head) [] in
  if all <> List.sort Key.compare all then failwith "FPTree: chain not sorted";
  List.length all

module Index : Index_intf.S with type t = t = struct
  type nonrec t = t

  let name = name

  let insert = insert

  let lookup = lookup

  let update = update

  let delete = delete

  let scan = scan
end
