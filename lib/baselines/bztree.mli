(** BzTree baseline (Arulraj et al., VLDB'18): a latch-free persistent
    B+-tree built on PMwCAS.

    Unsorted append-only leaves (linear-scan lookups, snapshot+sort
    scans), immutable internal nodes replaced copy-on-write (heavy
    allocation — the paper measures ~40% allocator time), one or more
    PMwCAS executions per operation (~15 flushes per insert).  Frozen
    nodes forward through replacement pointers (a 2-child bridge for
    splits); retired nodes are not reclaimed.  See the implementation
    header. *)

type t

val name : string

val create : Nvm.Machine.t -> ?string_keys:bool -> ?capacity:int -> unit -> t

val insert : t -> Pactree.Key.t -> int -> unit

val lookup : t -> Pactree.Key.t -> int option

val update : t -> Pactree.Key.t -> int -> bool

val delete : t -> Pactree.Key.t -> bool

val scan : t -> Pactree.Key.t -> int -> (Pactree.Key.t * int) list

(** Number of freeze+consolidate/split operations so far. *)
val consolidations : t -> int

(** Post-crash recovery: allocator log replay, PMwCAS descriptor
    replay, and roll-back of freezes that lost their replacement
    pointer. *)
val recover : t -> unit

(** Walks the (forwarding-resolved) leaf chain checking order; returns
    the key count. *)
val check_invariants : t -> int

module Index : Index_intf.S with type t = t
