(** FastFair baseline (Hwang et al., FAST'18): a lock-based persistent
    B+-tree with logless crash consistency.

    Sorted nodes entirely on NVM; in-place record shifting with
    ordered persists; synchronous splits that hold locks along the
    split path (the paper's GC2 cost); string keys stored out-of-node
    behind a pointer (the paper's explanation for FastFair's ~3x drop
    on string keys, Fig 9).  See the implementation header for the
    full cost-model notes. *)

type t

val name : string

val create : Nvm.Machine.t -> ?string_keys:bool -> ?capacity:int -> unit -> t

(** Upsert. *)
val insert : t -> Pactree.Key.t -> int -> unit

val lookup : t -> Pactree.Key.t -> int option

val update : t -> Pactree.Key.t -> int -> bool

(** Lazy deletion (no rebalancing — the paper's workloads are
    delete-free). *)
val delete : t -> Pactree.Key.t -> bool

val scan : t -> Pactree.Key.t -> int -> (Pactree.Key.t * int) list

(** Post-crash recovery: allocator log replay, leaf-lock
    re-initialisation, leaf-chain repair (duplicate windows left by an
    interrupted failure-atomic shift or split), and a rebuild of the
    internal layer from the leaf chain. *)
val recover : t -> unit

(** Walks the leaf chain checking global sorted order; returns the key
    count. *)
val check_invariants : t -> int

module Index : Index_intf.S with type t = t
