(* FastFair (Hwang et al., FAST'18) baseline: a lock-based persistent
   B+-tree with logless crash consistency.

   Faithful cost characteristics (what the paper's comparison depends
   on, §2.2.1, §6.1):
   - every node (internal and leaf) lives on NVM;
   - nodes keep *sorted* records, so inserts and deletes shift records
     in place, each touched line flushed (logless, ordered 8B stores);
   - integer keys and values are embedded in the leaf; string keys are
     stored out-of-node behind a pointer, adding a dereference per
     comparison (the paper's explanation for FastFair's 3x drop on
     string keys);
   - structural modifications are synchronous and hold locks along
     the split path (SMO in the critical path, GC2);
   - scans walk the sorted leaf chain: sequential, prefetch-friendly.

   Concurrency: per-node version locks; writers use lock coupling
   (release the parent once the child cannot split), readers are
   optimistic with restart.  Deletes do not rebalance (lazy deletion),
   which is irrelevant to the paper's delete-free YCSB workloads. *)

module Pool = Nvm.Pool
module Machine = Nvm.Machine
module Heap = Pmalloc.Heap
module Pptr = Pmalloc.Pptr
module Key = Pactree.Key
module Vlock = Pactree.Vlock
module Layout = Pobj.Layout

let name = "FastFair"

exception Restart

(* Node layout:
   0 lock   8 leaf flag (u8)   10 count (u16)   16 sibling next
   24 leftmost child (internal only)   32 records: (krep 8, val 8) * cap *)
let cap = 27

let hdr = Layout.create "fastfair.node"

let f_lock = Layout.word ~transient:true hdr "lock"

let f_leaf = Layout.u8 ~at:8 hdr "leaf"

let f_count = Layout.u16 ~at:10 hdr "count"

let f_next = Layout.word ~at:16 hdr "next"

let f_leftmost = Layout.word ~at:24 hdr "leftmost"

let f_recs = Layout.slots ~at:32 hdr "recs" ~stride:16 ~count:cap

let node_size = Layout.seal hdr

let off_lock = Layout.off f_lock

let off_leaf = Layout.off f_leaf

let off_count = Layout.off f_count

let off_next = Layout.off f_next

let off_leftmost = Layout.off f_leftmost

let gen = 1

type t = {
  machine : Machine.t;
  heap : Heap.t;
  meta : Pool.t; (* 0: root pointer *)
  string_keys : bool;
}

type node = Pobj.obj = { pool : Pool.t; off : int }

let node_of ptr = { pool = Pmalloc.Registry.resolve ptr; off = Pptr.off ptr }

let to_ptr n = Pptr.make ~pool:(Pool.id n.pool) ~off:n.off

let lockh n = { Vlock.pool = n.pool; off = n.off + off_lock }

let is_leaf n = Pobj.read_u8 n (off_leaf) = 1

let count n = Pobj.read_u16 n (off_count)

let set_count n c = Pobj.write_u16 n (off_count) c

let next n = Pobj.read_int n (off_next)

let leftmost n = Pobj.read_int n (off_leftmost)

let rec_rel i = Layout.slot f_recs i

let rec_off n i = n.off + rec_rel i

let krep_at n i = Pobj.read_i64 n (rec_rel i)

let val_at n i = Pobj.read_int n (rec_rel i + 8)

(* Key representation: integer keys embed the 8 big-endian bytes (so
   unsigned int64 comparison = key order); string keys embed a
   pointer to an out-of-node record (len byte + bytes). *)
let krep_of_key t (k : Key.t) =
  if t.string_keys then begin
    let ptr = Heap.alloc t.heap (1 + String.length k) in
    let o = Pobj.make (Pmalloc.Registry.resolve ptr) (Pptr.off ptr) in
    Pobj.write_u8 o 0 (String.length k);
    Pobj.write_string o 1 k;
    Pobj.persist o 0 (1 + String.length k);
    Int64.of_int ptr
  end
  else String.get_int64_be (Key.to_radix k ^ "\000\000\000\000\000\000\000") 0

let key_of_krep t krep =
  if t.string_keys then begin
    let ptr = Int64.to_int krep in
    let o = Pobj.make (Pmalloc.Registry.resolve ptr) (Pptr.off ptr) in
    let len = Pobj.read_u8 o 0 in
    Pobj.read_string o 1 len
  end
  else begin
    let b = Bytes.create 8 in
    Bytes.set_int64_be b 0 krep;
    Bytes.unsafe_to_string b
  end

(* Compare the stored record key at slot [i] with probe key [k]
   (already converted for the integer path). *)
let cmp_slot t n i ~probe_rep ~probe_key =
  if t.string_keys then begin
    let ptr = Int64.to_int (krep_at n i) in
    let o = Pobj.make (Pmalloc.Registry.resolve ptr) (Pptr.off ptr) in
    let len = Pobj.read_u8 o 0 in
    Pobj.compare_string o 1 len probe_key
  end
  else Int64.unsigned_compare (krep_at n i) probe_rep

(* Index of the first slot whose key is >= probe (binary search over
   the sorted records). *)
let lower_bound t n ~probe_rep ~probe_key =
  let c = count n in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cmp_slot t n mid ~probe_rep ~probe_key < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 c

let child_for t n ~probe_rep ~probe_key =
  (* last separator <= probe; its child, or leftmost *)
  let i = lower_bound t n ~probe_rep ~probe_key in
  let i =
    if i < count n && cmp_slot t n i ~probe_rep ~probe_key = 0 then i + 1 else i
  in
  if i = 0 then leftmost n else val_at n (i - 1)

let alloc_node t ~leaf =
  let ptr = Heap.alloc t.heap node_size in
  let n = node_of ptr in
  Pobj.fill_zero n 0 node_size;
  Vlock.init (lockh n) ~gen;
  Pobj.write_u8 n (off_leaf) (Bool.to_int leaf);
  (n, ptr)

let create machine ?(string_keys = false) ?(capacity = 1 lsl 26) () =
  let numa = Machine.numa_count machine in
  let heap =
    Heap.create machine ~kind:Heap.Pmdk ~name:"fastfair" ~numa_pools:numa ~capacity ()
  in
  let meta = Pool.create machine ~name:"fastfair.meta" ~numa:0 ~capacity:256 () in
  Pmalloc.Registry.register meta;
  let t = { machine; heap; meta; string_keys } in
  let root, rptr = alloc_node t ~leaf:true in
  Pobj.persist root 0 node_size;
  let mo = Pobj.make meta 0 in
  Pobj.write_int mo 0 rptr;
  Pobj.persist mo 0 8;
  t

let root t = node_of (Pobj.read_int (Pobj.make t.meta 0) 0)

(* ---------- reads ---------- *)

let with_retry f =
  let rec go attempt =
    match f () with
    | v -> v
    | exception Restart ->
        if attempt > 10_000 then failwith "FastFair: livelock";
        Des.Sched.delay (Float.min (float_of_int attempt *. 50e-9) 2e-6);
        go (attempt + 1)
  in
  go 0

let check h v = if not (Vlock.validate h ~gen ~version:v) then raise Restart

(* The root pointer is read without a lock; after pinning the root
   node (optimistically or exclusively) we must confirm it is still
   the root, else a concurrent root split could hide keys. *)
let confirm_root t n = Pobj.read_int (Pobj.make t.meta 0) 0 = to_ptr n

let lookup t key =
  let probe_rep = if t.string_keys then 0L else krep_of_key t key in
  let probe_key = key in
  with_retry @@ fun () ->
  let rec descend ~at_root n =
    let h = lockh n in
    let v = Vlock.begin_read h ~gen in
    if at_root && not (confirm_root t n) then raise Restart;
    if is_leaf n then begin
      let i = lower_bound t n ~probe_rep ~probe_key in
      let r =
        if i < count n && cmp_slot t n i ~probe_rep ~probe_key = 0 then Some (val_at n i)
        else None
      in
      check h v;
      r
    end
    else begin
      let child = child_for t n ~probe_rep ~probe_key in
      check h v;
      descend ~at_root:false (node_of child)
    end
  in
  descend ~at_root:true (root t)

(* ---------- writes ---------- *)

(* A record is written as a single 16-byte store: nodes are 64-byte
   aligned and records 16-byte aligned, so a record never straddles a
   cache line and the pair travels torn-free (both words in one
   line-granularity event — the 8-byte-ordered-store discipline of the
   real system collapsed to one store in the line-level crash model). *)
let record_bytes krep v =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 krep;
  Bytes.set_int64_le b 8 (Int64.of_int v);
  Bytes.unsafe_to_string b

let set_record n i krep v = Pobj.write_string n (rec_rel i) (record_bytes krep v)

let copy_record n ~src ~dst =
  Pobj.write_string n (rec_rel dst) (Pobj.read_string n (rec_rel src) 16)

let line_of n i = rec_off n i / 64

(* FastFair's failure-atomic shift (FAST, paper §2.2.1): grow the
   array by duplicating the last record (fence), publish the grown
   count (fence), then shift right-to-left one cache line at a time
   with a fence at each line boundary, and finally install the new
   record (fence).  Every crash cut leaves the old sorted records with
   at most one adjacent duplicate window — no key is ever lost and no
   garbage slot is ever visible; {!recover} drops the duplicates.
   Concurrent readers never see the intermediate states (the node is
   locked; optimistic readers re-validate and restart). *)
let insert_at t n i krep v =
  ignore t;
  let c = count n in
  if i < c then begin
    copy_record n ~src:(c - 1) ~dst:c;
    Pobj.persist n (rec_rel c) 16;
    set_count n (c + 1);
    Pobj.persist n (off_count) 2;
    for j = c - 1 downto i + 1 do
      copy_record n ~src:(j - 1) ~dst:j;
      if line_of n (j - 1) <> line_of n j then begin
        Pobj.clwb n (rec_rel j);
        Pobj.fence n
      end
    done;
    set_record n i krep v;
    Pobj.clwb n (rec_rel i);
    Pobj.fence n
  end
  else begin
    (* append: record durable before the count makes it visible *)
    set_record n i krep v;
    Pobj.persist n (rec_rel i) 16;
    set_count n (c + 1);
    Pobj.persist n (off_count) 2
  end

(* Mirror image of [insert_at]: shift left-to-right with per-line
   fences (transient adjacent duplicate, never a lost or garbage
   record), then shrink the count. *)
let remove_at t n i =
  ignore t;
  let c = count n in
  for j = i to c - 2 do
    copy_record n ~src:(j + 1) ~dst:j;
    if line_of n (j + 1) <> line_of n j then begin
      Pobj.clwb n (rec_rel j);
      Pobj.fence n
    end
  done;
  if c - 1 > i then begin
    Pobj.clwb n (rec_rel (c - 2));
    Pobj.fence n
  end;
  set_count n (c - 1);
  Pobj.persist n (off_count) 2

(* Split a locked, full node; returns (separator krep, new right node
   pointer).  The new node is persisted before being linked (logless
   ordering). *)
let split_node t n =
  let c = count n in
  let mid = c / 2 in
  let right, rptr = alloc_node t ~leaf:(is_leaf n) in
  let move_from = if is_leaf n then mid else mid + 1 in
  let sep = krep_at n mid in
  let moved = c - move_from in
  for j = 0 to moved - 1 do
    Pobj.write_i64 right (rec_rel j) (krep_at n (move_from + j));
    Pobj.write_int right (rec_rel j + 8) (val_at n (move_from + j))
  done;
  set_count right moved;
  if not (is_leaf n) then
    Pobj.write_int right (off_leftmost) (val_at n mid);
  Pobj.write_int right (off_next) (next n);
  Pobj.persist right 0 node_size;
  Pobj.write_int n (off_next) rptr;
  Pobj.persist n (off_next) 8;
  set_count n mid;
  Pobj.persist n (off_count) 2;
  (sep, rptr)

(* Write descent with lock coupling (as in the real FastFair): each
   node is locked on entry; once a node is "safe" (not full, so no
   split can propagate above it) the whole ancestor chain is released,
   keeping writers to disjoint subtrees parallel.  Splits happen with
   the affected ancestors still locked — the synchronous SMO in the
   critical path that the paper measures (GC2).

   [descend] owns [ancestors_release]; contract on return:
   - [None]: the node's lock and all ancestors' locks are released.
   - [Some (sep, right)]: the node split; its own lock is released but
     the (full) parent chain is still locked so the caller can absorb
     the separator.  For the root, the root's lock is retained and
     returned so the caller can install a new root. *)
let insert t key value =
  let probe_key = key in
  let krep = lazy (krep_of_key t key) in
  let probe_rep = if t.string_keys then 0L else Lazy.force krep in
  (* compare a probe against a separator krep *)
  let cmp_sep sep =
    if t.string_keys then begin
      let ptr = Int64.to_int sep in
      let o = Pobj.make (Pmalloc.Registry.resolve ptr) (Pptr.off ptr) in
      let len = Pobj.read_u8 o 0 in
      Pobj.compare_string o 1 len probe_key
    end
    else Int64.unsigned_compare sep probe_rep
  in
  (* compare two kreps *)
  let cmp_krep a b =
    if t.string_keys then begin
      let ka = key_of_krep t a in
      let pb = Int64.to_int b in
      let o = Pobj.make (Pmalloc.Registry.resolve pb) (Pptr.off pb) in
      let len = Pobj.read_u8 o 0 in
      -Pobj.compare_string o 1 len ka
    end
    else Int64.unsigned_compare a b
  in
  let sep_lower_bound n sep =
    let c = count n in
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cmp_krep (krep_at n mid) sep < 0 then go (mid + 1) hi else go lo mid
    in
    go 0 c
  in
  with_retry @@ fun () ->
  let rec descend ~at_root ~ancestors_release n =
    let h = lockh n in
    let wv = Vlock.acquire h ~gen in
    let release () = Vlock.release h ~gen ~version:wv in
    if at_root && not (confirm_root t n) then begin
      release ();
      ancestors_release ();
      raise Restart
    end;
    let safe = count n < cap in
    let anc =
      if safe then begin
        ancestors_release ();
        fun () -> ()
      end
      else ancestors_release
    in
    if is_leaf n then begin
      let i = lower_bound t n ~probe_rep ~probe_key in
      if i < count n && cmp_slot t n i ~probe_rep ~probe_key = 0 then begin
        (* upsert: 8B atomic value store *)
        Pobj.write_int n (rec_rel i + 8) value;
        Pobj.persist n (rec_rel i + 8) 8;
        release ();
        anc ();
        None
      end
      else if safe then begin
        insert_at t n i (Lazy.force krep) value;
        release ();
        None
      end
      else begin
        let sep, rptr = split_node t n in
        (* place the pending pair in the correct half *)
        let target = if cmp_sep sep < 0 then node_of rptr else n in
        let same = target.off = n.off && target.pool == n.pool in
        let twv = if same then wv else Vlock.acquire (lockh target) ~gen in
        let i = lower_bound t target ~probe_rep ~probe_key in
        insert_at t target i (Lazy.force krep) value;
        if not same then Vlock.release (lockh target) ~gen ~version:twv;
        if at_root then Some (sep, rptr, release)
        else begin
          release ();
          Some (sep, rptr, anc)
        end
      end
    end
    else begin
      let child = child_for t n ~probe_rep ~probe_key in
      let anc_for_child () =
        release ();
        anc ()
      in
      match descend ~at_root:false ~ancestors_release:anc_for_child (node_of child) with
      | None -> None (* self + ancestors released by the child *)
      | Some (sep, rptr, _child_anc) ->
          (* we are still locked (the child was full, so we were kept) *)
          if count n < cap then begin
            insert_at t n (sep_lower_bound n sep) sep rptr;
            release ();
            anc ();
            None
          end
          else begin
            let nsep, nright = split_node t n in
            let target = if cmp_krep sep nsep >= 0 then node_of nright else n in
            let same = target.off = n.off && target.pool == n.pool in
            let twv = if same then wv else Vlock.acquire (lockh target) ~gen in
            insert_at t target (sep_lower_bound target sep) sep rptr;
            if not same then Vlock.release (lockh target) ~gen ~version:twv;
            if at_root then Some (nsep, nright, release)
            else begin
              release ();
              Some (nsep, nright, anc)
            end
          end
    end
  in
  let r = root t in
  match descend ~at_root:true ~ancestors_release:(fun () -> ()) r with
  | None -> ()
  | Some (sep, rptr, release_root) ->
      (* root split: build a new root.  The old root's lock is still
         held, so nobody else can replace it concurrently. *)
      let nr, nrptr = alloc_node t ~leaf:false in
      Pobj.write_int nr (off_leftmost) (to_ptr r);
      Pobj.write_i64 nr (rec_rel 0) sep;
      Pobj.write_int nr (rec_rel 0 + 8) rptr;
      set_count nr 1;
      Pobj.persist nr 0 node_size;
      let mo = Pobj.make t.meta 0 in
      Pobj.write_int mo 0 nrptr;
      Pobj.persist mo 0 8;
      release_root ()


let update t key value =
  let probe_rep = if t.string_keys then 0L else krep_of_key t key in
  with_retry @@ fun () ->
  let rec descend ~at_root n =
    if is_leaf n then begin
      let h = lockh n in
      let wv = Vlock.acquire h ~gen in
      if at_root && not (confirm_root t n) then begin
        Vlock.release h ~gen ~version:wv;
        raise Restart
      end;
      let i = lower_bound t n ~probe_rep ~probe_key:key in
      let found = i < count n && cmp_slot t n i ~probe_rep ~probe_key:key = 0 in
      if found then begin
        Pobj.write_int n (rec_rel i + 8) value;
        Pobj.persist n (rec_rel i + 8) 8
      end;
      Vlock.release h ~gen ~version:wv;
      found
    end
    else begin
      let h = lockh n in
      let v = Vlock.begin_read h ~gen in
      if at_root && not (confirm_root t n) then raise Restart;
      let child = child_for t n ~probe_rep ~probe_key:key in
      check h v;
      descend ~at_root:false (node_of child)
    end
  in
  descend ~at_root:true (root t)

let delete t key =
  let probe_rep = if t.string_keys then 0L else krep_of_key t key in
  with_retry @@ fun () ->
  let rec descend ~at_root n =
    if is_leaf n then begin
      let h = lockh n in
      let wv = Vlock.acquire h ~gen in
      if at_root && not (confirm_root t n) then begin
        Vlock.release h ~gen ~version:wv;
        raise Restart
      end;
      let i = lower_bound t n ~probe_rep ~probe_key:key in
      let found = i < count n && cmp_slot t n i ~probe_rep ~probe_key:key = 0 in
      if found then remove_at t n i;
      Vlock.release h ~gen ~version:wv;
      found
    end
    else begin
      let h = lockh n in
      let v = Vlock.begin_read h ~gen in
      if at_root && not (confirm_root t n) then raise Restart;
      let child = child_for t n ~probe_rep ~probe_key:key in
      check h v;
      descend ~at_root:false (node_of child)
    end
  in
  descend ~at_root:true (root t)

(* Scan: locate the first leaf, then follow the sorted leaf chain —
   FastFair's strength (sequential NVM reads, GA5). *)
let scan t key n_wanted =
  let probe_rep = if t.string_keys then 0L else krep_of_key t key in
  with_retry @@ fun () ->
  let rec find_leaf ~at_root n =
    let h = lockh n in
    let v = Vlock.begin_read h ~gen in
    if at_root && not (confirm_root t n) then raise Restart;
    if is_leaf n then (n, h, v)
    else begin
      let child = child_for t n ~probe_rep ~probe_key:key in
      check h v;
      find_leaf ~at_root:false (node_of child)
    end
  in
  let acc = ref [] and taken = ref 0 in
  let rec walk n h v ~first =
    let c = count n in
    let start =
      if first then lower_bound t n ~probe_rep ~probe_key:key else 0
    in
    let batch = ref [] in
    let i = ref start in
    while !i < c && !taken + List.length !batch < n_wanted do
      batch := (key_of_krep t (krep_at n !i), val_at n !i) :: !batch;
      incr i
    done;
    let nxt = next n in
    check h v;
    (* [batch] is newest-first; keep [acc] globally newest-first *)
    acc := !batch @ !acc;
    taken := !taken + List.length !batch;
    if !taken < n_wanted && not (Pptr.is_null nxt) then begin
      let n' = node_of nxt in
      let h' = lockh n' in
      let v' = Vlock.begin_read h' ~gen in
      walk n' h' v' ~first:false
    end
  in
  let leaf, h, v = find_leaf ~at_root:true (root t) in
  walk leaf h v ~first:true;
  List.rev !acc

(* ---------- recovery ---------- *)

(* Post-crash recovery, logless as in the paper: replay the allocator
   log, then repair the leaf chain in one pass — re-initialise every
   leaf lock (a crash image can capture a held lock word), drop the
   duplicate records an interrupted FAST shift leaves behind and the
   cross-node duplicate window of a split caught between sibling-link
   and count-truncate (all duplicates are exact copies of a record
   that is kept, so nothing acknowledged is lost) — and finally
   rebuild the internal layer from the repaired leaf chain, installing
   a fresh root.  Old internal nodes are abandoned; an interrupted SMO
   that had not yet inserted its parent separator is thereby completed
   rather than unwound. *)
let recover t =
  Heap.recover t.heap;
  let cmp_krep a b =
    if t.string_keys then Key.compare (key_of_krep t a) (key_of_krep t b)
    else Int64.unsigned_compare a b
  in
  let rec leftmost_leaf n =
    if is_leaf n then n else leftmost_leaf (node_of (leftmost n))
  in
  let first = leftmost_leaf (root t) in
  (* Pass 1: leaf repair.  Keep records in strictly increasing global
     key order; rewrite nodes that shrank. *)
  let leaves = ref [] in
  let last = ref None in
  let rec walk n =
    Vlock.init (lockh n) ~gen;
    let c = count n in
    let keep = ref [] and kept = ref 0 in
    for i = 0 to c - 1 do
      let kr = krep_at n i in
      let ok = match !last with None -> true | Some l -> cmp_krep kr l > 0 in
      if ok then begin
        keep := (kr, val_at n i) :: !keep;
        incr kept;
        last := Some kr
      end
    done;
    if !kept <> c then begin
      List.iteri (fun i (kr, v) -> set_record n i kr v) (List.rev !keep);
      set_count n !kept;
      Pobj.persist n 0 node_size
    end;
    (match List.rev !keep with
    | (kr0, _) :: _ -> leaves := (kr0, to_ptr n) :: !leaves
    | [] -> ());
    let nxt = next n in
    if not (Pptr.is_null nxt) then walk (node_of nxt)
  in
  walk first;
  (* Pass 2: rebuild the internal layer bottom-up over the non-empty
     leaves; the separator for a child is its subtree's smallest key. *)
  let chunk l =
    let rec go acc cur cnt = function
      | [] -> List.rev (List.rev cur :: acc)
      | x :: tl ->
          if cnt = cap then go (List.rev cur :: acc) [ x ] 1 tl
          else go acc (x :: cur) (cnt + 1) tl
    in
    go [] [] 0 l
  in
  let build_internal group =
    let n, ptr = alloc_node t ~leaf:false in
    (match group with
    | (kr0, p0) :: rest ->
        Pobj.write_int n (off_leftmost) p0;
        List.iteri (fun i (kr, p) -> set_record n i kr p) rest;
        set_count n (List.length rest);
        Pobj.persist n 0 node_size;
        (kr0, ptr)
    | [] -> assert false)
  in
  let rec build level =
    match level with
    | [ (_, ptr) ] -> ptr
    | _ -> build (List.map build_internal (chunk level))
  in
  let new_root =
    match List.rev !leaves with [] -> to_ptr first | level -> build level
  in
  let mo = Pobj.make t.meta 0 in
  Pobj.write_int mo 0 new_root;
  Pobj.persist mo 0 8

(* ---------- invariant check (tests) ---------- *)

let check_invariants t =
  let rec leftmost_leaf n = if is_leaf n then n else leftmost_leaf (node_of (leftmost n)) in
  let rec walk n acc =
    let c = count n in
    let keys = List.init c (fun i -> key_of_krep t (krep_at n i)) in
    let sorted = List.sort Key.compare keys in
    if keys <> sorted then failwith "FastFair: leaf not sorted";
    let acc = acc @ keys in
    let nxt = next n in
    if Pptr.is_null nxt then acc else walk (node_of nxt) acc
  in
  let all = walk (leftmost_leaf (root t)) [] in
  let sorted = List.sort Key.compare all in
  if all <> sorted then failwith "FastFair: leaf chain not globally sorted";
  List.length all

module Index : Index_intf.S with type t = t = struct
  type nonrec t = t

  let name = name

  let insert = insert

  let lookup = lookup

  let update = update

  let delete = delete

  let scan = scan
end
