(* Persistent Multi-word Compare-and-Swap (Wang et al., ICDE'18) —
   the primitive BzTree builds on.

   The cost profile is what matters for the paper's comparison (§6.1:
   "at least 15 flushes per insert" for BzTree): a descriptor is
   written and persisted, each target word is installed and persisted,
   and the descriptor status is finalised and persisted.  We charge
   exactly that traffic against a per-thread descriptor area.

   The three-phase protocol is modelled faithfully enough to be
   crash-recoverable (lib/crashmc exercises it): the descriptor
   persists the target pointers and desired values plus a status word
   that moves undecided -> succeeded -> done, with the succeeded flip
   persisted *before* any target word is installed.  {!recover} rolls
   an interrupted succeeded descriptor forward (reinstalling every
   desired value) and an undecided one back (nothing was installed
   yet), which is exactly the real primitive's recovery rule.

   Atomicity in the simulator: a striped volatile mutex serialises
   PMwCAS executions whose first target word collides; BzTree always
   names the owning node's status word first, so operations on the
   same node serialise while independent nodes proceed in parallel —
   mirroring the real primitive's per-word contention behaviour. *)

module Pool = Nvm.Pool
module Pptr = Pmalloc.Pptr
module Layout = Pobj.Layout

type target = { pool : Pool.t; off : int; expected : int; desired : int }

let stripes = Array.init 1024 (fun _ -> Des.Sync.Mutex.create ())

let stripe_of tgt = (Pool.id tgt.pool * 8191) + (tgt.off lsr 3) land 1023

(* Per-thread descriptor slots in a caller-provided pool: a 16-byte
   header (status word: state in bits 0-3, word count in bits 8+)
   followed by up to 7 (pptr, desired) entry pairs. *)
let max_targets = 7

let dl = Layout.create "pmwcas.descriptor"

let f_status = Layout.word dl "status"

let f_entries = Layout.slots ~at:16 dl "entries" ~stride:16 ~count:max_targets

let descriptor_size = Layout.seal ~size:128 dl

let slots = 256

let region_size = slots * descriptor_size

let st_undecided = 1

let st_succeeded = 2

let desc_off base = base + ((Des.Sched.current_id () land (slots - 1)) * descriptor_size)

type stats = { mutable attempts : int; mutable failures : int }

let stats = { attempts = 0; failures = 0 }

(* [execute ~desc_pool ~desc_base targets] returns [true] iff every
   target still held its expected value; on success all desired values
   are stored and persisted. *)
let execute ~desc_pool ~desc_base targets =
  assert (targets <> [] && List.length targets <= max_targets);
  stats.attempts <- stats.attempts + 1;
  let first = List.hd targets in
  let mutex = stripes.(stripe_of first land 1023) in
  Des.Sync.Mutex.with_lock mutex @@ fun () ->
  (* 1. Write and persist the descriptor. *)
  let d = Pobj.make desc_pool (desc_off desc_base) in
  let n = List.length targets in
  List.iteri
    (fun i tgt ->
      let entry = Layout.slot f_entries i in
      Pobj.write_int d entry (Pptr.make ~pool:(Pool.id tgt.pool) ~off:tgt.off);
      Pobj.write_int d (entry + 8) tgt.desired)
    targets;
  Pobj.set_int d f_status (st_undecided lor (n lsl 8));
  Pobj.persist_obj d dl;
  (* 2. Install phase: validate, persist the success verdict, then
     install each word (a CAS with persist per word in the real
     protocol).  The verdict must be durable before the first install
     so recovery can tell a partial install from a no-op. *)
  let ok =
    List.for_all (fun tgt -> Pobj.read_int (Pobj.make tgt.pool tgt.off) 0 = tgt.expected) targets
  in
  if ok then begin
    Pobj.set_int d f_status (st_succeeded lor (n lsl 8));
    Pobj.persist_field d f_status;
    List.iter
      (fun tgt ->
        let o = Pobj.make tgt.pool tgt.off in
        Pobj.write_int o 0 tgt.desired;
        Pobj.clwb o 0)
      targets;
    Pobj.fence d;
    (* 3. Finalise. *)
    Pobj.set_int d f_status 0;
    Pobj.persist_field d f_status
  end
  else begin
    stats.failures <- stats.failures + 1;
    (* failed attempt still persisted its status flip *)
    Pobj.set_int d f_status 0;
    Pobj.persist_field d f_status
  end;
  ok

(* Post-crash descriptor replay.  Succeeded-but-unfinalised
   descriptors are rolled forward (every desired value reinstalled —
   idempotent: each target word holds either its expected or its
   desired value); undecided ones are dropped (the success verdict is
   durable before any install, so nothing was written yet). *)
let recover ~desc_pool ~desc_base =
  let replayed = ref 0 in
  for slot = 0 to slots - 1 do
    let d = Pobj.make desc_pool (desc_base + (slot * descriptor_size)) in
    let s = Pobj.get_int d f_status in
    if s <> 0 then begin
      if s land 0xF = st_succeeded then begin
        incr replayed;
        let n = s lsr 8 in
        for i = 0 to n - 1 do
          let entry = Layout.slot f_entries i in
          let ptr = Pobj.read_int d entry in
          let desired = Pobj.read_int d (entry + 8) in
          let o = Pobj.make (Pmalloc.Registry.resolve ptr) (Pptr.off ptr) in
          Pobj.write_int o 0 desired;
          Pobj.persist o 0 8
        done
      end;
      Pobj.set_int d f_status 0;
      Pobj.persist_field d f_status
    end
  done;
  !replayed
