(** Persistent multi-word compare-and-swap model (Wang et al.,
    ICDE'18) — the primitive BzTree builds on.

    Charges the real protocol's persistence traffic (descriptor
    persist, per-word install persist, status finalisation) against a
    per-thread descriptor area; see the implementation header for the
    atomicity model. *)

type target = {
  pool : Nvm.Pool.t;
  off : int;  (** 8-byte aligned *)
  expected : int;
  desired : int;
}

type stats = { mutable attempts : int; mutable failures : int }

val stats : stats

(** Bytes of descriptor area needed in the caller's pool. *)
val region_size : int

(** [execute ~desc_pool ~desc_base targets] returns [true] iff every
    target held its expected value; on success all desired values are
    stored and persisted.  [targets] must be non-empty; operations
    whose first target words collide serialise. *)
val execute : desc_pool:Nvm.Pool.t -> desc_base:int -> target list -> bool

(** Post-crash descriptor replay: rolls succeeded-but-unfinalised
    descriptors forward (reinstalls every desired value) and undecided
    ones back.  Returns the number replayed. *)
val recover : desc_pool:Nvm.Pool.t -> desc_base:int -> int
