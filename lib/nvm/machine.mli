(** The simulated NVM machine: NUMA topology, CPU cache model and the
    clwb/sfence staging pipeline shared by all pools.

    Persistence model (ADR, paper §2.1): CPU caches are volatile.  A
    store only reaches the persistent media image after [clwb] stages
    a snapshot of its cache line {e and} a subsequent [fence] by the
    same thread completes.  On {!crash}, everything else is lost
    ([Strict]) or survives line-by-line with some probability
    ([Flaky]), which models arbitrary cache evictions and in-flight
    flushes. *)

type t

(** [Strict]: only fenced flushes survive a crash — catches missing
    [clwb]/[fence].  [Flaky (p, rng)]: additionally every dirty line
    independently survives with probability [p] — models cache
    evictions and un-fenced flushes, catching ordering bugs. *)
type crash_mode = Strict | Flaky of float * Des.Rng.t

val create :
  ?profile:Config.profile -> ?protocol:Config.protocol -> numa_count:int -> unit -> t

val profile : t -> Config.profile

val protocol : t -> Config.protocol

val numa_count : t -> int

val device : t -> int -> Device.t

(** Machine-level counters (flushes, fences, CPU cache).  Device
    traffic lives in each device's {!Device.stats}. *)
val stats : t -> Stats.t

(** Sum of machine-level and all device counters. *)
val total_stats : t -> Stats.t

(** Current simulated time (0 outside a simulation). *)
val now : t -> float

(** {2 Used by {!Pool}} *)

val fresh_pool_id : t -> int

(** [cache_access t gline] models a CPU cache access to global line
    [gline]; returns [true] on a hit.  Misses install the tag. *)
val cache_access : t -> int -> bool

val cache_invalidate : t -> int -> unit

type staged = {
  pool_id : int;
  dev : Device.t;
  xpline : int;  (** global XPLine id, for write-combining *)
  apply : unit -> unit;  (** persist the snapshot into the media image *)
}

(** Queue a flushed-line snapshot on the calling thread's staging
    list; it persists at that thread's next [fence]. *)
val stage : t -> staged -> unit

(** Register a callback run by {!crash}. *)
val on_crash : t -> (crash_mode -> unit) -> unit

(** {2 Persist tracing (crash-state model checking)}

    When a tracer is installed, every program-visible persistence
    event is reported with enough data to replay the ADR state
    machine offline: stores carry the post-store content of the whole
    64B line, [clwb]s the staged snapshot, fences the staging thread.
    [lib/crashmc] enumerates, from such a trace, every crash image
    consistent with ADR semantics (fenced lines must survive; dirty or
    flushed-but-unfenced lines each survive with any of their
    snapshots). *)

type trace_event =
  | Ev_store of { pool : int; line : int; data : string }
      (** post-store content of the full 64B line *)
  | Ev_clwb of { tid : int; pool : int; line : int; data : string }
      (** line snapshot staged by thread [tid]; durable at its next fence *)
  | Ev_fence of { tid : int }
      (** applies [tid]'s staged snapshots to the media *)
  | Ev_drain of { pool : int; line : int; data : string }
      (** eADR background drain: durable immediately *)

val set_tracer : t -> (trace_event -> unit) option -> unit

val tracer : t -> (trace_event -> unit) option

(** {2 Persist observation (lightweight, for the pobj sanitizer)}

    A second, independent hook: unlike the crashmc tracer it carries
    no line data (cheap enough to leave on during benchmarks) and
    stores carry the storing thread.  [Pe_clwb] is emitted for every
    {e effective} clwb — including ones elided by flush tracking
    (whose persistence obligation is already met) — but {e not} for
    clwbs dropped by {!set_flush_fault}, which model a missing call.
    eADR machines emit no [Pe_fence] (there is nothing to order). *)

type persist_event =
  | Pe_store of { tid : int; pool : int; line : int }
  | Pe_clwb of { tid : int; pool : int; line : int }
  | Pe_fence of { tid : int }

val set_persist_observer : t -> (persist_event -> unit) option -> unit

val persist_observer : t -> (persist_event -> unit) option

(** A type-cycle-free handle on a pool (Pool depends on Machine), used
    by crashmc to snapshot and re-materialize media images. *)
type pool_view = {
  pv_id : int;
  pv_name : string;
  pv_capacity : int;
  pv_volatile : bool;
  pv_media : unit -> Bytes.t;  (** copy of the current media image *)
  pv_restore : Bytes.t -> unit;
      (** install a media image; cache := media, dirty bits cleared.
          Volatile pools ignore the argument and zero their cache. *)
}

val register_pool_view : t -> pool_view -> unit

(** All pools of this machine, in creation order. *)
val pool_views : t -> pool_view list

(** {2 Fault injection (checker self-tests)} *)

(** [set_flush_fault t (Some k)] silently drops the [k]-th (0-based)
    subsequent [clwb] on this machine — a missing-flush mutation used
    to prove the crash checker catches persistence bugs.  [None]
    disables and resets the counter. *)
val set_flush_fault : t -> int option -> unit

(** Consumes one clwb tick; [true] iff this clwb must be dropped.
    (Called by {!Pool.clwb}.) *)
val flush_faulted : t -> bool

(** [true] once the armed fault has actually dropped a clwb — i.e. the
    mutation was really injected (enough clwbs happened). *)
val flush_fault_fired : t -> bool

(** {2 Flush elision (FliT-style tracking)}

    {!Pool.clwb} always detects redundant flushes — the line is already
    clean on media, or the calling thread staged it and has not stored
    to it since — and counts them in {!Stats}[.flushes_elided].  With
    elision {e off} (default) the redundant clwb is still executed in
    full, so timings are bit-identical to a tracking-free machine and
    the counter reports the elision {e opportunity}.  With elision
    {e on} the redundant clwb skips staging and the media write
    entirely (keeping only its CPU cost and FH4 cache invalidation),
    which changes fence batching and therefore the whole simulated
    schedule. *)

val set_flush_elision : t -> bool -> unit

val flush_elision : t -> bool

(** {2 Observability} *)

(** [set_wait_observer t (Some f)] has every in-simulation [fence]
    report its stall ([f seconds], after the delay completes) — the
    hook behind the observability layer's [flush_wait] phase.  nvm
    stays independent of lib/obs; the recorder installs itself here. *)
val set_wait_observer : t -> (float -> unit) option -> unit

(** {2 Program-visible operations} *)

(** Store fence: drains the calling thread's staged flushes through
    the write-combining cost model and applies them to the media
    images.  Blocks (simulated) until the media writes complete. *)
val fence : t -> unit

(** Power-failure / SIGKILL: volatile state (CPU caches, staged
    flushes, device buffers, DRAM pools) is lost; each pool's cache
    image is reset to its media image per [crash_mode]. *)
val crash : t -> crash_mode -> unit
