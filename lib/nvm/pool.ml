let line_size = 64

type t = {
  id : int;
  name : string;
  machine : Machine.t;
  dev : Device.t;
  numa : int;
  volatile : bool;
  cache : Bytes.t;
  media : Bytes.t; (* empty for volatile pools *)
  dirty : Bytes.t; (* bitset, one bit per 64B line *)
  staged_by : (int, int) Hashtbl.t;
      (* line -> thread that staged it with no store since; that
         thread's pending fence will persist the current content, so
         its own re-flushes of the line can be elided (FliT) *)
  capacity : int;
}

let round_up x align = (x + align - 1) / align * align

let create machine ?(volatile = false) ~name ~numa ~capacity () =
  let capacity = round_up (max capacity 256) 256 in
  let lines = capacity / line_size in
  let pool =
    {
      id = Machine.fresh_pool_id machine;
      name;
      machine;
      dev = Machine.device machine numa;
      numa;
      volatile;
      cache = Bytes.make capacity '\000';
      media = (if volatile then Bytes.empty else Bytes.make capacity '\000');
      dirty = Bytes.make ((lines + 7) / 8) '\000';
      staged_by = Hashtbl.create 64;
      capacity;
    }
  in
  Machine.register_pool_view machine
    {
      Machine.pv_id = pool.id;
      pv_name = name;
      pv_capacity = capacity;
      pv_volatile = volatile;
      pv_media = (fun () -> Bytes.copy pool.media);
      pv_restore =
        (fun img ->
          if volatile then Bytes.fill pool.cache 0 capacity '\000'
          else begin
            if Bytes.length img <> capacity then
              invalid_arg
                (Printf.sprintf "Pool %s: restore image %d bytes, capacity %d"
                   name (Bytes.length img) capacity);
            Bytes.blit img 0 pool.media 0 capacity;
            Bytes.blit img 0 pool.cache 0 capacity
          end;
          Hashtbl.reset pool.staged_by;
          Bytes.fill pool.dirty 0 (Bytes.length pool.dirty) '\000');
    };
  let on_crash mode =
    if volatile then Bytes.fill pool.cache 0 capacity '\000'
    else begin
      (match mode with
      | Machine.Strict -> ()
      | Machine.Flaky (p, rng) ->
          (* Un-fenced dirty lines may have been evicted to the media
             by the cache at any point: persist each with prob. p. *)
          for line = 0 to lines - 1 do
            let byte = Bytes.get_uint8 pool.dirty (line lsr 3) in
            if byte land (1 lsl (line land 7)) <> 0 && Des.Rng.float rng < p then
              Bytes.blit pool.cache (line * line_size) pool.media (line * line_size)
                line_size
          done);
      Bytes.blit pool.media 0 pool.cache 0 capacity
    end;
    Hashtbl.reset pool.staged_by;
    Bytes.fill pool.dirty 0 (Bytes.length pool.dirty) '\000'
  in
  Machine.on_crash machine on_crash;
  pool

let id t = t.id

let name t = t.name

let numa t = t.numa

let capacity t = t.capacity

let is_volatile t = t.volatile

let machine t = t.machine

(* Global line / XPLine ids: pool id in the high bits keeps pools
   disjoint while keeping in-pool adjacency (for the prefetcher). *)
let gline t off = (t.id lsl 40) lor (off lsr 6)

let mark_dirty t off =
  let line = off lsr 6 in
  let idx = line lsr 3 in
  let bit = 1 lsl (line land 7) in
  let byte = Bytes.get_uint8 t.dirty idx in
  if byte land bit = 0 then Bytes.set_uint8 t.dirty idx (byte lor bit)

let clear_dirty t line =
  let idx = line lsr 3 in
  let bit = 1 lsl (line land 7) in
  let byte = Bytes.get_uint8 t.dirty idx in
  if byte land bit <> 0 then Bytes.set_uint8 t.dirty idx (byte land lnot bit)

let line_dirty t line =
  Bytes.get_uint8 t.dirty (line lsr 3) land (1 lsl (line land 7)) <> 0

(* Charge the cost of touching the line containing [off].  Writes take
   the same miss path as reads (read-for-ownership). *)
let touch_line t off =
  let profile = Machine.profile t.machine in
  let g = gline t off in
  if Machine.cache_access t.machine g then
    Des.Sched.charge profile.Config.cache_hit_cost
  else if t.volatile then Des.Sched.charge profile.Config.dram_latency
  else if Des.Sched.running () then begin
    let start = Machine.now t.machine in
    let completion =
      Device.read t.dev ~now:start ~xpline:(g lsr 2)
        ~from_numa:(Des.Sched.current_numa ())
    in
    Des.Sched.delay (completion -. start)
  end
  else
    ignore (Device.read t.dev ~now:0.0 ~xpline:(g lsr 2) ~from_numa:t.numa)

(* Logical (program-requested) byte accounting feeds the FH1/FH2
   amplification rates: media traffic over logical traffic.  Volatile
   pools are excluded — amplification is an NVM phenomenon. *)
let touch_range_k t off len ~write =
  if not (off >= 0 && len >= 0 && off + len <= t.capacity) then
    invalid_arg
      (Printf.sprintf "Pool %s: access [%d, %d) outside capacity %d" t.name off
         (off + len) t.capacity);
  if (not t.volatile) && len > 0 then begin
    let s = Machine.stats t.machine in
    if write then s.Stats.logical_write_bytes <- s.Stats.logical_write_bytes + len
    else s.Stats.logical_read_bytes <- s.Stats.logical_read_bytes + len
  end;
  let first = off lsr 6 and last = (off + len - 1) lsr 6 in
  for line = first to last do
    touch_line t (line lsl 6)
  done

let touch_range t off len = touch_range_k t off len ~write:false

let touch_range_write t off len =
  touch_range_k t off len ~write:true;
  let first = off lsr 6 and last = (off + len - 1) lsr 6 in
  for line = first to last do
    mark_dirty t (line lsl 6);
    (* A (possible) store invalidates the staged-snapshot elision. *)
    Hashtbl.remove t.staged_by line
  done

(* Report the post-store content of every line under [off, off+len) to
   the machine's tracer (no-op unless crashmc is recording). *)
let trace_store t off len =
  match Machine.tracer t.machine with
  | None -> ()
  | Some emit ->
      if not t.volatile && len > 0 then begin
        let first = off lsr 6 and last = (off + len - 1) lsr 6 in
        for line = first to last do
          emit
            (Machine.Ev_store
               {
                 pool = t.id;
                 line;
                 data = Bytes.sub_string t.cache (line * line_size) line_size;
               })
        done
      end

(* Report stores to the (cheap) persist observer — the hook behind the
   pobj persist-order sanitizer. *)
let observe_store t off len =
  match Machine.persist_observer t.machine with
  | None -> ()
  | Some emit ->
      if (not t.volatile) && len > 0 then begin
        let tid = Des.Sched.current_id () in
        let first = off lsr 6 and last = (off + len - 1) lsr 6 in
        for line = first to last do
          emit (Machine.Pe_store { tid; pool = t.id; line })
        done
      end

let record_store t off len =
  trace_store t off len;
  observe_store t off len

let read_u8 t off =
  touch_range t off 1;
  Bytes.get_uint8 t.cache off

let write_u8 t off v =
  touch_range_write t off 1;
  Bytes.set_uint8 t.cache off v;
  record_store t off 1

let read_u16 t off =
  touch_range t off 2;
  Bytes.get_uint16_le t.cache off

let write_u16 t off v =
  touch_range_write t off 2;
  Bytes.set_uint16_le t.cache off v;
  record_store t off 2

let read_u32 t off =
  touch_range t off 4;
  Int32.to_int (Bytes.get_int32_le t.cache off) land 0xFFFFFFFF

let write_u32 t off v =
  touch_range_write t off 4;
  Bytes.set_int32_le t.cache off (Int32.of_int v);
  record_store t off 4

let read_int64 t off =
  if off land 7 <> 0 then
    invalid_arg (Printf.sprintf "Pool %s: unaligned 8B read at %d" t.name off);
  touch_range t off 8;
  Bytes.get_int64_le t.cache off

let write_int64 t off v =
  if off land 7 <> 0 then
    invalid_arg (Printf.sprintf "Pool %s: unaligned 8B write at %d" t.name off);
  touch_range_write t off 8;
  Bytes.set_int64_le t.cache off v;
  record_store t off 8

let read_int t off = Int64.to_int (read_int64 t off)

let write_int t off v = write_int64 t off (Int64.of_int v)

let read_string t off len =
  touch_range t off len;
  Bytes.sub_string t.cache off len

let write_string t off s =
  let len = String.length s in
  if len > 0 then begin
    touch_range_write t off len;
    Bytes.blit_string s 0 t.cache off len;
    record_store t off len
  end

let blit_to_bytes t off buf pos len =
  touch_range t off len;
  Bytes.blit t.cache off buf pos len

let fill_zero t off len =
  if len > 0 then begin
    touch_range_write t off len;
    Bytes.fill t.cache off len '\000';
    record_store t off len
  end

let compare_string t off len s =
  touch_range t off len;
  let slen = String.length s in
  let rec go i =
    if i >= len || i >= slen then compare len slen
    else
      let c = Char.compare (Bytes.unsafe_get t.cache (off + i)) (String.unsafe_get s i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let lines_equal t line =
  let base = line * line_size in
  let rec go i =
    i >= line_size
    || Bytes.unsafe_get t.cache (base + i) = Bytes.unsafe_get t.media (base + i)
       && go (i + 1)
  in
  go 0

(* eADR: the store itself is durable; the dirty line drains to the
   media in the background, consuming write bandwidth but never
   blocking the program. *)
let eadr_drain t off =
  let g = gline t off in
  if Des.Sched.running () then begin
    let start = Machine.now t.machine in
    ignore
      (Device.write t.dev ~now:start ~xpline:(g lsr 2) ~bytes:64
         ~from_numa:(Des.Sched.current_numa ()))
  end
  else ignore (Device.write t.dev ~now:0.0 ~xpline:(g lsr 2) ~bytes:64 ~from_numa:t.numa);
  let line = off lsr 6 in
  Bytes.blit t.cache (line * line_size) t.media (line * line_size) line_size;
  clear_dirty t line;
  match Machine.tracer t.machine with
  | Some emit ->
      emit
        (Machine.Ev_drain
           {
             pool = t.id;
             line;
             data = Bytes.sub_string t.media (line * line_size) line_size;
           })
  | None -> ()

let observe_clwb t line =
  match Machine.persist_observer t.machine with
  | Some emit ->
      emit (Machine.Pe_clwb { tid = Des.Sched.current_id (); pool = t.id; line })
  | None -> ()

(* FliT-style flush tracking: a clwb is redundant when the line is
   already clean on media (cache == media), or when the calling thread
   itself staged the line and has not stored to it since (its pending
   fence persists exactly the current content).  A line staged by a
   {e different} thread is not redundant: that thread's fence may
   never come.  Redundant clwbs are always counted in
   [Stats.flushes_elided]; whether they are actually {e elided} —
   skipping staging, write-queue occupancy and the media write, which
   perturbs fence batching and hence the whole simulated schedule — is
   the machine's [flush_elision] switch (off by default, keeping the
   schedule bit-identical to a tracking-free build).  Elided clwbs
   still satisfy the persistence obligation, so they are reported to
   the persist observer; faulted (dropped) clwbs are not — they model
   a missing call.  The fault counter ticks only for executed clwbs so
   mutation indices keep targeting real flushes. *)
let clwb t off =
  if (Machine.profile t.machine).Config.eadr then begin
    if not t.volatile then begin
      let line = off lsr 6 in
      let redundant = lines_equal t line in
      if redundant then begin
        let stats = Machine.stats t.machine in
        stats.Stats.flushes_elided <- stats.Stats.flushes_elided + 1
      end;
      if redundant && Machine.flush_elision t.machine then clear_dirty t line
      else eadr_drain t off;
      observe_clwb t line
    end
  end
  else if not t.volatile then begin
    let line = off lsr 6 in
    let redundant =
      lines_equal t line
      || Hashtbl.find_opt t.staged_by line = Some (Des.Sched.current_id ())
    in
    if redundant && Machine.flush_elision t.machine then begin
      let stats = Machine.stats t.machine in
      stats.Stats.flushes_elided <- stats.Stats.flushes_elided + 1;
      if lines_equal t line then clear_dirty t line;
      (* The saving is the write-path work.  The instruction still
         issues (the tracking check costs a few ns, folded into the
         same charge) and still invalidates the line (FH4: clwb
         invalidates whether or not the line was dirty), so the CPU
         and cache-side timing stays comparable to an unelided run. *)
      Des.Sched.charge (Machine.profile t.machine).Config.clwb_cpu_cost;
      observe_clwb t line;
      Machine.cache_invalidate t.machine (gline t off)
    end
    else if not (Machine.flush_faulted t.machine) then begin
      let stats0 = Machine.stats t.machine in
      if redundant then
        stats0.Stats.flushes_elided <- stats0.Stats.flushes_elided + 1;
      let stats = Machine.stats t.machine in
      stats.Stats.flushes <- stats.Stats.flushes + 1;
      let profile = Machine.profile t.machine in
      Des.Sched.charge profile.Config.clwb_cpu_cost;
      let snapshot = Bytes.sub t.cache (line * line_size) line_size in
      let apply () =
        Bytes.blit snapshot 0 t.media (line * line_size) line_size;
        if lines_equal t line then clear_dirty t line
      in
      let g = gline t off in
      Machine.stage t.machine
        { Machine.pool_id = t.id; dev = t.dev; xpline = g lsr 2; apply };
      Hashtbl.replace t.staged_by line (Des.Sched.current_id ());
      (match Machine.tracer t.machine with
      | Some emit ->
          emit
            (Machine.Ev_clwb
               {
                 tid = Des.Sched.current_id ();
                 pool = t.id;
                 line;
                 data = Bytes.to_string snapshot;
               })
      | None -> ());
      observe_clwb t line;
      (* Current-generation clwb invalidates the line (FH4). *)
      Machine.cache_invalidate t.machine g
    end
  end

let flush_range t off len =
  if not t.volatile && len > 0 then begin
    let first = off lsr 6 and last = (off + len - 1) lsr 6 in
    for line = first to last do
      clwb t (line lsl 6)
    done
  end

let fence t = Machine.fence t.machine

let persist t off len =
  flush_range t off len;
  fence t

let media_read_int t off =
  assert (not t.volatile);
  Int64.to_int (Bytes.get_int64_le t.media off)

let line_is_dirty t off = (not t.volatile) && line_dirty t (off lsr 6)

let cas_int t off ~expected v =
  assert (off land 7 = 0);
  touch_range_write t off 8;
  let cur = Int64.to_int (Bytes.get_int64_le t.cache off) in
  if cur = expected then begin
    Bytes.set_int64_le t.cache off (Int64.of_int v);
    record_store t off 8;
    true
  end
  else false
