type t = {
  mutable media_reads : int;
  mutable media_read_bytes : int;
  mutable media_writes : int;
  mutable media_write_bytes : int;
  mutable rmw_reads : int;
  mutable rmw_read_bytes : int;
  mutable dir_writes : int;
  mutable dir_write_bytes : int;
  mutable buffer_hits : int;
  mutable prefetches : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable remote_accesses : int;
  mutable flushes : int;
  mutable flushes_elided : int;
  mutable fences : int;
  mutable logical_read_bytes : int;
  mutable logical_write_bytes : int;
}

let create () =
  {
    media_reads = 0;
    media_read_bytes = 0;
    media_writes = 0;
    media_write_bytes = 0;
    rmw_reads = 0;
    rmw_read_bytes = 0;
    dir_writes = 0;
    dir_write_bytes = 0;
    buffer_hits = 0;
    prefetches = 0;
    cache_hits = 0;
    cache_misses = 0;
    remote_accesses = 0;
    flushes = 0;
    flushes_elided = 0;
    fences = 0;
    logical_read_bytes = 0;
    logical_write_bytes = 0;
  }

let reset t =
  t.media_reads <- 0;
  t.media_read_bytes <- 0;
  t.media_writes <- 0;
  t.media_write_bytes <- 0;
  t.rmw_reads <- 0;
  t.rmw_read_bytes <- 0;
  t.dir_writes <- 0;
  t.dir_write_bytes <- 0;
  t.buffer_hits <- 0;
  t.prefetches <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.remote_accesses <- 0;
  t.flushes <- 0;
  t.flushes_elided <- 0;
  t.fences <- 0;
  t.logical_read_bytes <- 0;
  t.logical_write_bytes <- 0

let snapshot t =
  {
    media_reads = t.media_reads;
    media_read_bytes = t.media_read_bytes;
    media_writes = t.media_writes;
    media_write_bytes = t.media_write_bytes;
    rmw_reads = t.rmw_reads;
    rmw_read_bytes = t.rmw_read_bytes;
    dir_writes = t.dir_writes;
    dir_write_bytes = t.dir_write_bytes;
    buffer_hits = t.buffer_hits;
    prefetches = t.prefetches;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    remote_accesses = t.remote_accesses;
    flushes = t.flushes;
    flushes_elided = t.flushes_elided;
    fences = t.fences;
    logical_read_bytes = t.logical_read_bytes;
    logical_write_bytes = t.logical_write_bytes;
  }

let diff a b =
  {
    media_reads = a.media_reads - b.media_reads;
    media_read_bytes = a.media_read_bytes - b.media_read_bytes;
    media_writes = a.media_writes - b.media_writes;
    media_write_bytes = a.media_write_bytes - b.media_write_bytes;
    rmw_reads = a.rmw_reads - b.rmw_reads;
    rmw_read_bytes = a.rmw_read_bytes - b.rmw_read_bytes;
    dir_writes = a.dir_writes - b.dir_writes;
    dir_write_bytes = a.dir_write_bytes - b.dir_write_bytes;
    buffer_hits = a.buffer_hits - b.buffer_hits;
    prefetches = a.prefetches - b.prefetches;
    cache_hits = a.cache_hits - b.cache_hits;
    cache_misses = a.cache_misses - b.cache_misses;
    remote_accesses = a.remote_accesses - b.remote_accesses;
    flushes = a.flushes - b.flushes;
    flushes_elided = a.flushes_elided - b.flushes_elided;
    fences = a.fences - b.fences;
    logical_read_bytes = a.logical_read_bytes - b.logical_read_bytes;
    logical_write_bytes = a.logical_write_bytes - b.logical_write_bytes;
  }

let add acc x =
  acc.media_reads <- acc.media_reads + x.media_reads;
  acc.media_read_bytes <- acc.media_read_bytes + x.media_read_bytes;
  acc.media_writes <- acc.media_writes + x.media_writes;
  acc.media_write_bytes <- acc.media_write_bytes + x.media_write_bytes;
  acc.rmw_reads <- acc.rmw_reads + x.rmw_reads;
  acc.rmw_read_bytes <- acc.rmw_read_bytes + x.rmw_read_bytes;
  acc.dir_writes <- acc.dir_writes + x.dir_writes;
  acc.dir_write_bytes <- acc.dir_write_bytes + x.dir_write_bytes;
  acc.buffer_hits <- acc.buffer_hits + x.buffer_hits;
  acc.prefetches <- acc.prefetches + x.prefetches;
  acc.cache_hits <- acc.cache_hits + x.cache_hits;
  acc.cache_misses <- acc.cache_misses + x.cache_misses;
  acc.remote_accesses <- acc.remote_accesses + x.remote_accesses;
  acc.flushes <- acc.flushes + x.flushes;
  acc.flushes_elided <- acc.flushes_elided + x.flushes_elided;
  acc.fences <- acc.fences + x.fences;
  acc.logical_read_bytes <- acc.logical_read_bytes + x.logical_read_bytes;
  acc.logical_write_bytes <- acc.logical_write_bytes + x.logical_write_bytes

let is_zero t =
  t.media_reads = 0 && t.media_read_bytes = 0 && t.media_writes = 0
  && t.media_write_bytes = 0 && t.rmw_reads = 0 && t.rmw_read_bytes = 0
  && t.dir_writes = 0 && t.dir_write_bytes = 0 && t.buffer_hits = 0
  && t.prefetches = 0 && t.cache_hits = 0 && t.cache_misses = 0
  && t.remote_accesses = 0 && t.flushes = 0 && t.flushes_elided = 0
  && t.fences = 0
  && t.logical_read_bytes = 0 && t.logical_write_bytes = 0

let total_read_bytes t = t.media_read_bytes + t.rmw_read_bytes

let total_write_bytes t = t.media_write_bytes + t.dir_write_bytes

let read_amplification t =
  if t.logical_read_bytes = 0 then 0.0
  else float_of_int (total_read_bytes t) /. float_of_int t.logical_read_bytes

let write_amplification t =
  if t.logical_write_bytes = 0 then 0.0
  else float_of_int (total_write_bytes t) /. float_of_int t.logical_write_bytes

let pp ppf t =
  Format.fprintf ppf
    "@[<v>media reads: %d (%d B, +%d B rmw)@,\
     media writes: %d (%d B, +%d B directory)@,\
     logical: %d B read, %d B written (amplification %.2fx read / %.2fx write)@,\
     buffer hits: %d, prefetches: %d@,\
     cpu cache: %d hits / %d misses, remote: %d@,\
     flushes: %d (+%d elided), fences: %d@]"
    t.media_reads t.media_read_bytes t.rmw_read_bytes t.media_writes
    t.media_write_bytes t.dir_write_bytes t.logical_read_bytes t.logical_write_bytes
    (read_amplification t) (write_amplification t) t.buffer_hits t.prefetches
    t.cache_hits t.cache_misses t.remote_accesses t.flushes t.flushes_elided
    t.fences
