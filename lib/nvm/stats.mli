(** PMWatch-style traffic counters for the simulated NVM.

    One {!t} per device plus one machine-level instance; [add]
    aggregates, [diff] supports before/after measurement windows. *)

type t = {
  mutable media_reads : int;  (** XPLine fetches from media *)
  mutable media_read_bytes : int;
  mutable media_writes : int;  (** media write operations *)
  mutable media_write_bytes : int;
  mutable rmw_reads : int;  (** read-modify-write amplification reads *)
  mutable rmw_read_bytes : int;
  mutable dir_writes : int;  (** directory coherence writes (FH5) *)
  mutable dir_write_bytes : int;
  mutable buffer_hits : int;  (** XPBuffer / read-buffer hits *)
  mutable prefetches : int;
  mutable cache_hits : int;  (** CPU cache hits *)
  mutable cache_misses : int;
  mutable remote_accesses : int;  (** cross-NUMA accesses *)
  mutable flushes : int;  (** clwb instructions that reached the device *)
  mutable flushes_elided : int;
      (** clwb instructions skipped by FliT-style flush tracking: the
          line was already clean on media or already staged by this
          thread, so the flush would have been redundant *)
  mutable fences : int;  (** sfence instructions *)
  mutable logical_read_bytes : int;
      (** bytes the program asked to read (denominator of FH2's read
          amplification; media traffic is the numerator) *)
  mutable logical_write_bytes : int;
      (** bytes the program asked to write (FH1 write amplification) *)
}

val create : unit -> t

val reset : t -> unit

(** Independent copy, for before/after windows. *)
val snapshot : t -> t

(** [diff after before] is the per-field difference. *)
val diff : t -> t -> t

(** [add acc x] accumulates [x] into [acc]. *)
val add : t -> t -> unit

(** Every counter is zero (e.g. a [diff] over an idle window). *)
val is_zero : t -> bool

(** Total bytes read from media, including RMW amplification. *)
val total_read_bytes : t -> int

(** Total bytes written to media, including directory writes. *)
val total_write_bytes : t -> int

(** [total_read_bytes / logical_read_bytes]; [0.] when nothing was
    read.  > 1 exposes FH2 (256B media granularity vs small reads). *)
val read_amplification : t -> float

(** [total_write_bytes / logical_write_bytes]; [0.] when nothing was
    written.  > 1 exposes FH1 (RMW on partial XPLine writes). *)
val write_amplification : t -> float

val pp : Format.formatter -> t -> unit
