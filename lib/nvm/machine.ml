type crash_mode = Strict | Flaky of float * Des.Rng.t

type staged = {
  pool_id : int;
  dev : Device.t;
  xpline : int;
  apply : unit -> unit;
}

type trace_event =
  | Ev_store of { pool : int; line : int; data : string }
  | Ev_clwb of { tid : int; pool : int; line : int; data : string }
  | Ev_fence of { tid : int }
  | Ev_drain of { pool : int; line : int; data : string }

type persist_event =
  | Pe_store of { tid : int; pool : int; line : int }
  | Pe_clwb of { tid : int; pool : int; line : int }
  | Pe_fence of { tid : int }

type pool_view = {
  pv_id : int;
  pv_name : string;
  pv_capacity : int;
  pv_volatile : bool;
  pv_media : unit -> Bytes.t;
  pv_restore : Bytes.t -> unit;
}

type t = {
  profile : Config.profile;
  protocol : Config.protocol;
  devices : Device.t array;
  cpu_tags : int array; (* direct-mapped; -1 = invalid *)
  cpu_mask : int;
  staged : (int, staged list ref) Hashtbl.t; (* thread id -> reversed list *)
  stats : Stats.t;
  mutable next_pool_id : int;
  mutable crash_hooks : (crash_mode -> unit) list;
  mutable tracer : (trace_event -> unit) option;
  mutable persist_observer : (persist_event -> unit) option;
  mutable pool_views : pool_view list; (* reversed creation order *)
  mutable flush_fault : int option; (* drop the k-th clwb since set *)
  mutable flush_seen : int;
  mutable flush_elision : bool; (* skip redundant clwbs instead of just counting *)
  mutable wait_observer : (float -> unit) option;
      (* called with each fence's simulated stall, for phase attribution *)
}

let create ?(profile = Config.dcpmm) ?(protocol = Config.Snoop) ~numa_count () =
  let slots = 1 lsl profile.Config.cache_slots_log2 in
  {
    profile;
    protocol;
    devices = Array.init numa_count (fun numa -> Device.create profile ~protocol ~numa);
    cpu_tags = Array.make slots (-1);
    cpu_mask = slots - 1;
    staged = Hashtbl.create 64;
    stats = Stats.create ();
    next_pool_id = 0;
    crash_hooks = [];
    tracer = None;
    persist_observer = None;
    pool_views = [];
    flush_fault = None;
    flush_seen = 0;
    flush_elision = false;
    wait_observer = None;
  }

let set_wait_observer t f = t.wait_observer <- f

let set_tracer t f = t.tracer <- f

let tracer t = t.tracer

let set_persist_observer t f = t.persist_observer <- f

let persist_observer t = t.persist_observer

let register_pool_view t pv = t.pool_views <- pv :: t.pool_views

let pool_views t = List.rev t.pool_views

let set_flush_fault t k =
  t.flush_fault <- k;
  t.flush_seen <- 0

let flush_faulted t =
  match t.flush_fault with
  | None -> false
  | Some k ->
      let n = t.flush_seen in
      t.flush_seen <- n + 1;
      n = k

let flush_fault_fired t =
  match t.flush_fault with None -> false | Some k -> t.flush_seen > k

let set_flush_elision t b = t.flush_elision <- b

let flush_elision t = t.flush_elision

let profile t = t.profile

let protocol t = t.protocol

let numa_count t = Array.length t.devices

let device t numa = t.devices.(numa)

let stats t = t.stats

let total_stats t =
  let acc = Stats.snapshot t.stats in
  Array.iter (fun dev -> Stats.add acc (Device.stats dev)) t.devices;
  acc

let now _t = match Des.Sched.self () with Some s -> Des.Sched.now s | None -> 0.0

(* Pool ids are process-global so that persistent pointers (which
   embed the pool id) can be resolved through a global registry even
   when many machines coexist (tests, benchmarks). *)
let global_pool_ids = ref 0

let fresh_pool_id t =
  let id = !global_pool_ids in
  incr global_pool_ids;
  t.next_pool_id <- t.next_pool_id + 1;
  id

let cache_slot t gline = gline * 0x9E3779B1 land t.cpu_mask

let cache_access t gline =
  let slot = cache_slot t gline in
  if t.cpu_tags.(slot) = gline then begin
    t.stats.Stats.cache_hits <- t.stats.Stats.cache_hits + 1;
    true
  end
  else begin
    t.stats.Stats.cache_misses <- t.stats.Stats.cache_misses + 1;
    t.cpu_tags.(slot) <- gline;
    false
  end

let cache_invalidate t gline =
  let slot = cache_slot t gline in
  if t.cpu_tags.(slot) = gline then t.cpu_tags.(slot) <- -1

let stage t entry =
  let tid = Des.Sched.current_id () in
  match Hashtbl.find_opt t.staged tid with
  | Some r -> r := entry :: !r
  | None -> Hashtbl.add t.staged tid (ref [ entry ])

let on_crash t hook = t.crash_hooks <- hook :: t.crash_hooks

(* sfence: group the thread's staged flushes by XPLine (the XPBuffer's
   write combining), charge one media write per group — a full 256B
   write when 4 lines were flushed, a partial RMW write otherwise —
   and wait for the slowest.  Sequentially flushed nodes therefore
   persist much more cheaply than scattered single lines (FH3). *)
let fence t =
  if t.profile.Config.eadr then () (* persistent caches: nothing to order *)
  else begin
  t.stats.Stats.fences <- t.stats.Stats.fences + 1;
  Des.Sched.charge t.profile.Config.fence_base_cost;
  let tid = Des.Sched.current_id () in
  (match t.tracer with
  | Some emit -> emit (Ev_fence { tid })
  | None -> ());
  (match t.persist_observer with
  | Some emit -> emit (Pe_fence { tid })
  | None -> ());
  match Hashtbl.find_opt t.staged tid with
  | None -> ()
  | Some r ->
      let entries = List.rev !r in
      r := [];
      if entries <> [] then begin
        let groups : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
        let record e =
          let key = (Device.numa e.dev, e.xpline) in
          let count = try Hashtbl.find groups key with Not_found -> 0 in
          Hashtbl.replace groups key (count + 1)
        in
        List.iter record entries;
        if Des.Sched.running () then begin
          let start = now t in
          let from_numa = Des.Sched.current_numa () in
          (* sfence waits for WPQ acceptance (the persistent domain
             under ADR), not the media transfer; the channel stays
             booked, so saturation still back-pressures the fence. *)
          let fence_done = ref start in
          let issue (dev_numa, xpline) count =
            let bytes = min 256 (64 * count) in
            let dev = t.devices.(dev_numa) in
            let accepted, _completed =
              Device.write dev ~now:start ~xpline ~bytes ~from_numa
            in
            if accepted > !fence_done then fence_done := accepted
          in
          Hashtbl.iter issue groups;
          Des.Sched.delay (!fence_done -. start);
          match t.wait_observer with
          | Some observe -> observe (!fence_done -. start)
          | None -> ()
        end
        else begin
          (* Outside a simulation: account traffic without timing. *)
          let issue (dev_numa, xpline) count =
            let bytes = min 256 (64 * count) in
            let dev = t.devices.(dev_numa) in
            ignore (Device.write dev ~now:0.0 ~xpline ~bytes ~from_numa:dev_numa)
          in
          Hashtbl.iter issue groups
        end;
        List.iter (fun e -> e.apply ()) entries
      end
  end

let crash t mode =
  (* eADR: the CPU caches are persistent — every store survives. *)
  let mode = if t.profile.Config.eadr then Flaky (1.0, Des.Rng.create ~seed:0L) else mode in
  Hashtbl.reset t.staged;
  Array.fill t.cpu_tags 0 (Array.length t.cpu_tags) (-1);
  Array.iter Device.reset_buffers t.devices;
  List.iter (fun hook -> hook mode) t.crash_hooks
