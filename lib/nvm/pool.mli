(** A byte-addressable NVM (or DRAM) pool.

    A pool is a contiguous region backed by one NUMA device, exposed
    through offset-based typed accessors.  Two byte images exist: the
    {e cache} image (what the program reads and writes) and the
    {e media} image (what survives a crash); [clwb]+[fence] move
    64-byte lines from the former to the latter (see {!Machine}).

    Every access is charged through the machine's cost model: CPU
    cache hits are cheap, misses become XPLine-granularity device
    traffic with NUMA and coherence effects.  DRAM pools
    ([volatile:true]) cost DRAM latency, ignore flushes, and lose all
    content on crash — they model the "internal nodes in DRAM" designs
    the paper compares against. *)

type t

(** [create machine ~name ~numa ~capacity] allocates a pool (capacity
    is rounded up to a 256B multiple).  [volatile] defaults to
    [false]. *)
val create :
  Machine.t -> ?volatile:bool -> name:string -> numa:int -> capacity:int -> unit -> t

val id : t -> int

val name : t -> string

val numa : t -> int

val capacity : t -> int

val is_volatile : t -> bool

val machine : t -> Machine.t

(** {2 Typed access (little-endian)}

    [read_int]/[write_int] move OCaml 63-bit ints through an 8-byte
    slot; 8-byte accesses must be 8-byte aligned so that they are
    single-line atomic, matching the paper's reliance on 8B atomic
    stores as linearization points. *)

val read_u8 : t -> int -> int

val write_u8 : t -> int -> int -> unit

val read_u16 : t -> int -> int

val write_u16 : t -> int -> int -> unit

val read_u32 : t -> int -> int

val write_u32 : t -> int -> int -> unit

val read_int : t -> int -> int

val write_int : t -> int -> int -> unit

val read_int64 : t -> int -> int64

val write_int64 : t -> int -> int64 -> unit

(** [read_string p off len] copies [len] bytes out of the pool. *)
val read_string : t -> int -> int -> string

val write_string : t -> int -> string -> unit

(** [blit_to_bytes p off buf pos len] avoids the allocation of
    [read_string]. *)
val blit_to_bytes : t -> int -> bytes -> int -> int -> unit

(** Zero [len] bytes at [off]. *)
val fill_zero : t -> int -> int -> unit

(** [compare_string p off len s] compares the [len] bytes at [off]
    with [s] lexicographically (allocation-free). *)
val compare_string : t -> int -> int -> string -> int

(** {2 Persistence} *)

(** [clwb p off] stages the 64B line containing [off] for persistence
    at the caller's next [fence].  Models the cache-line invalidation
    of current-generation clwb (FH4).

    FliT-style flush tracking elides redundant clwbs: when the line is
    already identical to the media image, or already staged by the
    calling thread with no store since, the clwb is free (no CPU cost,
    no staging, no cache invalidation) and counted in
    {!Stats.t.flushes_elided} instead of [flushes].  Elision never
    weakens persistence: the elided flush's obligation is already met
    by the media state or by the caller's pending fence. *)
val clwb : t -> int -> unit

(** [flush_range p off len] issues [clwb] for each line overlapping
    [\[off, off+len)]. *)
val flush_range : t -> int -> int -> unit

(** Store fence (delegates to {!Machine.fence}). *)
val fence : t -> unit

(** [persist p off len] = [flush_range] + [fence]. *)
val persist : t -> int -> int -> unit

(** {2 Testing / inspection} *)

(** Read directly from the media image, bypassing cost accounting —
    for tests that check what would survive a crash. *)
val media_read_int : t -> int -> int

(** True if the 64B line containing [off] differs between cache and
    media image. *)
val line_is_dirty : t -> int -> bool

(** [cas_int p off ~expected v] atomically compares the 8-byte slot at
    [off] with [expected] and stores [v] on match (8-byte aligned).
    The access cost is charged before the compare; the
    compare-and-swap itself is indivisible, like a hardware CAS. *)
val cas_int : t -> int -> expected:int -> int -> bool
