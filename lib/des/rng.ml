type t = { mutable state : int64 }

let create ~seed = { state = seed }

(* splitmix64 (Steele, Lea, Flood 2014): passes BigCrush, one 64-bit
   word of state, trivially splittable. *)
let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create ~seed:(next t)

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (next t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let float t =
  (* 53 high-quality bits -> [0, 1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L

(* Seed override for stochastic test suites: [PACTREE_SEED=n] rides
   over the baked-in default so a failure printed with its seed can be
   replayed exactly. *)
let env_seed ~default =
  match Sys.getenv_opt "PACTREE_SEED" with
  | None | Some "" -> default
  | Some s -> (
      match Int64.of_string_opt s with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "PACTREE_SEED=%S is not an integer" s))
