(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator and workloads draws from
    an explicit [Rng.t] so that runs are reproducible from a seed. *)

type t

val create : seed:int64 -> t

(** [split t] derives an independent generator, e.g. one per simulated
    thread, without sharing state with [t]'s future draws. *)
val split : t -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [env_seed ~default] reads a seed override from the [PACTREE_SEED]
    environment variable (decimal or 0x-prefixed), falling back to
    [default].  Stochastic suites use it so any failure, printed with
    its seed, can be replayed exactly. *)
val env_seed : default:int64 -> int64
