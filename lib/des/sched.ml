type thread = {
  id : int;
  name : string;
  numa : int;
  mutable extra : float; (* accumulated `charge` not yet reflected in the clock *)
}

type t = {
  mutable clock : float;
  events : (unit -> unit) Event_queue.t;
  mutable current : thread option;
  mutable next_id : int;
  mutable live : int;
}

(* The running scheduler for the (single) host thread.  The simulation
   is cooperative, so a plain ref is race-free. *)
let active : t option ref = ref None

type _ Effect.t +=
  | Delay : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
        (* [Suspend park] hands the caller's "resume" closure to
           [park], which stores it (e.g. on a wait queue). *)

let create ?(start = 0.0) () =
  { clock = start; events = Event_queue.create (); current = None; next_id = 0; live = 0 }

let now t = t.clock

let flush_extra thread =
  let e = thread.extra in
  thread.extra <- 0.0;
  e

let spawn t ?(numa = 0) ~name body =
  let thread = { id = t.next_id; name; numa; extra = 0.0 } in
  t.next_id <- t.next_id + 1;
  t.live <- t.live + 1;
  let open Effect.Deep in
  let start () =
    t.current <- Some thread;
    match_with
      (fun () ->
        body ();
        t.live <- t.live - 1)
      ()
      {
        retc = (fun () -> t.current <- None);
        exnc =
          (fun exn ->
            t.current <- None;
            raise exn);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Delay seconds ->
                Some
                  (fun (k : (c, _) continuation) ->
                    let pause = seconds +. flush_extra thread in
                    Event_queue.add t.events
                      ~time:(t.clock +. pause)
                      (fun () ->
                        t.current <- Some thread;
                        continue k ());
                    t.current <- None)
            | Suspend park ->
                Some
                  (fun (k : (c, _) continuation) ->
                    let resume () =
                      Event_queue.add t.events ~time:t.clock (fun () ->
                          t.current <- Some thread;
                          continue k ())
                    in
                    park resume;
                    t.current <- None)
            | _ -> None);
      }
  in
  Event_queue.add t.events ~time:t.clock start

(* Power-failure semantics: drop every pending event and suspended
   thread.  When called from inside a simulated thread (the "crasher"),
   that thread keeps running to completion. *)
let abort_all t =
  while not (Event_queue.is_empty t.events) do
    ignore (Event_queue.pop_min t.events)
  done;
  t.live <- (if t.current = None then 0 else 1)

let debug_progress =
  match Sys.getenv_opt "DES_DEBUG" with Some _ -> true | None -> false

let run t =
  let saved = !active in
  active := Some t;
  let finish () = active := saved in
  let events = ref 0 in
  (try
     while not (Event_queue.is_empty t.events) do
       let time, action = Event_queue.pop_min t.events in
       t.clock <- max t.clock time;
       if debug_progress then begin
         incr events;
         if !events land 0xFFFFF = 0 then
           Printf.eprintf "[des] %dM events, sim %.3f ms, queue %d\n%!" (!events / 1_000_000)
             (t.clock *. 1e3) (Event_queue.length t.events)
       end;
       action ()
     done
   with exn ->
     finish ();
     raise exn);
  finish ();
  if t.live > 0 then
    invalid_arg
      (Printf.sprintf "Sched.run: %d thread(s) blocked forever (missing signal?)" t.live)

let current () =
  match !active with
  | Some t -> t.current
  | None -> None

let running () = current () <> None

let self () = match current () with Some _ -> !active | None -> None

let current_id () = match current () with Some th -> th.id | None -> -1

let current_numa () = match current () with Some th -> th.numa | None -> 0

let current_name () = match current () with Some th -> th.name | None -> "main"

let delay seconds =
  match current () with
  | Some _ -> Effect.perform (Delay seconds)
  | None -> ()

let charge seconds =
  match current () with Some th -> th.extra <- th.extra +. seconds | None -> ()

let pending_charge () = match current () with Some th -> th.extra | None -> 0.0

let yield () = delay 0.0

module Waitq = struct
  type t = { mutable queue : (unit -> unit) list (* reversed FIFO *) }

  let create () = { queue = [] }

  let wait wq =
    match current () with
    | None -> invalid_arg "Waitq.wait outside a simulated thread"
    | Some _ ->
        (* Enqueue-and-suspend must be atomic with respect to the
           caller's wait-condition check: no simulated-time action may
           occur in between, or a concurrent signal could be lost.
           Accumulated [charge] time simply folds into the next
           delay after wake-up. *)
        Effect.perform (Suspend (fun resume -> wq.queue <- resume :: wq.queue))

  let signal_all _sched wq =
    let resumers = List.rev wq.queue in
    wq.queue <- [];
    List.iter (fun resume -> resume ()) resumers

  let signal_one _sched wq =
    match List.rev wq.queue with
    | [] -> ()
    | resume :: rest ->
        wq.queue <- List.rev rest;
        resume ()

  let waiters wq = List.length wq.queue
end
