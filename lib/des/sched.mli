(** Deterministic discrete-event scheduler.

    Simulated threads are cooperative coroutines implemented with
    OCaml 5 effect handlers.  A thread runs host code at "infinite
    speed" until it performs a simulated-time action ([delay],
    [charge], blocking on a {!Waitq.t}); the scheduler then advances a
    virtual clock and switches to the next earliest event.

    The NVM model charges every media access, flush and fence through
    this module, so simulated throughput reflects the modelled
    hardware rather than the host machine.  Runs are deterministic:
    the event queue breaks ties by insertion order and all randomness
    comes from {!Rng}. *)

type t

(** [create ()] makes a fresh scheduler.  [start] (default 0) sets the
    initial clock — pass the previous phase's end time when running
    consecutive simulations against the same machine, so that device
    state (channel bookings) remains temporally consistent. *)
val create : ?start:float -> unit -> t

(** Current simulated time, in seconds. *)
val now : t -> float

(** [spawn t ?numa ~name body] registers a new simulated thread that
    starts when [run] reaches the current clock.  [numa] (default 0)
    is the NUMA domain the thread is pinned to; the NVM model reads it
    via [current_numa]. *)
val spawn : t -> ?numa:int -> name:string -> (unit -> unit) -> unit

(** [run t] executes events until the queue is empty, i.e. all spawned
    threads have finished or are waiting on a {!Waitq.t} that nobody
    will ever signal (which is reported as an error). *)
val run : t -> unit

(** SIGKILL semantics for crash tests: discard every pending event and
    suspended thread.  The calling thread (if any) runs to
    completion. *)
val abort_all : t -> unit

(** {2 Operations available inside a simulated thread}

    These take no scheduler argument: the running scheduler is
    implicit.  Outside a simulation they degrade gracefully: [delay]
    and [charge] are no-ops, [current_*] return defaults.  This lets
    the index and NVM code run unchanged in plain single-threaded
    programs (e.g. the examples). *)

(** [delay seconds] suspends the calling thread for [seconds] of
    simulated time (plus any accumulated [charge]). *)
val delay : float -> unit

(** [charge seconds] adds [seconds] to the calling thread's clock
    without a context switch; the amount is folded into the next
    [delay] or block.  Use for cheap, non-blocking costs such as CPU
    work and cache hits. *)
val charge : float -> unit

(** Charged time accumulated by the calling thread that has not yet
    been folded into the clock by a [delay] or block; [0.] outside a
    simulation.  [now t +. pending_charge ()] is the calling thread's
    effective clock — observability code uses it so that span
    boundaries see [charge]d costs without forcing a context switch. *)
val pending_charge : unit -> float

(** Yield the processor: reschedule the calling thread at the current
    time behind already-pending events. *)
val yield : unit -> unit

(** Identifier of the calling simulated thread; [-1] outside a
    simulation. *)
val current_id : unit -> int

(** NUMA domain of the calling simulated thread; [0] outside a
    simulation. *)
val current_numa : unit -> int

(** Name of the calling simulated thread; ["main"] outside. *)
val current_name : unit -> string

(** [running ()] is [true] when called from inside a simulated
    thread. *)
val running : unit -> bool

(** The scheduler driving the calling simulated thread. *)
val self : unit -> t option

(** Condition-variable-like wait queue for simulated threads. *)
module Waitq : sig
  type sched := t

  type t

  val create : unit -> t

  (** Block the calling thread until [signal_all] (or [signal_one]) is
      called by another simulated thread.  Accumulated [charge] time
      is applied before blocking. *)
  val wait : t -> unit

  (** Wake every waiting thread at the current simulated time. *)
  val signal_all : sched -> t -> unit

  (** Wake at most one waiting thread (FIFO). *)
  val signal_one : sched -> t -> unit

  val waiters : t -> int
end
