(** Operation latency recording with percentile reporting (paper §6.4:
    10% of operations are sampled, tails up to p99.99). *)

type t

(** [create ~sample_rate rng] — [sample_rate] in (0, 1]. *)
val create : ?sample_rate:float -> Des.Rng.t -> t

(** [should_sample t] decides (cheaply) whether this operation's
    latency should be recorded. *)
val should_sample : t -> bool

(** Record one latency in seconds. *)
val record : t -> float -> unit

val count : t -> int

(** [percentile t p] with [p] in [0, 100], e.g. [99.99].  Raises
    [Invalid_argument] outside that range.  An empty recorder (no
    samples yet) reports 0.0 for every percentile — callers that need
    to distinguish "no data" from "zero latency" should consult
    {!count}. *)
val percentile : t -> float -> float

(** Arithmetic mean of the recorded samples; 0.0 when empty. *)
val mean : t -> float

(** Largest recorded sample; 0.0 when empty. *)
val max : t -> float

(** Merge [src] into [dst] (combining per-thread recorders). *)
val merge : dst:t -> src:t -> unit
