type process = Poisson | Uniform

let process_name = function Poisson -> "poisson" | Uniform -> "uniform"

let process_of_string = function
  | "poisson" -> Ok Poisson
  | "uniform" -> Ok Uniform
  | s -> Error (Printf.sprintf "unknown arrival process %S (poisson|uniform)" s)

type t = { proc : process; rate : float; rng : Des.Rng.t }

let create ~process ~rate rng =
  if not (rate > 0.0) then invalid_arg "Arrival.create: rate must be positive";
  { proc = process; rate; rng }

let rate t = t.rate

let process t = t.proc

let next_gap t =
  match t.proc with
  | Uniform -> 1.0 /. t.rate
  | Poisson ->
      (* Inverse-CDF draw; [float] is in [0,1), so [1 - u] never hits 0. *)
      let u = Des.Rng.float t.rng in
      -.log (1.0 -. u) /. t.rate
