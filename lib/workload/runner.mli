(** Multi-threaded benchmark runner over the discrete-event simulator.

    Loads an index with [loaded] keys (parallel inserts), then runs
    [ops] operations across [threads] simulated threads spread round-
    robin over the machine's NUMA domains.  Simulated elapsed time of
    the run phase yields throughput; 10% latency sampling yields
    percentiles; NVM counters are diffed around the run phase. *)

type result = {
  mix : Ycsb.mix;
  threads : int;
  ops : int;
  elapsed : float;  (** simulated seconds of the run phase *)
  throughput : float;  (** operations per simulated second *)
  latency : Latency.t;  (** merged samples (10%) *)
  nvm : Nvm.Stats.t;  (** device+machine traffic during the run *)
}

(** Optional background service (e.g. PACTree's updater): [body] is
    spawned before the workers, [shutdown] is invoked once all workers
    finish. *)
type service = { body : unit -> unit; shutdown : unit -> unit }

(** [run ~machine ~index ~mix ~kind ~loaded ~ops ~threads ()] executes
    load + run phases.  [theta] defaults to YCSB's 0.99 Zipfian; pass
    [0.] for uniform.  [skip_load] reuses an already-loaded index
    (read-only mixes only).  [load_threads] defaults to [threads].

    With [?obs], the measured phase (not the preparatory load) is
    instrumented: the recorder's span tracer is installed for phase
    attribution, its sampler (if any) runs on the phase's scheduler
    and is stopped when the workers finish, latency-sampled operations
    additionally record per-op flush/fence/media-byte histograms
    (["op.*"] — approximate under concurrency, since deltas of the
    shared machine counters include neighbours' traffic), and run
    totals land in ["run.*"] counters. *)
val run :
  machine:Nvm.Machine.t ->
  index:Baselines.Index_intf.index ->
  ?service:service ->
  ?obs:Obs.Recorder.t ->
  mix:Ycsb.mix ->
  kind:Keyset.kind ->
  loaded:int ->
  ops:int ->
  threads:int ->
  ?load_threads:int ->
  ?theta:float ->
  ?seed:int64 ->
  ?skip_load:bool ->
  unit ->
  result

(** Load only (returns elapsed simulated seconds). *)
val load :
  machine:Nvm.Machine.t ->
  index:Baselines.Index_intf.index ->
  ?service:service ->
  kind:Keyset.kind ->
  loaded:int ->
  threads:int ->
  ?seed:int64 ->
  unit ->
  float

val mops : result -> float

val pp_result : Format.formatter -> result -> unit
