(** Arrival processes for open-loop load generation.

    A closed-loop client issues its next request the instant the
    previous one completes, so offered load always equals service
    capacity and queueing is invisible.  An {e open-loop} source
    instead emits requests on its own schedule, independent of the
    system's progress — the setting where saturation knees, queueing
    delay and tail-latency collapse become observable.  [t] generates
    the inter-arrival gaps for such a source on the DES clock. *)

type process =
  | Poisson  (** exponential gaps (memoryless, bursty) — the default *)
  | Uniform  (** deterministic gaps of exactly [1/rate] (paced) *)

val process_name : process -> string

val process_of_string : string -> (process, string) result

type t

(** [create ~process ~rate rng] — [rate] is the offered load in
    requests per simulated second; must be positive. *)
val create : process:process -> rate:float -> Des.Rng.t -> t

val rate : t -> float

val process : t -> process

(** Next inter-arrival gap in seconds ([>= 0]).  Draws from [rng] for
    {!Poisson}; deterministic for {!Uniform}. *)
val next_gap : t -> float
