type t = {
  rng : Des.Rng.t;
  sample_rate : float;
  mutable samples : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create ?(sample_rate = 0.1) rng =
  { rng; sample_rate; samples = Array.make 1024 0.0; size = 0; sorted = false }

let should_sample t = t.sample_rate >= 1.0 || Des.Rng.float t.rng < t.sample_rate

let record t latency =
  if t.size = Array.length t.samples then begin
    let bigger = Array.make (2 * t.size) 0.0 in
    Array.blit t.samples 0 bigger 0 t.size;
    t.samples <- bigger
  end;
  t.samples.(t.size) <- latency;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.size in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg (Printf.sprintf "Latency.percentile: %g outside [0, 100]" p);
  if t.size = 0 then 0.0
  else begin
    ensure_sorted t;
    let idx = int_of_float (Float.of_int (t.size - 1) *. p /. 100.0) in
    t.samples.(idx)
  end

let mean t =
  if t.size = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.size - 1 do
      sum := !sum +. t.samples.(i)
    done;
    !sum /. float_of_int t.size
  end

let max t =
  if t.size = 0 then 0.0
  else begin
    let m = ref t.samples.(0) in
    for i = 1 to t.size - 1 do
      if t.samples.(i) > !m then m := t.samples.(i)
    done;
    !m
  end

let merge ~dst ~src =
  for i = 0 to src.size - 1 do
    record dst src.samples.(i)
  done
