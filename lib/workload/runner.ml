module Index = Baselines.Index_intf

type result = {
  mix : Ycsb.mix;
  threads : int;
  ops : int;
  elapsed : float;
  throughput : float;
  latency : Latency.t;
  nvm : Nvm.Stats.t;
}

type service = { body : unit -> unit; shutdown : unit -> unit }

let apply_op index op =
  match op with
  | Ycsb.Lookup k -> ignore (Index.lookup index k)
  | Ycsb.Upsert (k, v) -> Index.insert index k v
  | Ycsb.Insert_new (k, v) -> Index.insert index k v
  | Ycsb.Scan (k, n) -> ignore (Index.scan index k n)

(* Run one phase: [threads] workers each executing [per_thread] ops of
   [mix]; returns (end_time, merged latency recorder).  [start] keeps
   simulated time monotonic across phases on the same machine (device
   channel bookings are absolute times). *)
let phase ~machine ~index ~service ~obs ~mix ~kind ~loaded ~theta ~seed ~threads
    ~total_ops ~start =
  let numa_count = Nvm.Machine.numa_count machine in
  let sched = Des.Sched.create ~start () in
  (match obs with
  | Some { Obs.Recorder.sampler = Some s; _ } -> Obs.Sampler.spawn s sched
  | _ -> ());
  (match service with
  | Some s -> Des.Sched.spawn sched ~name:"service" (fun () -> s.body ())
  | None -> ());
  let op_hists =
    match obs with
    | None -> None
    | Some o ->
        let m = o.Obs.Recorder.metrics in
        Some
          ( Obs.Metrics.histogram m "op.flushes",
            Obs.Metrics.histogram m "op.fences",
            Obs.Metrics.histogram m "op.media_read_bytes",
            Obs.Metrics.histogram m "op.media_write_bytes" )
  in
  let recorders = Array.init threads (fun i -> Latency.create (Des.Rng.create ~seed:(Int64.of_int (i + 33)))) in
  let live = ref threads in
  let profile = Nvm.Machine.profile machine in
  for i = 0 to threads - 1 do
    let per_thread = (total_ops / threads) + if i < total_ops mod threads then 1 else 0 in
    Des.Sched.spawn sched
      ~numa:(i mod numa_count)
      ~name:(Printf.sprintf "worker%d" i)
      (fun () ->
        let stream = Ycsb.create ~mix ~kind ~loaded ~theta ~seed ~thread:i ~threads in
        let recorder = recorders.(i) in
        for _ = 1 to per_thread do
          let op = Ycsb.next stream in
          Des.Sched.charge profile.Nvm.Config.op_overhead;
          if Latency.should_sample recorder then begin
            let stats_before =
              match op_hists with
              | Some _ -> Some (Nvm.Stats.snapshot (Nvm.Machine.total_stats machine))
              | None -> None
            in
            let start = Des.Sched.now sched in
            apply_op index op;
            (* make sure accumulated charges land in the clock *)
            Des.Sched.delay 0.0;
            Latency.record recorder (Des.Sched.now sched -. start);
            match (op_hists, stats_before) with
            | Some (hf, hn, hr, hw), Some b ->
                let d = Nvm.Stats.diff (Nvm.Machine.total_stats machine) b in
                Obs.Metrics.observe hf (float_of_int d.Nvm.Stats.flushes);
                Obs.Metrics.observe hn (float_of_int d.Nvm.Stats.fences);
                Obs.Metrics.observe hr (float_of_int (Nvm.Stats.total_read_bytes d));
                Obs.Metrics.observe hw (float_of_int (Nvm.Stats.total_write_bytes d))
            | _ -> ()
          end
          else apply_op index op
        done;
        Des.Sched.delay 0.0 (* materialise accumulated charges *);
        decr live;
        if !live = 0 then begin
          (match obs with
          | Some { Obs.Recorder.sampler = Some s; _ } -> Obs.Sampler.stop s
          | _ -> ());
          match service with Some s -> s.shutdown () | None -> ()
        end)
  done;
  Des.Sched.run sched;
  let merged = Latency.create (Des.Rng.create ~seed:1L) in
  Array.iter (fun r -> Latency.merge ~dst:merged ~src:r) recorders;
  (Des.Sched.now sched, merged)

let load ~machine ~index ?service ~kind ~loaded ~threads ?(seed = 42L) () =
  let end_time, _ =
    phase ~machine ~index ~service ~obs:None ~mix:Ycsb.Load_a ~kind ~loaded:0 ~theta:0.0
      ~seed ~threads ~total_ops:loaded ~start:0.0
  in
  end_time

let run ~machine ~index ?service ?obs ~mix ~kind ~loaded ~ops ~threads ?load_threads
    ?(theta = 0.99) ?(seed = 42L) ?(skip_load = false) () =
  let load_threads = Option.value ~default:threads load_threads in
  let start =
    if (not skip_load) && mix <> Ycsb.Load_a then
      load ~machine ~index ?service ~kind ~loaded ~threads:load_threads ~seed ()
    else 0.0
  in
  (* Observe the measured phase only: the preparatory load would
     otherwise swamp the phase/traffic attribution. *)
  (match obs with Some o -> Obs.Span.install o.Obs.Recorder.span | None -> ());
  let before = Nvm.Stats.snapshot (Nvm.Machine.total_stats machine) in
  let end_time, latency =
    Fun.protect
      ~finally:(fun () ->
        match obs with Some o -> Obs.Span.uninstall o.Obs.Recorder.span | None -> ())
      (fun () ->
        match mix with
        | Ycsb.Load_a ->
            (* the load phase is the measurement *)
            phase ~machine ~index ~service ~obs ~mix ~kind ~loaded:0 ~theta:0.0 ~seed
              ~threads ~total_ops:ops ~start
        | _ ->
            phase ~machine ~index ~service ~obs ~mix ~kind ~loaded ~theta ~seed ~threads
              ~total_ops:ops ~start)
  in
  let elapsed = end_time -. start in
  let nvm = Nvm.Stats.diff (Nvm.Machine.total_stats machine) before in
  (match obs with
  | Some o ->
      let m = o.Obs.Recorder.metrics in
      Obs.Metrics.add (Obs.Metrics.counter m "run.ops") ops;
      Obs.Metrics.add (Obs.Metrics.counter m "run.flushes") nvm.Nvm.Stats.flushes;
      Obs.Metrics.add (Obs.Metrics.counter m "run.fences") nvm.Nvm.Stats.fences;
      Obs.Metrics.add
        (Obs.Metrics.counter m "run.media_read_bytes")
        (Nvm.Stats.total_read_bytes nvm);
      Obs.Metrics.add
        (Obs.Metrics.counter m "run.media_write_bytes")
        (Nvm.Stats.total_write_bytes nvm);
      Obs.Metrics.set (Obs.Metrics.gauge m "run.elapsed_s") elapsed
  | None -> ());
  {
    mix;
    threads;
    ops;
    elapsed;
    throughput = (if elapsed > 0.0 then float_of_int ops /. elapsed else 0.0);
    latency;
    nvm;
  }

let mops r = r.throughput /. 1e6

let pp_result ppf r =
  Format.fprintf ppf "%a %2d thr: %6.2f Mops/s (p99 %.1fus, %d samples)" Ycsb.pp_mix
    r.mix r.threads (mops r)
    (Latency.percentile r.latency 99.0 *. 1e6)
    (Latency.count r.latency)
