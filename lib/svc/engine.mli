(** Request engine: open- or closed-loop load over a {!Store}.

    Requests flow [source -> per-shard bounded queue -> shard worker
    pool].  In {e open-loop} mode a single generator emits [ops]
    requests on its own arrival schedule ({!Workload.Arrival}) at a
    configured offered rate, independent of system progress — the
    setting in which saturation and queueing delay are observable.  In
    {e closed-loop} mode [clients] coroutines each submit a request
    and block until it completes (the classic benchmark loop,
    retained for back-compat).

    Workers drain their shard's queue in batches of up to
    [max_batch]; an under-full batch waits up to [max_batch_delay]
    for more arrivals (bounding the latency cost of batching).  The
    batch's writes are group-committed through
    {!Store.commit_batch} — one redo-log fence acknowledges them all
    — then its reads execute (so they observe the batch's writes).

    Admission: when a shard queue is full, {!Reject} drops the
    request (counted, open-loop property preserved) while {!Block}
    makes the source wait for space (backpressure; degrades an open
    loop toward closed behaviour).

    Every completion records three latencies: {e queue} (arrival to
    dequeue), {e service} (dequeue to ack — the log fence for writes,
    op completion for reads) and {e total}.  Past the saturation knee
    queue latency dominates service latency; that split is the point
    of the exercise. *)

type admission = Reject | Block

val admission_name : admission -> string

val admission_of_string : string -> (admission, string) result

type mode =
  | Open_loop of { rate : float; process : Workload.Arrival.process }
      (** [rate] in requests per simulated second *)
  | Closed_loop of { clients : int }

type config = {
  mode : mode;
  ops : int;  (** total requests to generate *)
  workers_per_shard : int;
  queue_capacity : int;
  admission : admission;
  max_batch : int;
  max_batch_delay : float;  (** seconds; 0 disables the wait *)
  mix : Workload.Ycsb.mix;
  kind : Workload.Keyset.kind;
  loaded : int;  (** keys preloaded (workload key-space parameter) *)
  theta : float;
  seed : int64;
}

(** Open-loop A-mix defaults: rate 2e6, 2 workers/shard, queue 64,
    Reject, batch 8, 2 us max delay. *)
val default_config : loaded:int -> ops:int -> config

type result = {
  r_mode : mode;
  r_shards : int;
  r_generated : int;
  r_completed : int;
  r_rejected : int;
  r_elapsed : float;  (** simulated seconds, first arrival to last completion *)
  r_offered : float;  (** requests per second offered *)
  r_throughput : float;  (** completions per second *)
  r_queue_lat : Workload.Latency.t;
  r_service_lat : Workload.Latency.t;
  r_total_lat : Workload.Latency.t;
  r_shard_completed : int array;
  r_batches : int;  (** group commits issued *)
  r_batched_writes : int;  (** writes covered by those commits *)
  r_nvm : Nvm.Stats.t;  (** machine counter delta over the run *)
}

(** Completions per shard, max/mean (1.0 = perfectly balanced). *)
val imbalance : result -> float

(** [load ~store ~kind ~keys ()] bulk-loads keys [0..keys-1] (value =
    index) through per-shard loader threads pinned to each shard's
    NUMA domain, with the shards' background services running.
    Returns the simulated end time, to pass as [run]'s [start]. *)
val load : store:Store.t -> kind:Workload.Keyset.kind -> keys:int -> unit -> float

(** Execute one run.  [start] continues the simulated clock from a
    previous phase on the same machine.  With [obs], the recorder's
    span tracer is installed for the run (feeding the [svc_queue] /
    [svc_batch] phases) and its sampler runs on the run's scheduler. *)
val run :
  store:Store.t -> config:config -> ?start:float -> ?obs:Obs.Recorder.t -> unit -> result

val pp_result : Format.formatter -> result -> unit
