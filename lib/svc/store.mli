(** Range-partitioned sharded store over any {!Baselines.Index_intf}
    backend, with a per-shard group-commit log.

    A store owns [K] independent index instances ("shards"), each with
    its own heap/pools placed on NUMA domain [i mod numa_count] (the
    backends are built by the caller-supplied factory, which receives
    the target domain; allocation in this simulator is NUMA-local to
    the calling thread, so shard workers pinned to that domain keep
    the shard's data local).  A boundary-key map routes every key to
    exactly one shard; cross-shard [scan] k-way-merges the per-shard
    iterators so results stay globally ordered across boundaries.

    {b Group commit.}  Direct operations ({!insert} etc.) go straight
    to the owning shard's index and rely on the index's own persistence
    (every backend is durably linearizable op-by-op).  The service
    engine instead calls {!commit_batch}: the batch's writes are
    appended to the shard's persistent redo log (one 64-byte entry per
    write, sequence word stored last so a torn entry is detectable),
    then a {e single} fence makes the whole batch durable, then the
    writes are applied to the index with its normal internal
    persistence, and only then is the batch acknowledged — an acked
    write is both durable and visible to concurrent readers
    (read-your-writes at ack).  An applied-watermark is stored +
    flushed lazily (it rides the next batch's fence); {!recover}
    replays the log from the persisted watermark, stopping at the
    first entry whose sequence number does not match, then scrubs any
    orphaned entries past that point (entry lines persist
    independently before the batch fence, so a later entry of the
    interrupted batch may survive without an earlier one; its sequence
    number is exactly one a future committed write will use, and
    without scrubbing a second crash would resurrect it).  A crash
    during a batched commit therefore loses at most the unacked ops of
    the interrupted batch and replay is idempotent.  When the ring is
    about to reuse slots replay might still need, the watermark is
    checkpointed with its own fence first (amortised over
    [log_entries / batch] batches). *)

type backend = {
  b_index : Baselines.Index_intf.index;
  b_recover : unit -> unit;  (** post-crash recovery of this shard's index *)
  b_invariants : unit -> unit;  (** raises on structural corruption *)
  b_quiesce : unit -> unit;  (** drain background work (epochs, SMO log) *)
  b_service : Workload.Runner.service option;
      (** background service (e.g. PACTree's updater), if any *)
}

type t

(** [create ~machine ~boundaries ~make_backend ()] builds
    [Array.length boundaries + 1] shards; shard [i] owns keys [k] with
    [boundaries.(i-1) <= k < boundaries.(i)].  Boundaries must be
    strictly increasing.  [make_backend ~shard ~numa] receives the
    shard's home domain [numa = shard mod numa_count] for pool
    placement (bulk data placement follows the loading/worker threads,
    which the engine pins to the same domain).  [log_entries] sizes
    each shard's redo-log ring (default 1024; must exceed the largest
    batch). *)
val create :
  machine:Nvm.Machine.t ->
  boundaries:Pactree.Key.t array ->
  make_backend:(shard:int -> numa:int -> backend) ->
  ?log_entries:int ->
  unit ->
  t

val machine : t -> Nvm.Machine.t

val shard_count : t -> int

val shard_numa : t -> int -> int

val shard_index : t -> int -> Baselines.Index_intf.index

(** Owning shard of a key (binary search over the boundary map). *)
val shard_of_key : t -> Pactree.Key.t -> int

(** [boundaries_for ~kind ~keys ~shards] — equi-populated boundary
    keys for a {!Workload.Keyset} of [keys] keys: sorts the scattered
    keyset and cuts it into [shards] contiguous ranges. *)
val boundaries_for :
  kind:Workload.Keyset.kind -> keys:int -> shards:int -> Pactree.Key.t array

(** Per-shard background services (shard id, service), for spawning
    pinned to the shard's domain. *)
val services : t -> (int * Workload.Runner.service) list

(** {2 Direct operations} (routed, index-persisted; no group commit) *)

val insert : t -> Pactree.Key.t -> int -> unit

val lookup : t -> Pactree.Key.t -> int option

val update : t -> Pactree.Key.t -> int -> bool

val delete : t -> Pactree.Key.t -> bool

(** Ordered cross-shard scan: k-way merge of per-shard scans, fetching
    successor shards only while the result can still grow. *)
val scan : t -> Pactree.Key.t -> int -> (Pactree.Key.t * int) list

(** The store as a uniform index value (for oracles and the closed-
    loop runner). *)
val as_index : t -> Baselines.Index_intf.index

(** {2 Group commit} *)

type write = Put of Pactree.Key.t * int | Del of Pactree.Key.t

(** [commit_batch t ~shard ?on_durable writes] — append [writes] to
    shard's redo log, fence once (durability point), apply to the
    index, then call [on_durable]: the batch is acknowledged durable
    {e and} visible.  Serialised per shard by a mutex (also usable
    outside a scheduler, where locking is uncontended — e.g. from the
    crashmc harness).  All keys must belong to [shard]. *)
val commit_batch : t -> shard:int -> ?on_durable:(unit -> unit) -> write list -> unit

(** Fences spent checkpointing watermarks (ring-reuse guards), summed
    over shards — for fence accounting in tests. *)
val checkpoint_fences : t -> int

(** {2 Whole-store maintenance} *)

(** Recover every shard after {!Nvm.Machine.crash}: backend recovery,
    idempotent redo-log replay from the persisted watermark, then a
    scrub of orphaned entries past the replay tail (so a ghost from
    the interrupted batch cannot be resurrected by a later crash). *)
val recover : t -> unit

val invariants : t -> unit

val quiesce : t -> unit
