module Key = Pactree.Key
module Index = Baselines.Index_intf
module Layout = Pobj.Layout

type backend = {
  b_index : Index.index;
  b_recover : unit -> unit;
  b_invariants : unit -> unit;
  b_quiesce : unit -> unit;
  b_service : Workload.Runner.service option;
}

(* ---------- redo-log entry layout ----------

   One cache line per write so a single clwb covers the whole entry.
   The sequence word is stored LAST: any crash-surviving line snapshot
   carrying the expected sequence number therefore contains the
   complete payload, and a snapshot taken before the seq store shows a
   stale sequence (0, or the slot's previous tenant — which differs
   from the expected one by a multiple of the ring size) and stops
   replay. *)

let entry_l = Layout.create "svc_log_entry"

let f_seq = Layout.word entry_l "seq"

let f_op = Layout.u8 entry_l "op" (* 1 = put, 2 = del *)

let f_klen = Layout.u8 entry_l "klen"

let f_value = Layout.word ~at:16 entry_l "value"

let f_key = Layout.bytes ~at:24 entry_l "key" Key.max_len

let entry_size = Layout.seal ~size:64 entry_l

let meta_l = Layout.create "svc_log_meta"

let f_watermark = Layout.word meta_l "watermark"

let meta_size = Layout.seal ~size:64 meta_l

type shard = {
  s_id : int;
  s_numa : int;
  s_backend : backend;
  s_log : Nvm.Pool.t;
  s_entries : int;  (* ring capacity in entries *)
  mutable s_head : int;  (* next sequence number to append; seqs start at 1 *)
  mutable s_applied : int;  (* volatile watermark: last seq applied to the index *)
  mutable s_wm_floor : int;  (* watermark value known persisted (fenced) *)
  mutable s_ckpt_fences : int;
  s_mutex : Des.Sync.Mutex.t;
}

type t = {
  machine : Nvm.Machine.t;
  boundaries : Key.t array;
  shards : shard array;
}

type write = Put of Key.t * int | Del of Key.t

let machine t = t.machine

let shard_count t = Array.length t.shards

let shard_numa t i = t.shards.(i).s_numa

let shard_index t i = t.shards.(i).s_backend.b_index

let checkpoint_fences t =
  Array.fold_left (fun acc s -> acc + s.s_ckpt_fences) 0 t.shards

let create ~machine ~boundaries ~make_backend ?(log_entries = 1024) () =
  if log_entries < 2 then invalid_arg "Svc.Store.create: log_entries < 2";
  Array.iteri
    (fun i b ->
      if i > 0 && Key.compare boundaries.(i - 1) b >= 0 then
        invalid_arg "Svc.Store.create: boundaries not strictly increasing")
    boundaries;
  let numa_count = Nvm.Machine.numa_count machine in
  let nshards = Array.length boundaries + 1 in
  let shards =
    Array.init nshards (fun i ->
        let numa = i mod numa_count in
        let backend = make_backend ~shard:i ~numa in
        let log =
          Nvm.Pool.create machine
            ~name:(Printf.sprintf "svc-log%d" i)
            ~numa
            ~capacity:(meta_size + (log_entries * entry_size))
            ()
        in
        {
          s_id = i;
          s_numa = numa;
          s_backend = backend;
          s_log = log;
          s_entries = log_entries;
          s_head = 1;
          s_applied = 0;
          s_wm_floor = 0;
          s_ckpt_fences = 0;
          s_mutex = Des.Sync.Mutex.create ();
        })
  in
  { machine; boundaries; shards }

(* ---------- routing ---------- *)

let shard_of_key t k =
  (* smallest i with k < boundaries.(i); shard i owns [b.(i-1), b.(i)) *)
  let lo = ref 0 and hi = ref (Array.length t.boundaries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Key.compare t.boundaries.(mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let boundaries_for ~kind ~keys ~shards =
  if shards < 1 then invalid_arg "boundaries_for: shards < 1";
  if shards = 1 then [||]
  else begin
    let all = Array.init keys (fun i -> Workload.Keyset.key kind i) in
    Array.sort Key.compare all;
    Array.init (shards - 1) (fun i -> all.((i + 1) * keys / shards))
  end

let services t =
  Array.to_list t.shards
  |> List.filter_map (fun s ->
         match s.s_backend.b_service with
         | Some svc -> Some (s.s_id, svc)
         | None -> None)

(* ---------- direct (unbatched) operations ---------- *)

let insert t k v = Index.insert t.shards.(shard_of_key t k).s_backend.b_index k v

let lookup t k = Index.lookup t.shards.(shard_of_key t k).s_backend.b_index k

let update t k v = Index.update t.shards.(shard_of_key t k).s_backend.b_index k v

let delete t k = Index.delete t.shards.(shard_of_key t k).s_backend.b_index k

(* K-way merge of per-shard sorted runs.  Shard ranges are disjoint
   today, but the merge stays correct if they ever overlap (e.g. mid-
   rebalance); equal keys keep the first (lowest-shard) occurrence. *)
let kway_merge n runs =
  let runs = Array.of_list runs in
  let nruns = Array.length runs in
  let best () =
    let b = ref (-1) in
    for i = 0 to nruns - 1 do
      match runs.(i) with
      | [] -> ()
      | (k, _) :: _ -> (
          match !b with
          | -1 -> b := i
          | j ->
              let bk, _ = List.hd runs.(j) in
              if Key.compare k bk < 0 then b := i)
    done;
    !b
  in
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match best () with
      | -1 -> List.rev acc
      | i ->
          let ((k, _) as hd) = List.hd runs.(i) in
          runs.(i) <- List.tl runs.(i);
          (* drop duplicates of k at the head of other runs *)
          for j = 0 to nruns - 1 do
            match runs.(j) with
            | (k', _) :: tl when Key.equal k k' -> runs.(j) <- tl
            | _ -> ()
          done;
          go (hd :: acc) (n - 1)
  in
  go [] n

let scan t k n =
  if n <= 0 then []
  else begin
    let nshards = Array.length t.shards in
    let owner = shard_of_key t k in
    (* fetch successor shards only while the result can still grow *)
    let rec fetch acc total i =
      if total >= n || i >= nshards then List.rev acc
      else
        let run = Index.scan t.shards.(i).s_backend.b_index k n in
        fetch (run :: acc) (total + List.length run) (i + 1)
    in
    kway_merge n (fetch [] 0 owner)
  end

module Index_impl = struct
  type nonrec t = t

  let name = "svc-store"

  let insert = insert

  let lookup = lookup

  let update = update

  let delete = delete

  let scan = scan
end

let as_index t = Index.Index ((module Index_impl : Index.S with type t = t), t)

(* ---------- group commit ---------- *)

let slot_obj s slot = Pobj.make s.s_log (meta_size + (slot * entry_size))

let entry_obj s seq = slot_obj s ((seq - 1) mod s.s_entries)

let meta_obj s = Pobj.make s.s_log 0

let op_put = 1

let op_del = 2

let append s seq w =
  let o = entry_obj s seq in
  let key, code, value =
    match w with Put (k, v) -> (k, op_put, v) | Del k -> (k, op_del, 0)
  in
  (* plain stores, payload before seq, one clwb for the whole line *)
  Pobj.set_u8 o f_op code;
  Pobj.set_u8 o f_klen (String.length key);
  Pobj.set_int o f_value value;
  Pobj.write_string o (Layout.off f_key) key;
  Pobj.set_int o f_seq seq;
  Pobj.clwb o 0

let read_entry s seq =
  let o = entry_obj s seq in
  if Pobj.get_int o f_seq <> seq then None
  else
    let klen = Pobj.get_u8 o f_klen in
    if klen = 0 || klen > Key.max_len then None
    else
      let key = Pobj.read_string o (Layout.off f_key) klen in
      match Pobj.get_u8 o f_op with
      | c when c = op_put -> Some (Put (key, Pobj.get_int o f_value))
      | c when c = op_del -> Some (Del key)
      | _ -> None

let apply s w =
  let index = s.s_backend.b_index in
  match w with
  | Put (k, v) -> Index.insert index k v
  | Del k -> ignore (Index.delete index k : bool)

(* Store + flush the watermark; persistence normally rides the next
   batch's fence.  [checkpoint] adds the fence itself — used before
   ring reuse could clobber entries replay might still need, and at
   the end of recovery. *)
let put_watermark s wm =
  let o = meta_obj s in
  Pobj.set_int o f_watermark wm;
  Pobj.clwb o 0

let checkpoint s =
  put_watermark s s.s_applied;
  Nvm.Pool.fence s.s_log;
  s.s_ckpt_fences <- s.s_ckpt_fences + 1;
  s.s_wm_floor <- s.s_applied

let commit_batch t ~shard ?on_durable writes =
  let s = t.shards.(shard) in
  Des.Sync.Mutex.with_lock s.s_mutex (fun () ->
      match writes with
      | [] -> ( match on_durable with Some f -> f () | None -> ())
      | _ ->
          let n = List.length writes in
          if n > s.s_entries / 2 then
            invalid_arg "Svc.Store.commit_batch: batch exceeds half the log ring";
          (* ring-reuse guard: never overwrite an entry that a replay
             from the *persisted* watermark could still need *)
          if s.s_head + n - 1 - s.s_wm_floor > s.s_entries then checkpoint s;
          List.iter
            (fun w ->
              append s s.s_head w;
              s.s_head <- s.s_head + 1)
            writes;
          (* the one fence covering the whole batch: durability point *)
          Nvm.Pool.fence s.s_log;
          (* apply with the index's normal internal persistence before
             acknowledging, so an acked write is already visible to
             concurrent readers (read-your-writes at ack) *)
          List.iter (apply s) writes;
          s.s_applied <- s.s_head - 1;
          (match on_durable with Some f -> f () | None -> ());
          put_watermark s s.s_applied)

(* ---------- recovery / maintenance ---------- *)

let recover_shard s =
  s.s_backend.b_recover ();
  let wm = Pobj.get_int (meta_obj s) f_watermark in
  let rec replay seq =
    match read_entry s seq with
    | Some w ->
        apply s w;
        replay (seq + 1)
    | None -> seq - 1
  in
  let last = replay (wm + 1) in
  (* Scrub orphans past the replay tail.  Entry lines are clwb'd but
     only fenced once per batch, so a crashed in-flight batch can
     persist entry seq [last + k] without [last + k - 1] (k > 1).
     Such a ghost holds exactly the seq a future committed write will
     use: left in place, a second crash would replay it as if it were
     that write, resurrecting an unacknowledged op over acknowledged
     state.  Zeroing the seq word is enough — read_entry then treats
     the slot as never written.  The clwbs ride the checkpoint fence
     below. *)
  for slot = 0 to s.s_entries - 1 do
    let o = slot_obj s slot in
    if Pobj.get_int o f_seq > last then begin
      Pobj.set_int o f_seq 0;
      Pobj.clwb o 0
    end
  done;
  s.s_head <- last + 1;
  s.s_applied <- last;
  checkpoint s

let recover t = Array.iter recover_shard t.shards

let invariants t = Array.iter (fun s -> s.s_backend.b_invariants ()) t.shards

let quiesce t = Array.iter (fun s -> s.s_backend.b_quiesce ()) t.shards
