module Ycsb = Workload.Ycsb
module Latency = Workload.Latency
module Arrival = Workload.Arrival
module Waitq = Des.Sched.Waitq

type admission = Reject | Block

let admission_name = function Reject -> "reject" | Block -> "block"

let admission_of_string = function
  | "reject" -> Ok Reject
  | "block" -> Ok Block
  | s -> Error (Printf.sprintf "unknown admission policy %S (reject|block)" s)

type mode =
  | Open_loop of { rate : float; process : Arrival.process }
  | Closed_loop of { clients : int }

type config = {
  mode : mode;
  ops : int;
  workers_per_shard : int;
  queue_capacity : int;
  admission : admission;
  max_batch : int;
  max_batch_delay : float;
  mix : Ycsb.mix;
  kind : Workload.Keyset.kind;
  loaded : int;
  theta : float;
  seed : int64;
}

let default_config ~loaded ~ops =
  {
    mode = Open_loop { rate = 2e6; process = Arrival.Poisson };
    ops;
    workers_per_shard = 2;
    queue_capacity = 64;
    admission = Reject;
    max_batch = 8;
    max_batch_delay = 2e-6;
    mix = Ycsb.Workload_a;
    kind = Workload.Keyset.Int_keys;
    loaded;
    theta = 0.99;
    seed = 42L;
  }

type result = {
  r_mode : mode;
  r_shards : int;
  r_generated : int;
  r_completed : int;
  r_rejected : int;
  r_elapsed : float;
  r_offered : float;
  r_throughput : float;
  r_queue_lat : Latency.t;
  r_service_lat : Latency.t;
  r_total_lat : Latency.t;
  r_shard_completed : int array;
  r_batches : int;
  r_batched_writes : int;
  r_nvm : Nvm.Stats.t;
}

let imbalance r =
  let n = Array.length r.r_shard_completed in
  if n = 0 then 1.0
  else begin
    let total = Array.fold_left ( + ) 0 r.r_shard_completed in
    let mx = Array.fold_left max 0 r.r_shard_completed in
    if total = 0 then 1.0 else float_of_int (mx * n) /. float_of_int total
  end

type req = {
  q_op : Ycsb.op;
  q_arrival : float;
  mutable q_deq : float;
  mutable q_finished : bool;
  q_done : Waitq.t option; (* closed-loop completion signal *)
}

type squeue = {
  items : req Queue.t;
  mutable closed : bool;
  nonempty : Waitq.t;
  nonfull : Waitq.t;
}

let key_of_op = function
  | Ycsb.Lookup k | Ycsb.Upsert (k, _) | Ycsb.Insert_new (k, _) | Ycsb.Scan (k, _) -> k

let write_of_op = function
  | Ycsb.Upsert (k, v) | Ycsb.Insert_new (k, v) -> Some (Store.Put (k, v))
  | Ycsb.Lookup _ | Ycsb.Scan _ -> None

(* ---------- bulk load ---------- *)

let load ~store ~kind ~keys () =
  let sched = Des.Sched.create () in
  let nshards = Store.shard_count store in
  (* route the whole keyset up front so each loader stays shard-local *)
  let per_shard = Array.make nshards [] in
  for i = keys - 1 downto 0 do
    let s = Store.shard_of_key store (Workload.Keyset.key kind i) in
    per_shard.(s) <- i :: per_shard.(s)
  done;
  let services = Store.services store in
  List.iter
    (fun (shard, svc) ->
      Des.Sched.spawn sched
        ~numa:(Store.shard_numa store shard)
        ~name:(Printf.sprintf "svc%d" shard)
        (fun () -> svc.Workload.Runner.body ()))
    services;
  let live = ref nshards in
  let profile = Nvm.Machine.profile (Store.machine store) in
  for shard = 0 to nshards - 1 do
    Des.Sched.spawn sched
      ~numa:(Store.shard_numa store shard)
      ~name:(Printf.sprintf "loader%d" shard)
      (fun () ->
        List.iter
          (fun i ->
            Des.Sched.charge profile.Nvm.Config.op_overhead;
            Store.insert store (Workload.Keyset.key kind i) i)
          per_shard.(shard);
        Des.Sched.delay 0.0;
        decr live;
        if !live = 0 then
          List.iter (fun (_, svc) -> svc.Workload.Runner.shutdown ()) services)
  done;
  Des.Sched.run sched;
  Des.Sched.now sched

(* ---------- the engine ---------- *)

let run ~store ~config:cfg ?(start = 0.0) ?obs () =
  let machine = Store.machine store in
  let nshards = Store.shard_count store in
  let sched = Des.Sched.create ~start () in
  let profile = Nvm.Machine.profile machine in
  let queues =
    Array.init nshards (fun _ ->
        {
          items = Queue.create ();
          closed = false;
          nonempty = Waitq.create ();
          nonfull = Waitq.create ();
        })
  in
  let generated = ref 0 and rejected = ref 0 and completed = ref 0 in
  let shard_completed = Array.make nshards 0 in
  let batches = ref 0 and batched_writes = ref 0 in
  let mk_lat seed = Latency.create ~sample_rate:1.0 (Des.Rng.create ~seed) in
  let queue_lat = mk_lat 101L
  and service_lat = mk_lat 102L
  and total_lat = mk_lat 103L in
  (* effective clock of the calling simulated thread (incl. charges) *)
  let clock () = Des.Sched.now sched +. Des.Sched.pending_charge () in
  let n_sources =
    match cfg.mode with Open_loop _ -> 1 | Closed_loop { clients } -> max 1 clients
  in
  let live_sources = ref n_sources in
  let live_workers = ref (nshards * cfg.workers_per_shard) in
  let services = Store.services store in
  (match obs with
  | Some { Obs.Recorder.sampler = Some s; _ } -> Obs.Sampler.spawn s sched
  | _ -> ());
  List.iter
    (fun (shard, svc) ->
      Des.Sched.spawn sched
        ~numa:(Store.shard_numa store shard)
        ~name:(Printf.sprintf "svc%d" shard)
        (fun () -> svc.Workload.Runner.body ()))
    services;
  let finish ~shard ~t r =
    r.q_finished <- true;
    incr completed;
    shard_completed.(shard) <- shard_completed.(shard) + 1;
    if Latency.should_sample total_lat then begin
      Latency.record queue_lat (r.q_deq -. r.q_arrival);
      Latency.record service_lat (t -. r.q_deq);
      Latency.record total_lat (t -. r.q_arrival)
    end;
    match r.q_done with
    | Some wq -> Waitq.signal_all sched wq
    | None -> ()
  in
  let on_all_workers_done () =
    (match obs with
    | Some { Obs.Recorder.sampler = Some s; _ } -> Obs.Sampler.stop s
    | _ -> ());
    List.iter (fun (_, svc) -> svc.Workload.Runner.shutdown ()) services
  in
  (* ----- shard workers ----- *)
  for shard = 0 to nshards - 1 do
    let q = queues.(shard) in
    for w = 0 to cfg.workers_per_shard - 1 do
      Des.Sched.spawn sched
        ~numa:(Store.shard_numa store shard)
        ~name:(Printf.sprintf "worker%d.%d" shard w)
        (fun () ->
          let drain limit =
            let rec go acc k =
              if k = 0 || Queue.is_empty q.items then List.rev acc
              else begin
                let r = Queue.pop q.items in
                r.q_deq <- clock ();
                go (r :: acc) (k - 1)
              end
            in
            let l = go [] limit in
            if l <> [] then Waitq.signal_all sched q.nonfull;
            l
          in
          let rec await () =
            if not (Queue.is_empty q.items) then true
            else if q.closed then false
            else begin
              Obs.Span.with_phase Obs.Span.Svc_queue (fun () ->
                  Waitq.wait q.nonempty);
              await ()
            end
          in
          let rec loop () =
            if await () then begin
              let batch = drain cfg.max_batch in
              let batch =
                (* under-full batch: wait (bounded) for stragglers *)
                let n = List.length batch in
                if n < cfg.max_batch && cfg.max_batch_delay > 0.0 && not q.closed
                then begin
                  Des.Sched.delay cfg.max_batch_delay;
                  batch @ drain (cfg.max_batch - n)
                end
                else batch
              in
              let writes, reads =
                List.partition (fun r -> write_of_op r.q_op <> None) batch
              in
              (match writes with
              | [] -> ()
              | _ ->
                  incr batches;
                  batched_writes := !batched_writes + List.length writes;
                  Des.Sched.charge
                    (float_of_int (List.length writes)
                    *. profile.Nvm.Config.op_overhead);
                  Obs.Span.with_phase Obs.Span.Svc_batch (fun () ->
                      Store.commit_batch store ~shard
                        ~on_durable:(fun () ->
                          (* ack point: durable since the batch's one
                             log fence and already applied to the
                             index, so acked writes are visible to
                             reads on any worker (read-your-writes) *)
                          Des.Sched.delay 0.0;
                          let t = Des.Sched.now sched in
                          List.iter (finish ~shard ~t) writes)
                        (List.filter_map (fun r -> write_of_op r.q_op) writes)));
              List.iter
                (fun r ->
                  Des.Sched.charge profile.Nvm.Config.op_overhead;
                  (match r.q_op with
                  | Ycsb.Lookup k -> ignore (Store.lookup store k : int option)
                  | Ycsb.Scan (k, n) ->
                      ignore (Store.scan store k n : (Pactree.Key.t * int) list)
                  | Ycsb.Upsert _ | Ycsb.Insert_new _ -> assert false);
                  Des.Sched.delay 0.0;
                  finish ~shard ~t:(Des.Sched.now sched) r)
                reads;
              loop ()
            end
          in
          loop ();
          decr live_workers;
          if !live_workers = 0 then on_all_workers_done ())
    done
  done;
  (* ----- load sources ----- *)
  let close_queues () =
    Array.iter
      (fun q ->
        q.closed <- true;
        Waitq.signal_all sched q.nonempty)
      queues
  in
  let submit ~wait_done op =
    let shard = Store.shard_of_key store (key_of_op op) in
    let q = queues.(shard) in
    let enqueue r =
      Queue.push r q.items;
      Waitq.signal_one sched q.nonempty
    in
    incr generated;
    let r =
      {
        q_op = op;
        q_arrival = clock ();
        q_deq = 0.0;
        q_finished = false;
        q_done = (if wait_done then Some (Waitq.create ()) else None);
      }
    in
    if Queue.length q.items < cfg.queue_capacity then begin
      enqueue r;
      Some r
    end
    else
      match cfg.admission with
      | Reject ->
          incr rejected;
          None
      | Block ->
          while Queue.length q.items >= cfg.queue_capacity do
            Waitq.wait q.nonfull
          done;
          enqueue r;
          Some r
  in
  (match cfg.mode with
  | Open_loop { rate; process } ->
      Des.Sched.spawn sched ~numa:0 ~name:"source" (fun () ->
          let arr =
            Arrival.create ~process ~rate
              (Des.Rng.create ~seed:(Int64.add cfg.seed 7919L))
          in
          let stream =
            Ycsb.create ~mix:cfg.mix ~kind:cfg.kind ~loaded:cfg.loaded
              ~theta:cfg.theta ~seed:cfg.seed ~thread:0 ~threads:1
          in
          for _ = 1 to cfg.ops do
            Des.Sched.delay (Arrival.next_gap arr);
            ignore (submit ~wait_done:false (Ycsb.next stream) : req option)
          done;
          decr live_sources;
          if !live_sources = 0 then close_queues ())
  | Closed_loop { clients } ->
      let clients = max 1 clients in
      let numa_count = Nvm.Machine.numa_count machine in
      for c = 0 to clients - 1 do
        let per = (cfg.ops / clients) + if c < cfg.ops mod clients then 1 else 0 in
        Des.Sched.spawn sched
          ~numa:(c mod numa_count)
          ~name:(Printf.sprintf "client%d" c)
          (fun () ->
            let stream =
              Ycsb.create ~mix:cfg.mix ~kind:cfg.kind ~loaded:cfg.loaded
                ~theta:cfg.theta ~seed:cfg.seed ~thread:c ~threads:clients
            in
            for _ = 1 to per do
              match submit ~wait_done:true (Ycsb.next stream) with
              | None -> ()
              | Some r ->
                  let wq = Option.get r.q_done in
                  while not r.q_finished do
                    Waitq.wait wq
                  done
            done;
            decr live_sources;
            if !live_sources = 0 then close_queues ())
      done);
  (match obs with Some o -> Obs.Span.install o.Obs.Recorder.span | None -> ());
  let before = Nvm.Stats.snapshot (Nvm.Machine.total_stats machine) in
  Fun.protect
    ~finally:(fun () ->
      match obs with Some o -> Obs.Span.uninstall o.Obs.Recorder.span | None -> ())
    (fun () -> Des.Sched.run sched);
  let elapsed = Des.Sched.now sched -. start in
  let offered =
    match cfg.mode with
    | Open_loop { rate; _ } -> rate
    | Closed_loop _ ->
        if elapsed > 0.0 then float_of_int !generated /. elapsed else 0.0
  in
  {
    r_mode = cfg.mode;
    r_shards = nshards;
    r_generated = !generated;
    r_completed = !completed;
    r_rejected = !rejected;
    r_elapsed = elapsed;
    r_offered = offered;
    r_throughput =
      (if elapsed > 0.0 then float_of_int !completed /. elapsed else 0.0);
    r_queue_lat = queue_lat;
    r_service_lat = service_lat;
    r_total_lat = total_lat;
    r_shard_completed = shard_completed;
    r_batches = !batches;
    r_batched_writes = !batched_writes;
    r_nvm = Nvm.Stats.diff (Nvm.Machine.total_stats machine) before;
  }

let pp_result ppf r =
  let p l q = Latency.percentile l q *. 1e6 in
  Format.fprintf ppf
    "@[<v>%s offered %.3f Mops/s -> %.3f Mops/s (%d/%d done, %d rejected, %.1f%% \
     loss)@,\
     latency us: queue p50 %.2f p99 %.2f | service p50 %.2f p99 %.2f | total p50 \
     %.2f p99 %.2f p99.99 %.2f@,\
     %d batches (%.2f writes/commit), shard imbalance %.2fx@]"
    (match r.r_mode with
    | Open_loop { process; _ } -> Arrival.process_name process
    | Closed_loop { clients } -> Printf.sprintf "closed(%d)" clients)
    (r.r_offered /. 1e6) (r.r_throughput /. 1e6) r.r_completed r.r_generated
    r.r_rejected
    (if r.r_generated > 0 then
       100.0 *. float_of_int r.r_rejected /. float_of_int r.r_generated
     else 0.0)
    (p r.r_queue_lat 50.0) (p r.r_queue_lat 99.0) (p r.r_service_lat 50.0)
    (p r.r_service_lat 99.0) (p r.r_total_lat 50.0) (p r.r_total_lat 99.0)
    (p r.r_total_lat 99.99)
    r.r_batches
    (if r.r_batches > 0 then
       float_of_int r.r_batched_writes /. float_of_int r.r_batches
     else 0.0)
    (imbalance r)
