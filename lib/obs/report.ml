type entry = {
  e_index : string;
  e_mix : string;
  e_threads : int;
  e_keys : int;
  e_ops : int;
  e_elapsed_s : float;
  e_throughput_mops : float;
  e_p50_us : float;
  e_p99_us : float;
  e_p9999_us : float;
  e_mean_us : float;
  e_max_us : float;
  e_phase_pct : (string * float) list;
  e_phase_us : (string * float) list;
  e_flushes_per_op : float;
  e_flushes_elided_per_op : float;
  e_fences_per_op : float;
  e_media_read_bytes_per_op : float;
  e_media_write_bytes_per_op : float;
  e_read_amplification : float;
  e_write_amplification : float;
}

let schema_version = "pactree-bench/v1"

let entry_json e =
  Json.Obj
    [
      ("index", Json.String e.e_index);
      ("mix", Json.String e.e_mix);
      ("threads", Json.Int e.e_threads);
      ("keys", Json.Int e.e_keys);
      ("ops", Json.Int e.e_ops);
      ("elapsed_s", Json.Float e.e_elapsed_s);
      ("throughput_mops", Json.Float e.e_throughput_mops);
      ( "latency_us",
        Json.Obj
          [
            ("p50", Json.Float e.e_p50_us);
            ("p99", Json.Float e.e_p99_us);
            ("p99.99", Json.Float e.e_p9999_us);
            ("mean", Json.Float e.e_mean_us);
            ("max", Json.Float e.e_max_us);
          ] );
      ("phase_pct", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) e.e_phase_pct));
      ("phase_us", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) e.e_phase_us));
      ( "per_op",
        Json.Obj
          [
            ("flushes", Json.Float e.e_flushes_per_op);
            ("flushes_elided", Json.Float e.e_flushes_elided_per_op);
            ("fences", Json.Float e.e_fences_per_op);
            ("media_read_bytes", Json.Float e.e_media_read_bytes_per_op);
            ("media_write_bytes", Json.Float e.e_media_write_bytes_per_op);
          ] );
      ("read_amplification", Json.Float e.e_read_amplification);
      ("write_amplification", Json.Float e.e_write_amplification);
    ]

let to_json ~keys ~ops ~threads ~mix ~entries =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ( "scale",
        Json.Obj
          [
            ("keys", Json.Int keys);
            ("ops", Json.Int ops);
            ("threads", Json.Int threads);
            ("mix", Json.String mix);
          ] );
      ("results", Json.List (List.map entry_json entries));
    ]

(* ---------- validation ---------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let require_number ctx key obj =
  match Option.bind (Json.member key obj) Json.to_number with
  | Some f when Float.is_finite f -> Ok f
  | Some _ -> Error (Printf.sprintf "%s: %S is not finite" ctx key)
  | None -> Error (Printf.sprintf "%s: missing numeric field %S" ctx key)

let require_string ctx key obj =
  match Json.member key obj with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "%s: missing string field %S" ctx key)

let require_obj ctx key obj =
  match Json.member key obj with
  | Some (Json.Obj _ as o) -> Ok o
  | _ -> Error (Printf.sprintf "%s: missing object field %S" ctx key)

let phase_names = List.map Span.phase_name Span.all_phases

let validate_entry i e =
  let ctx = Printf.sprintf "results[%d]" i in
  let* index = require_string ctx "index" e in
  let ctx = Printf.sprintf "results[%d] (%s)" i index in
  let* _ = require_string ctx "mix" e in
  let* _ = require_number ctx "threads" e in
  let* _ = require_number ctx "keys" e in
  let* ops = require_number ctx "ops" e in
  let* _ = require_number ctx "elapsed_s" e in
  let* thr = require_number ctx "throughput_mops" e in
  let* latency = require_obj ctx "latency_us" e in
  let* p50 = require_number (ctx ^ ".latency_us") "p50" latency in
  let* p99 = require_number (ctx ^ ".latency_us") "p99" latency in
  let* p9999 = require_number (ctx ^ ".latency_us") "p99.99" latency in
  let* _ = require_number (ctx ^ ".latency_us") "mean" latency in
  let* _ = require_number (ctx ^ ".latency_us") "max" latency in
  let* phase_pct = require_obj ctx "phase_pct" e in
  let* sum =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* v = require_number (ctx ^ ".phase_pct") name phase_pct in
        if v < -0.01 || v > 100.01 then
          Error (Printf.sprintf "%s: phase_pct.%s = %g out of [0, 100]" ctx name v)
        else Ok (acc +. v))
      (Ok 0.0) phase_names
  in
  let* () =
    (* all-zero is legal only when nothing was attributed; otherwise
       the shares must partition the attributed time *)
    if sum = 0.0 || (sum > 99.0 && sum < 101.0) then Ok ()
    else Error (Printf.sprintf "%s: phase_pct sums to %.2f, expected ~100" ctx sum)
  in
  let* per_op = require_obj ctx "per_op" e in
  let* flushes = require_number (ctx ^ ".per_op") "flushes" per_op in
  let* elided = require_number (ctx ^ ".per_op") "flushes_elided" per_op in
  let* fences = require_number (ctx ^ ".per_op") "fences" per_op in
  let* _ = require_number (ctx ^ ".per_op") "media_read_bytes" per_op in
  let* _ = require_number (ctx ^ ".per_op") "media_write_bytes" per_op in
  let* () =
    if ops > 0.0 && thr <= 0.0 then Error (ctx ^ ": non-positive throughput")
    else Ok ()
  in
  let* () =
    if p50 < 0.0 || p99 < p50 -. 1e-9 || p9999 < p99 -. 1e-9 then
      Error (ctx ^ ": latency percentiles not monotone")
    else Ok ()
  in
  if flushes < 0.0 || elided < 0.0 || fences < 0.0 then
    Error (ctx ^ ": negative per-op cost")
  else Ok ()

let validate json =
  let* schema = require_string "top-level" "schema" json in
  let* () =
    if schema = schema_version then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" schema schema_version)
  in
  let* scale = require_obj "top-level" "scale" json in
  let* _ = require_number "scale" "keys" scale in
  let* _ = require_number "scale" "ops" scale in
  let* _ = require_number "scale" "threads" scale in
  let* _ = require_string "scale" "mix" scale in
  match Json.member "results" json with
  | Some (Json.List []) -> Error "results: empty"
  | Some (Json.List entries) ->
      let rec go i = function
        | [] -> Ok ()
        | e :: rest ->
            let* () = validate_entry i e in
            go (i + 1) rest
      in
      go 0 entries
  | _ -> Error "missing results array"

let validate_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let* json = Json.of_string content in
  validate json

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n');
  match validate_file path with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "Report.write_file %s: %s" path msg)

let pp_entry ppf e =
  Format.fprintf ppf
    "@[<v>%-10s %s %d thr: %.3f Mops/s, p50 %.1f us, p99 %.1f us, p99.99 %.1f us@,\
     per op: %.2f flushes (+%.2f elided), %.2f fences, %.0f B read, %.0f B written \
     (amp %.2fx/%.2fx)@]"
    e.e_index e.e_mix e.e_threads e.e_throughput_mops e.e_p50_us e.e_p99_us e.e_p9999_us
    e.e_flushes_per_op e.e_flushes_elided_per_op e.e_fences_per_op
    e.e_media_read_bytes_per_op
    e.e_media_write_bytes_per_op e.e_read_amplification e.e_write_amplification
