type t = {
  machine : Nvm.Machine.t;
  metrics : Metrics.t;
  span : Span.t;
  sampler : Sampler.t option;
}

let create machine ?sample_interval () =
  {
    machine;
    metrics = Metrics.create ();
    span = Span.create ~machine ();
    sampler =
      Option.map (fun interval -> Sampler.create ~machine ~interval ()) sample_interval;
  }

let to_json t =
  Json.Obj
    [
      ("metrics", Metrics.to_json t.metrics);
      ("spans", Span.to_json t.span);
      ( "timeline",
        match t.sampler with Some s -> Sampler.to_json s | None -> Json.Null );
    ]

let pp ppf t =
  Format.fprintf ppf "@[<v>-- phase breakdown --@,%a@,-- metrics --@,%a@]" Span.pp_table
    t.span Metrics.pp t.metrics
