(** Named-metric registry: counters, gauges and log-scaled histograms.

    Hot paths hold a handle ({!counter}, {!gauge}, {!histogram} are
    get-or-create and may be hoisted out of loops); recording through
    a handle is O(1) and allocation-free for counters/gauges.
    Histograms bucket values at a fixed ~5% geometric resolution
    (base {!gamma}), so percentile queries are approximate but
    monotone, and merge is bucket-wise addition. *)

type t

val create : unit -> t

(** {2 Counters (monotone ints)} *)

type counter

val counter : t -> string -> counter

val inc : counter -> unit

val add : counter -> int -> unit

val counter_value : t -> string -> int
(** 0 when absent. *)

(** {2 Gauges (last-written floats)} *)

type gauge

val gauge : t -> string -> gauge

val set : gauge -> float -> unit

val gauge_value : t -> string -> float
(** 0. when absent. *)

(** {2 Histograms} *)

type histogram

(** Geometric bucket base: consecutive bucket boundaries differ by
    this factor (relative quantile error is about [gamma - 1]). *)
val gamma : float

val histogram : t -> string -> histogram

(** Record one observation.  Values <= 0 land in a dedicated
    zero-bucket (reported as 0.). *)
val observe : histogram -> float -> unit

val hist_count : histogram -> int

val hist_sum : histogram -> float

val hist_mean : histogram -> float

val hist_max : histogram -> float

(** [hist_percentile h p], [p] in [0, 100]; 0. on an empty histogram.
    Raises [Invalid_argument] outside [0, 100].  Monotone in [p]. *)
val hist_percentile : histogram -> float -> float

val find_histogram : t -> string -> histogram option

(** {2 Registry-wide operations} *)

(** Deep copy (measurement windows). *)
val snapshot : t -> t

(** [diff after before]: counters and histogram buckets subtract;
    gauges keep [after]'s value. *)
val diff : t -> t -> t

(** [merge ~dst ~src] accumulates [src] into [dst] (counters and
    histogram buckets add; gauges take [src] when present). *)
val merge : dst:t -> src:t -> unit

val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
