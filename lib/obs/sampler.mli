(** Time-series sampling of the machine + device counters.

    A sampler is a simulated thread ({!spawn}) that snapshots
    {!Nvm.Machine.total_stats} every [interval] simulated seconds.
    Diffing consecutive snapshots yields bandwidth-over-time series —
    the instrument that makes mechanisms like FH5's directory-protocol
    read-bandwidth meltdown directly plottable. *)

type t

(** [create ~machine ?interval ()] — [interval] defaults to 20
    simulated microseconds. *)
val create : machine:Nvm.Machine.t -> ?interval:float -> unit -> t

(** Spawn the sampling thread on [sched].  It records one sample per
    tick until {!stop}; after [stop] it records a final sample at the
    next tick and exits (so the scheduler's queue drains). *)
val spawn : t -> Des.Sched.t -> unit

(** Ask the sampling thread to exit at its next tick. *)
val stop : t -> unit

(** Cumulative samples, oldest first: (simulated time, counters). *)
val samples : t -> (float * Nvm.Stats.t) list

type rate = {
  t_us : float;  (** window end, simulated microseconds *)
  read_mbps : float;  (** media read bandwidth over the window, MB/s *)
  write_mbps : float;
  dir_write_mbps : float;  (** directory-coherence share of writes *)
  flushes_per_s : float;
  fences_per_s : float;
}

(** Per-window rates from consecutive samples ([samples] - 1 rows). *)
val rates : t -> rate list

(** First line of {!csv}. *)
val csv_header : string

(** CSV with header [t_us,read_mbps,write_mbps,dir_write_mbps,flushes_per_s,fences_per_s]. *)
val csv : t -> string

val write_csv : t -> string -> unit

val to_json : t -> Json.t
