(** Bundle of the three observability instruments for one measured
    run: a metrics registry, a span recorder and (optionally) a
    time-series sampler, all against one machine.  The workload
    runner accepts one of these and wires everything up. *)

type t = {
  machine : Nvm.Machine.t;
  metrics : Metrics.t;
  span : Span.t;
  sampler : Sampler.t option;
}

(** [create machine ()] — pass [~sample_interval] (simulated seconds)
    to also collect the bandwidth-over-time series. *)
val create : Nvm.Machine.t -> ?sample_interval:float -> unit -> t

(** Full dump: metrics + per-phase breakdown + time series. *)
val to_json : t -> Json.t

(** Human-oriented summary (phase table + metrics). *)
val pp : Format.formatter -> t -> unit
