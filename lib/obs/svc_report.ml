type lat = {
  l_p50_us : float;
  l_p99_us : float;
  l_p9999_us : float;
  l_mean_us : float;
  l_max_us : float;
}

type point = {
  p_offered_mops : float;
  p_achieved_mops : float;
  p_generated : int;
  p_completed : int;
  p_rejected : int;
  p_rejection_rate : float;
  p_queue : lat;
  p_service : lat;
  p_total : lat;
  p_shard_completed : int list;
  p_imbalance : float;
  p_batches : int;
  p_writes_per_batch : float;
  p_fences_per_op : float;
  p_flushes_per_op : float;
}

type config = {
  c_index : string;
  c_shards : int;
  c_workers_per_shard : int;
  c_queue_capacity : int;
  c_admission : string;
  c_arrival : string;
  c_max_batch : int;
  c_max_batch_delay_us : float;
  c_keys : int;
  c_ops : int;
  c_mix : string;
  c_theta : float;
  c_numa : int;
}

let schema_version = "pactree-svc/v1"

let lat_json l =
  Json.Obj
    [
      ("p50", Json.Float l.l_p50_us);
      ("p99", Json.Float l.l_p99_us);
      ("p99.99", Json.Float l.l_p9999_us);
      ("mean", Json.Float l.l_mean_us);
      ("max", Json.Float l.l_max_us);
    ]

let point_json p =
  Json.Obj
    [
      ("offered_mops", Json.Float p.p_offered_mops);
      ("achieved_mops", Json.Float p.p_achieved_mops);
      ("generated", Json.Int p.p_generated);
      ("completed", Json.Int p.p_completed);
      ("rejected", Json.Int p.p_rejected);
      ("rejection_rate", Json.Float p.p_rejection_rate);
      ("queue_latency_us", lat_json p.p_queue);
      ("service_latency_us", lat_json p.p_service);
      ("total_latency_us", lat_json p.p_total);
      ("shard_completed", Json.List (List.map (fun n -> Json.Int n) p.p_shard_completed));
      ("imbalance", Json.Float p.p_imbalance);
      ("batches", Json.Int p.p_batches);
      ("writes_per_batch", Json.Float p.p_writes_per_batch);
      ( "per_op",
        Json.Obj
          [
            ("fences", Json.Float p.p_fences_per_op);
            ("flushes", Json.Float p.p_flushes_per_op);
          ] );
    ]

let to_json c points =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ( "service",
        Json.Obj
          [
            ("index", Json.String c.c_index);
            ("shards", Json.Int c.c_shards);
            ("workers_per_shard", Json.Int c.c_workers_per_shard);
            ("queue_capacity", Json.Int c.c_queue_capacity);
            ("admission", Json.String c.c_admission);
            ("arrival", Json.String c.c_arrival);
            ("max_batch", Json.Int c.c_max_batch);
            ("max_batch_delay_us", Json.Float c.c_max_batch_delay_us);
            ("keys", Json.Int c.c_keys);
            ("ops", Json.Int c.c_ops);
            ("mix", Json.String c.c_mix);
            ("theta", Json.Float c.c_theta);
            ("numa", Json.Int c.c_numa);
          ] );
      ("sweep", Json.List (List.map point_json points));
    ]

(* ---------- validation ---------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let require_number ctx key obj =
  match Option.bind (Json.member key obj) Json.to_number with
  | Some f when Float.is_finite f -> Ok f
  | Some _ -> Error (Printf.sprintf "%s: %S is not finite" ctx key)
  | None -> Error (Printf.sprintf "%s: missing numeric field %S" ctx key)

let require_string ctx key obj =
  match Json.member key obj with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "%s: missing string field %S" ctx key)

let require_obj ctx key obj =
  match Json.member key obj with
  | Some (Json.Obj _ as o) -> Ok o
  | _ -> Error (Printf.sprintf "%s: missing object field %S" ctx key)

let validate_lat ctx key obj =
  let* l = require_obj ctx key obj in
  let ctx = ctx ^ "." ^ key in
  let* p50 = require_number ctx "p50" l in
  let* p99 = require_number ctx "p99" l in
  let* p9999 = require_number ctx "p99.99" l in
  let* _ = require_number ctx "mean" l in
  let* mx = require_number ctx "max" l in
  if p50 < 0.0 || p99 < p50 -. 1e-9 || p9999 < p99 -. 1e-9 || mx < p9999 -. 1e-9
  then Error (ctx ^ ": percentiles not monotone")
  else Ok p99

let validate_point shards i p =
  let ctx = Printf.sprintf "sweep[%d]" i in
  let* offered = require_number ctx "offered_mops" p in
  let* achieved = require_number ctx "achieved_mops" p in
  let* generated = require_number ctx "generated" p in
  let* completed = require_number ctx "completed" p in
  let* rejected = require_number ctx "rejected" p in
  let* reject_rate = require_number ctx "rejection_rate" p in
  let* _ = validate_lat ctx "queue_latency_us" p in
  let* _ = validate_lat ctx "service_latency_us" p in
  let* _ = validate_lat ctx "total_latency_us" p in
  let* imbalance = require_number ctx "imbalance" p in
  let* _ = require_number ctx "batches" p in
  let* wpb = require_number ctx "writes_per_batch" p in
  let* per_op = require_obj ctx "per_op" p in
  let* fences = require_number (ctx ^ ".per_op") "fences" per_op in
  let* flushes = require_number (ctx ^ ".per_op") "flushes" per_op in
  let* () =
    match Json.member "shard_completed" p with
    | Some (Json.List l) when List.length l = shards -> Ok ()
    | Some (Json.List l) ->
        Error
          (Printf.sprintf "%s: shard_completed has %d entries, expected %d" ctx
             (List.length l) shards)
    | _ -> Error (ctx ^ ": missing shard_completed array")
  in
  let* () =
    if offered <= 0.0 then Error (ctx ^ ": non-positive offered load")
    else if achieved < 0.0 || achieved > offered *. 1.02 then
      Error
        (Printf.sprintf "%s: achieved %.3f outside [0, offered=%.3f]" ctx achieved
           offered)
    else Ok ()
  in
  let* () =
    if reject_rate < -1e-9 || reject_rate > 1.0 +. 1e-9 then
      Error (ctx ^ ": rejection_rate outside [0, 1]")
    else if completed +. rejected > generated +. 0.5 then
      Error (ctx ^ ": completed + rejected > generated")
    else Ok ()
  in
  if imbalance < 1.0 -. 1e-9 then Error (ctx ^ ": imbalance < 1")
  else if wpb < 0.0 || fences < 0.0 || flushes < 0.0 then
    Error (ctx ^ ": negative per-op accounting")
  else Ok offered

let validate json =
  let* schema = require_string "top-level" "schema" json in
  let* () =
    if schema = schema_version then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" schema schema_version)
  in
  let* service = require_obj "top-level" "service" json in
  let* _ = require_string "service" "index" service in
  let* shards = require_number "service" "shards" service in
  let* _ = require_number "service" "workers_per_shard" service in
  let* _ = require_number "service" "queue_capacity" service in
  let* _ = require_string "service" "admission" service in
  let* _ = require_string "service" "arrival" service in
  let* _ = require_number "service" "max_batch" service in
  let* _ = require_number "service" "max_batch_delay_us" service in
  let* _ = require_number "service" "keys" service in
  let* _ = require_number "service" "ops" service in
  let* _ = require_string "service" "mix" service in
  let* _ = require_number "service" "theta" service in
  let* _ = require_number "service" "numa" service in
  match Json.member "sweep" json with
  | Some (Json.List []) -> Error "sweep: empty"
  | Some (Json.List points) ->
      let rec go i last = function
        | [] -> Ok ()
        | p :: rest ->
            let* offered = validate_point (int_of_float shards) i p in
            let* () =
              if offered <= last then
                Error
                  (Printf.sprintf "sweep[%d]: offered loads not strictly increasing" i)
              else Ok ()
            in
            go (i + 1) offered rest
      in
      go 0 neg_infinity points
  | _ -> Error "missing sweep array"

let validate_file path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let* json = Json.of_string content in
  validate json

let write_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string json);
      output_char oc '\n');
  match validate_file path with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "Svc_report.write_file %s: %s" path msg)

let pp_point ppf p =
  Format.fprintf ppf
    "%8.3f %9.3f %6.1f%% %9.1f %9.1f %9.1f %9.1f %6.2f %7.2f"
    p.p_offered_mops p.p_achieved_mops
    (100.0 *. p.p_rejection_rate)
    p.p_queue.l_p50_us p.p_queue.l_p99_us p.p_service.l_p99_us p.p_total.l_p99_us
    p.p_imbalance p.p_writes_per_batch
