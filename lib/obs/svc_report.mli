(** Machine-readable service saturation reports (schema
    ["pactree-svc/v1"]).

    One report = a service configuration plus a sweep of offered-load
    points; each point carries achieved throughput, the
    queue/service/total latency split (p50/p99/p99.99/mean/max),
    rejection rate, per-shard imbalance and group-commit/fence
    accounting.  {!validate} checks structure only (field presence,
    finiteness, percentile monotonicity, rates/ratios in range,
    offered loads strictly increasing); knee-shape assertions live in
    the bench driver, which knows it swept past saturation. *)

type lat = {
  l_p50_us : float;
  l_p99_us : float;
  l_p9999_us : float;
  l_mean_us : float;
  l_max_us : float;
}

type point = {
  p_offered_mops : float;
  p_achieved_mops : float;
  p_generated : int;
  p_completed : int;
  p_rejected : int;
  p_rejection_rate : float;  (** in [0, 1] *)
  p_queue : lat;
  p_service : lat;
  p_total : lat;
  p_shard_completed : int list;
  p_imbalance : float;  (** max/mean completions per shard, >= 1 *)
  p_batches : int;
  p_writes_per_batch : float;
  p_fences_per_op : float;
  p_flushes_per_op : float;
}

type config = {
  c_index : string;
  c_shards : int;
  c_workers_per_shard : int;
  c_queue_capacity : int;
  c_admission : string;
  c_arrival : string;
  c_max_batch : int;
  c_max_batch_delay_us : float;
  c_keys : int;
  c_ops : int;
  c_mix : string;
  c_theta : float;
  c_numa : int;
}

val schema_version : string

val to_json : config -> point list -> Json.t

val validate : Json.t -> (unit, string) result

val validate_file : string -> (unit, string) result

(** Serialise, then re-read and {!validate} (fails loudly on schema
    drift). *)
val write_file : string -> Json.t -> unit

val pp_point : Format.formatter -> point -> unit
