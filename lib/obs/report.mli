(** Canonical machine-readable bench output (BENCH_pactree.json).

    Schema ["pactree-bench/v1"]: a top-level object with [schema],
    [scale] {keys, ops, threads, mix} and a non-empty [results] array;
    each result carries throughput, latency percentiles, a per-phase
    time-percentage map over the full {!Span.all_phases} taxonomy
    (summing to ~100 whenever any time was attributed), and per-op
    persistence costs (flushes, fences, media bytes).  Future PRs
    regress against this file; {!validate} is run in CI so the
    trajectory can never silently go malformed. *)

type entry = {
  e_index : string;  (** "PACTree", "PDL-ART", ... *)
  e_mix : string;
  e_threads : int;
  e_keys : int;
  e_ops : int;
  e_elapsed_s : float;  (** simulated seconds *)
  e_throughput_mops : float;
  e_p50_us : float;
  e_p99_us : float;
  e_p9999_us : float;
  e_mean_us : float;
  e_max_us : float;
  e_phase_pct : (string * float) list;  (** over {!Span.all_phases} *)
  e_phase_us : (string * float) list;
  e_flushes_per_op : float;
  e_flushes_elided_per_op : float;
  e_fences_per_op : float;
  e_media_read_bytes_per_op : float;
  e_media_write_bytes_per_op : float;
  e_read_amplification : float;
  e_write_amplification : float;
}

val schema_version : string

(** Build the file-level JSON value. *)
val to_json :
  keys:int -> ops:int -> threads:int -> mix:string -> entries:entry list -> Json.t

(** Schema check of a parsed value. *)
val validate : Json.t -> (unit, string) result

(** Parse + validate a file on disk. *)
val validate_file : string -> (unit, string) result

(** Write (pretty-printed) and then re-read + validate; raises
    [Failure] if the round trip fails the schema. *)
val write_file : string -> Json.t -> unit

val pp_entry : Format.formatter -> entry -> unit
