type counter = { mutable c : int }

type gauge = { mutable g : float }

(* Log-scaled histogram: observation v > 0 lands in bucket
   round(ln v / ln gamma); the bucket's representative value is
   gamma^idx, so any quantile is within a factor of ~gamma of the
   true sample.  Buckets live in a hashtable: values spanning many
   decades cost O(decades / ln gamma) entries, not a fixed range. *)
type histogram = {
  buckets : (int, int ref) Hashtbl.t;
  mutable zeroes : int; (* observations <= 0 *)
  mutable count : int;
  mutable sum : float;
  mutable max : float;
}

type metric = Counter of counter | Gauge of gauge | Hist of histogram

type t = { table : (string, metric) Hashtbl.t }

let gamma = 1.05

let log_gamma = Float.log gamma

let create () = { table = Hashtbl.create 32 }

let counter t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a counter" name)
  | None ->
      let c = { c = 0 } in
      Hashtbl.add t.table name (Counter c);
      c

let inc c = c.c <- c.c + 1

let add c by = c.c <- c.c + by

let counter_value t name =
  match Hashtbl.find_opt t.table name with Some (Counter c) -> c.c | _ -> 0

let gauge t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a gauge" name)
  | None ->
      let g = { g = 0.0 } in
      Hashtbl.add t.table name (Gauge g);
      g

let set g v = g.g <- v

let gauge_value t name =
  match Hashtbl.find_opt t.table name with Some (Gauge g) -> g.g | _ -> 0.0

let new_hist () =
  { buckets = Hashtbl.create 16; zeroes = 0; count = 0; sum = 0.0; max = neg_infinity }

let histogram t name =
  match Hashtbl.find_opt t.table name with
  | Some (Hist h) -> h
  | Some _ -> invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" name)
  | None ->
      let h = new_hist () in
      Hashtbl.add t.table name (Hist h);
      h

let find_histogram t name =
  match Hashtbl.find_opt t.table name with Some (Hist h) -> Some h | _ -> None

let bucket_of v = int_of_float (Float.round (Float.log v /. log_gamma))

let bucket_value idx = Float.exp (float_of_int idx *. log_gamma)

let observe h v =
  h.count <- h.count + 1;
  h.sum <- h.sum +. Float.max v 0.0;
  if v > h.max then h.max <- v;
  if v <= 0.0 then h.zeroes <- h.zeroes + 1
  else begin
    let idx = bucket_of v in
    match Hashtbl.find_opt h.buckets idx with
    | Some r -> incr r
    | None -> Hashtbl.add h.buckets idx (ref 1)
  end

let hist_count h = h.count

let hist_sum h = h.sum

let hist_mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

let hist_max h = if h.count = 0 then 0.0 else Float.max h.max 0.0

let sorted_buckets h =
  let pairs = Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) h.buckets [] in
  List.sort (fun (a, _) (b, _) -> compare a b) pairs

let hist_percentile h p =
  if not (p >= 0.0 && p <= 100.0) then
    invalid_arg (Printf.sprintf "Metrics.hist_percentile: %g not in [0, 100]" p);
  if h.count = 0 then 0.0
  else begin
    (* rank of the nearest sample, 1-based *)
    let rank =
      1 + int_of_float (p /. 100.0 *. float_of_int (h.count - 1) +. 0.5)
    in
    if rank <= h.zeroes then 0.0
    else begin
      let rec walk remaining = function
        | [] -> hist_max h
        | (idx, n) :: rest ->
            if remaining <= n then bucket_value idx else walk (remaining - n) rest
      in
      walk (rank - h.zeroes) (sorted_buckets h)
    end
  end

(* ---------- registry-wide ---------- *)

let copy_hist h =
  let buckets = Hashtbl.create (Hashtbl.length h.buckets) in
  Hashtbl.iter (fun idx r -> Hashtbl.add buckets idx (ref !r)) h.buckets;
  { buckets; zeroes = h.zeroes; count = h.count; sum = h.sum; max = h.max }

let snapshot t =
  let table = Hashtbl.create (Hashtbl.length t.table) in
  Hashtbl.iter
    (fun name m ->
      let m' =
        match m with
        | Counter c -> Counter { c = c.c }
        | Gauge g -> Gauge { g = g.g }
        | Hist h -> Hist (copy_hist h)
      in
      Hashtbl.add table name m')
    t.table;
  { table }

let diff_hist a b =
  let buckets = Hashtbl.create (Hashtbl.length a.buckets) in
  Hashtbl.iter
    (fun idx r ->
      let before = match Hashtbl.find_opt b.buckets idx with Some r' -> !r' | None -> 0 in
      let d = !r - before in
      if d > 0 then Hashtbl.add buckets idx (ref d))
    a.buckets;
  {
    buckets;
    zeroes = max 0 (a.zeroes - b.zeroes);
    count = max 0 (a.count - b.count);
    sum = a.sum -. b.sum;
    max = a.max (* upper bound over the window *);
  }

let diff after before =
  let table = Hashtbl.create (Hashtbl.length after.table) in
  Hashtbl.iter
    (fun name m ->
      let m' =
        match (m, Hashtbl.find_opt before.table name) with
        | Counter c, Some (Counter c0) -> Counter { c = c.c - c0.c }
        | Counter c, _ -> Counter { c = c.c }
        | Gauge g, _ -> Gauge { g = g.g }
        | Hist h, Some (Hist h0) -> Hist (diff_hist h h0)
        | Hist h, _ -> Hist (copy_hist h)
      in
      Hashtbl.add table name m')
    after.table;
  { table }

let merge_hist ~dst ~src =
  Hashtbl.iter
    (fun idx r ->
      match Hashtbl.find_opt dst.buckets idx with
      | Some r' -> r' := !r' + !r
      | None -> Hashtbl.add dst.buckets idx (ref !r))
    src.buckets;
  dst.zeroes <- dst.zeroes + src.zeroes;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.max > dst.max then dst.max <- src.max

let merge ~dst ~src =
  Hashtbl.iter
    (fun name m ->
      match (Hashtbl.find_opt dst.table name, m) with
      | Some (Counter c'), Counter c -> c'.c <- c'.c + c.c
      | Some (Gauge g'), Gauge g -> g'.g <- g.g
      | Some (Hist h'), Hist h -> merge_hist ~dst:h' ~src:h
      | Some _, _ ->
          invalid_arg (Printf.sprintf "Metrics.merge: %S has conflicting kinds" name)
      | None, Counter c -> Hashtbl.add dst.table name (Counter { c = c.c })
      | None, Gauge g -> Hashtbl.add dst.table name (Gauge { g = g.g })
      | None, Hist h -> Hashtbl.add dst.table name (Hist (copy_hist h)))
    src.table

(* ---------- emission ---------- *)

let sorted_entries t =
  let entries = Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.table [] in
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let hist_json h =
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ("mean", Json.Float (hist_mean h));
      ("max", Json.Float (hist_max h));
      ("p50", Json.Float (hist_percentile h 50.0));
      ("p90", Json.Float (hist_percentile h 90.0));
      ("p99", Json.Float (hist_percentile h 99.0));
      ("p99.9", Json.Float (hist_percentile h 99.9));
      ("p99.99", Json.Float (hist_percentile h 99.99));
    ]

let to_json t =
  Json.Obj
    (List.map
       (fun (name, m) ->
         ( name,
           match m with
           | Counter c -> Json.Int c.c
           | Gauge g -> Json.Float g.g
           | Hist h -> hist_json h ))
       (sorted_entries t))

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Format.fprintf ppf "@,";
      match m with
      | Counter c -> Format.fprintf ppf "%-40s %d" name c.c
      | Gauge g -> Format.fprintf ppf "%-40s %g" name g.g
      | Hist h ->
          Format.fprintf ppf "%-40s n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g" name
            h.count (hist_mean h) (hist_percentile h 50.0) (hist_percentile h 99.0)
            (hist_max h))
    (sorted_entries t);
  Format.fprintf ppf "@]"
