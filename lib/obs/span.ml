type phase =
  | Trie_search
  | Dnode_scan
  | Dnode_insert
  | Smo
  | Log_replay
  | Alloc
  | Flush_wait
  | Recovery
  | Svc_queue
  | Svc_batch

let phase_name = function
  | Trie_search -> "trie_search"
  | Dnode_scan -> "dnode_scan"
  | Dnode_insert -> "dnode_insert"
  | Smo -> "smo"
  | Log_replay -> "log_replay"
  | Alloc -> "alloc"
  | Flush_wait -> "flush_wait"
  | Recovery -> "recovery"
  | Svc_queue -> "svc_queue"
  | Svc_batch -> "svc_batch"

let all_phases =
  [
    Trie_search;
    Dnode_scan;
    Dnode_insert;
    Smo;
    Log_replay;
    Alloc;
    Flush_wait;
    Recovery;
    Svc_queue;
    Svc_batch;
  ]

let phase_index = function
  | Trie_search -> 0
  | Dnode_scan -> 1
  | Dnode_insert -> 2
  | Smo -> 3
  | Log_replay -> 4
  | Alloc -> 5
  | Flush_wait -> 6
  | Recovery -> 7
  | Svc_queue -> 8
  | Svc_batch -> 9

let n_phases = 10

type acc = { mutable count : int; mutable self : float; nvm : Nvm.Stats.t }

type frame = {
  f_phase : phase;
  f_start : float;
  f_stats0 : Nvm.Stats.t option; (* machine counters at entry *)
  f_stack : string; (* ";"-separated path including this phase *)
  mutable f_child_time : float;
  mutable f_child_nvm : Nvm.Stats.t option; (* accumulated child deltas *)
}

type t = {
  machine : Nvm.Machine.t option;
  accs : acc array; (* indexed by phase_index *)
  stacks : (int, frame list ref) Hashtbl.t; (* simulated thread id -> span stack *)
  folded : (string, float ref) Hashtbl.t; (* collapsed stack -> self seconds *)
}

let create ?machine () =
  {
    machine;
    accs =
      Array.init n_phases (fun _ -> { count = 0; self = 0.0; nvm = Nvm.Stats.create () });
    stacks = Hashtbl.create 16;
    folded = Hashtbl.create 64;
  }

let reset t =
  Array.iter
    (fun a ->
      a.count <- 0;
      a.self <- 0.0;
      Nvm.Stats.reset a.nvm)
    t.accs;
  Hashtbl.reset t.stacks;
  Hashtbl.reset t.folded

(* ---------- global installation ---------- *)

let current : t option ref = ref None

let installed () = !current

let leaf_on t phase seconds =
  let acc = t.accs.(phase_index phase) in
  acc.count <- acc.count + 1;
  acc.self <- acc.self +. seconds;
  let tid = Des.Sched.current_id () in
  let stack =
    match Hashtbl.find_opt t.stacks tid with
    | Some { contents = top :: _ } ->
        top.f_child_time <- top.f_child_time +. seconds;
        top.f_stack ^ ";" ^ phase_name phase
    | _ -> phase_name phase
  in
  match Hashtbl.find_opt t.folded stack with
  | Some r -> r := !r +. seconds
  | None -> Hashtbl.add t.folded stack (ref seconds)

let install t =
  (match !current with
  | Some old -> (
      match old.machine with
      | Some m -> Nvm.Machine.set_wait_observer m None
      | None -> ())
  | None -> ());
  current := Some t;
  match t.machine with
  | Some m ->
      Nvm.Machine.set_wait_observer m (Some (fun seconds -> leaf_on t Flush_wait seconds))
  | None -> ()

let uninstall t =
  match !current with
  | Some cur when cur == t ->
      (match t.machine with
      | Some m -> Nvm.Machine.set_wait_observer m None
      | None -> ());
      current := None
  | _ -> ()

let leaf phase seconds =
  match !current with Some t -> leaf_on t phase seconds | None -> ()

let current_stack () =
  match !current with
  | None -> None
  | Some t -> (
      match Hashtbl.find_opt t.stacks (Des.Sched.current_id ()) with
      | Some { contents = top :: _ } -> Some top.f_stack
      | _ -> None)

(* ---------- spans ---------- *)

(* Effective clock of the calling simulated thread: the scheduler's
   clock plus the thread's accumulated [charge]s, so span boundaries
   see cheap costs (cache hits, CPU work) without a context switch. *)
let clock () =
  match Des.Sched.self () with
  | Some s -> Des.Sched.now s +. Des.Sched.pending_charge ()
  | None -> 0.0

let thread_stack t =
  let tid = Des.Sched.current_id () in
  match Hashtbl.find_opt t.stacks tid with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.stacks tid r;
      r

let add_folded t stack seconds =
  if seconds > 0.0 then
    match Hashtbl.find_opt t.folded stack with
    | Some r -> r := !r +. seconds
    | None -> Hashtbl.add t.folded stack (ref seconds)

let enter t phase =
  let stack = thread_stack t in
  let path =
    match !stack with
    | top :: _ -> top.f_stack ^ ";" ^ phase_name phase
    | [] -> phase_name phase
  in
  let frame =
    {
      f_phase = phase;
      f_start = clock ();
      f_stats0 =
        (match t.machine with
        | Some m -> Some (Nvm.Machine.total_stats m)
        | None -> None);
      f_stack = path;
      f_child_time = 0.0;
      f_child_nvm = None;
    }
  in
  stack := frame :: !stack

let exit_span t =
  let stack = thread_stack t in
  match !stack with
  | [] -> () (* unbalanced exit: recorder was swapped mid-span *)
  | frame :: rest ->
      stack := rest;
      let total = clock () -. frame.f_start in
      let self = Float.max 0.0 (total -. frame.f_child_time) in
      let acc = t.accs.(phase_index frame.f_phase) in
      acc.count <- acc.count + 1;
      acc.self <- acc.self +. self;
      add_folded t frame.f_stack self;
      let delta =
        match (frame.f_stats0, t.machine) with
        | Some s0, Some m ->
            let d = Nvm.Stats.diff (Nvm.Machine.total_stats m) s0 in
            let self_d =
              match frame.f_child_nvm with
              | Some child -> Nvm.Stats.diff d child
              | None -> d
            in
            Nvm.Stats.add acc.nvm self_d;
            Some d
        | _ -> None
      in
      (match rest with
      | parent :: _ ->
          parent.f_child_time <- parent.f_child_time +. total;
          (match delta with
          | Some d -> (
              match parent.f_child_nvm with
              | Some child -> Nvm.Stats.add child d
              | None -> parent.f_child_nvm <- Some (Nvm.Stats.snapshot d))
          | None -> ())
      | [] -> ())

let with_phase phase f =
  match !current with
  | None -> f ()
  | Some t ->
      enter t phase;
      Fun.protect ~finally:(fun () -> exit_span t) f

(* ---------- reporting ---------- *)

type row = {
  r_phase : phase;
  r_count : int;
  r_seconds : float;
  r_nvm : Nvm.Stats.t;
}

let rows t =
  List.map
    (fun p ->
      let a = t.accs.(phase_index p) in
      { r_phase = p; r_count = a.count; r_seconds = a.self; r_nvm = Nvm.Stats.snapshot a.nvm })
    all_phases

let attributed_seconds t = Array.fold_left (fun acc a -> acc +. a.self) 0.0 t.accs

let percentages t =
  let total = attributed_seconds t in
  List.map
    (fun p ->
      let a = t.accs.(phase_index p) in
      (p, if total > 0.0 then 100.0 *. a.self /. total else 0.0))
    all_phases

let collapsed t =
  let entries = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.folded [] in
  List.sort compare entries

let write_collapsed t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun (stack, seconds) ->
          (* flamegraph.pl wants integer sample counts: use microseconds *)
          let us = int_of_float (Float.round (seconds *. 1e6)) in
          if us > 0 then Printf.fprintf oc "%s %d\n" stack us)
        (collapsed t))

let pp_table ppf t =
  let total = attributed_seconds t in
  Format.fprintf ppf "@[<v>%-14s %8s %10s %7s %10s %10s %8s %8s@," "phase" "spans"
    "self(us)" "%" "rd bytes" "wr bytes" "flushes" "fences";
  List.iter
    (fun { r_phase; r_count; r_seconds; r_nvm } ->
      let pct = if total > 0.0 then 100.0 *. r_seconds /. total else 0.0 in
      Format.fprintf ppf "%-14s %8d %10.1f %6.1f%% %10d %10d %8d %8d@,"
        (phase_name r_phase) r_count (r_seconds *. 1e6) pct
        (Nvm.Stats.total_read_bytes r_nvm)
        (Nvm.Stats.total_write_bytes r_nvm)
        r_nvm.Nvm.Stats.flushes r_nvm.Nvm.Stats.fences)
    (rows t);
  Format.fprintf ppf "%-14s %8s %10.1f %6.1f%%@]" "total" "" (total *. 1e6)
    (if total > 0.0 then 100.0 else 0.0)

let to_json t =
  let total = attributed_seconds t in
  Json.Obj
    [
      ("attributed_seconds", Json.Float total);
      ( "phases",
        Json.Obj
          (List.map
             (fun { r_phase; r_count; r_seconds; r_nvm } ->
               ( phase_name r_phase,
                 Json.Obj
                   [
                     ("count", Json.Int r_count);
                     ("self_seconds", Json.Float r_seconds);
                     ( "pct",
                       Json.Float
                         (if total > 0.0 then 100.0 *. r_seconds /. total else 0.0) );
                     ("media_read_bytes", Json.Int (Nvm.Stats.total_read_bytes r_nvm));
                     ("media_write_bytes", Json.Int (Nvm.Stats.total_write_bytes r_nvm));
                     ("flushes", Json.Int r_nvm.Nvm.Stats.flushes);
                     ("fences", Json.Int r_nvm.Nvm.Stats.fences);
                   ] ))
             (rows t)) );
      ( "collapsed",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (collapsed t)) );
    ]
