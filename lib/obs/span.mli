(** Phase-attributed span tracing over the DES simulated clock.

    A recorder is {!install}ed globally; instrumented code then brackets
    work with {!with_phase}, which is a near-free no-op while no
    recorder is installed.  Spans nest (per simulated thread): each
    phase accumulates its {e self} time — child span time is subtracted
    from the parent — so per-phase breakdowns partition the attributed
    time exactly, and the stack paths double as collapsed stacks for
    flamegraph tools.

    At every span boundary the machine's NVM counters are snapshotted
    and deltaed, attributing media reads/writes, RMW and directory
    traffic, flushes and fences to the phase that incurred them
    (self-attribution, like time).  With several simulated threads the
    clock and the machine counters advance while a span's thread is
    descheduled, so concurrent runs attribute a thread's {e wait}
    (and any traffic other threads generate meanwhile) to the phase it
    is waiting in — the convention profilers call wall-clock
    attribution.  Single-threaded runs are exact.

    The [flush_wait] phase is fed by {!Nvm.Machine.set_wait_observer}
    (installed automatically): each fence stall is re-attributed from
    the enclosing phase to [flush_wait] as a leaf span. *)

type phase =
  | Trie_search  (** search-layer (ART) descent *)
  | Dnode_scan  (** data-node search / scan / sibling walk *)
  | Dnode_insert  (** data-node mutation (insert/update/delete slots) *)
  | Smo  (** structure modification: split / merge, incl. logging *)
  | Log_replay  (** background updater replaying the SMO log *)
  | Alloc  (** persistent allocator *)
  | Flush_wait  (** simulated stall in sfence (media write drain) *)
  | Recovery  (** post-crash recovery *)
  | Svc_queue  (** service worker idle-waiting on its shard queue *)
  | Svc_batch  (** service group commit: log append + fence + apply *)

val phase_name : phase -> string

val all_phases : phase list

type t

(** [create ?machine ()] — with a machine, span boundaries delta its
    {!Nvm.Machine.total_stats}; without, attribution is time-only. *)
val create : ?machine:Nvm.Machine.t -> unit -> t

(** Make [t] the process-wide recorder (replacing any other) and hook
    the machine's fence-wait observer. *)
val install : t -> unit

(** Remove [t] if installed (and its machine hook). *)
val uninstall : t -> unit

val installed : unit -> t option

(** [with_phase p f] runs [f] inside a span of phase [p] on the
    calling simulated thread (or the host thread outside a
    simulation).  Exception-safe; no-op wrapper when nothing is
    installed. *)
val with_phase : phase -> (unit -> 'a) -> 'a

(** [leaf p seconds] attributes an already-measured duration to phase
    [p] as a child of the current span (used by the fence hook). *)
val leaf : phase -> float -> unit

(** The calling thread's current span path (e.g. ["smo;alloc"]), or
    [None] outside any span / with no recorder installed.  Used by the
    pobj persist-order sanitizer to attribute findings. *)
val current_stack : unit -> string option

(** {2 Reporting} *)

type row = {
  r_phase : phase;
  r_count : int;  (** completed spans *)
  r_seconds : float;  (** self time *)
  r_nvm : Nvm.Stats.t;  (** self NVM traffic (zero when time-only) *)
}

(** One row per phase, fixed taxonomy order. *)
val rows : t -> row list

(** Sum of self times over all phases. *)
val attributed_seconds : t -> float

(** Percentage share of each phase over {!attributed_seconds} — sums
    to ~100 whenever any time was attributed, else all zero. *)
val percentages : t -> (phase * float) list

(** Collapsed stacks: ["smo;alloc" -> self seconds], flamegraph.pl
    compatible once formatted by {!write_collapsed}. *)
val collapsed : t -> (string * float) list

(** Write collapsed stacks ("stack count-in-microseconds" lines). *)
val write_collapsed : t -> string -> unit

val pp_table : Format.formatter -> t -> unit

val to_json : t -> Json.t

val reset : t -> unit
