(** Minimal JSON tree, emitter and parser.

    The bench output (BENCH_pactree.json, --obs dumps) must be
    machine-readable and schema-checkable without adding external
    dependencies, so lib/obs carries its own ~RFC 8259 subset:
    UTF-8 passthrough strings, no exponent-free float restrictions,
    integers kept distinct from floats on emission. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Pretty-printed (2-space indent) emission. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Parse; [Error msg] carries an offset-annotated message. *)
val of_string : string -> (t, string) result

(** [member key json] for [Obj] values. *)
val member : string -> t -> t option

(** Numeric accessor: accepts both [Int] and [Float]. *)
val to_number : t -> float option
