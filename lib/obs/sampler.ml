type t = {
  machine : Nvm.Machine.t;
  interval : float;
  mutable rev_samples : (float * Nvm.Stats.t) list;
  mutable stopped : bool;
}

let create ~machine ?(interval = 20e-6) () =
  if not (interval > 0.0) then invalid_arg "Sampler.create: interval must be positive";
  { machine; interval; rev_samples = []; stopped = false }

let record t now = t.rev_samples <- (now, Nvm.Machine.total_stats t.machine) :: t.rev_samples

let spawn t sched =
  t.stopped <- false;
  Des.Sched.spawn sched ~name:"obs.sampler" (fun () ->
      record t (Des.Sched.now sched);
      let rec loop () =
        Des.Sched.delay t.interval;
        record t (Des.Sched.now sched);
        if not t.stopped then loop ()
      in
      loop ())

let stop t = t.stopped <- true

let samples t = List.rev t.rev_samples

type rate = {
  t_us : float;
  read_mbps : float;
  write_mbps : float;
  dir_write_mbps : float;
  flushes_per_s : float;
  fences_per_s : float;
}

let rates t =
  let rec go acc = function
    | (t0, s0) :: ((t1, s1) :: _ as rest) ->
        let dt = t1 -. t0 in
        if dt <= 0.0 then go acc rest
        else begin
          let d = Nvm.Stats.diff s1 s0 in
          let mbps bytes = float_of_int bytes /. dt /. 1e6 in
          let row =
            {
              t_us = t1 *. 1e6;
              read_mbps = mbps (Nvm.Stats.total_read_bytes d);
              write_mbps = mbps (Nvm.Stats.total_write_bytes d);
              dir_write_mbps = mbps d.Nvm.Stats.dir_write_bytes;
              flushes_per_s = float_of_int d.Nvm.Stats.flushes /. dt;
              fences_per_s = float_of_int d.Nvm.Stats.fences /. dt;
            }
          in
          go (row :: acc) rest
        end
    | _ -> List.rev acc
  in
  go [] (samples t)

let csv_header = "t_us,read_mbps,write_mbps,dir_write_mbps,flushes_per_s,fences_per_s"

let csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%.3f,%.3f,%.3f,%.3f,%.1f,%.1f\n" r.t_us r.read_mbps
           r.write_mbps r.dir_write_mbps r.flushes_per_s r.fences_per_s))
    (rates t);
  Buffer.contents buf

let write_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (csv t))

let to_json t =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [
             ("t_us", Json.Float r.t_us);
             ("read_mbps", Json.Float r.read_mbps);
             ("write_mbps", Json.Float r.write_mbps);
             ("dir_write_mbps", Json.Float r.dir_write_mbps);
             ("flushes_per_s", Json.Float r.flushes_per_s);
             ("fences_per_s", Json.Float r.fences_per_s);
           ])
       (rates t))
