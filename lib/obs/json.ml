type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emission ---------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_nan f || Float.is_integer f then "null" (* inf/nan: not JSON *)
  else Printf.sprintf "%.17g" f

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_string ppf (string_of_bool b)
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.pp_print_string ppf (float_repr f)
  | String s -> Format.fprintf ppf "\"%s\"" (escape s)
  | List [] -> Format.pp_print_string ppf "[]"
  | List items ->
      Format.fprintf ppf "@[<v 2>[@,%a@]@,]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") pp)
        items
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      let field ppf (k, v) = Format.fprintf ppf "@[<hov 2>\"%s\": %a@]" (escape k) pp v in
      Format.fprintf ppf "@[<v 2>{@,%a@]@,}"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,") field)
        fields

let to_string t = Format.asprintf "%a" pp t

(* ---------- parsing ---------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              let code =
                try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* BMP only; encode as UTF-8 *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some c -> (
        match c with
        | '0' .. '9' | '-' -> parse_number ()
        | c -> fail (Printf.sprintf "unexpected character %c" c))
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
